//! The operation/feature matrix of Table 1, generated from the structures
//! this repository actually implements — extended with the general-graph
//! column the connectivity subsystem opened.

/// The capabilities of one dynamic-tree structure (one row of Table 1).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Capability {
    /// Structure name as used in the paper's tables.
    pub name: &'static str,
    /// Asymptotic sequential update cost (as proven in the paper).
    pub update_cost: &'static str,
    /// Whether the input must be ternarized first.
    pub ternarized: bool,
    /// Whether batch-parallel updates are supported.
    pub parallel_updates: bool,
    /// Whether read-only queries can run in parallel.
    pub parallel_queries: bool,
    /// Subtree queries supported.
    pub subtree_queries: bool,
    /// Path queries supported.
    pub path_queries: bool,
    /// Non-local queries (diameter, nearest marked vertex, ...) supported.
    pub non_local_queries: bool,
    /// Whether the structure can serve as the spanning-forest backend of the
    /// general-graph connectivity engine (`dyntree_connectivity`).
    pub general_graphs: bool,
    /// Whether weighted path aggregates (`Agg<M>` over any commutative
    /// monoid) are answered, and at what cost: `true` only for exact
    /// polylog-per-query support.
    pub weighted_path: bool,
    /// Whether weighted subtree/component aggregates are answered exactly.
    pub weighted_subtree: bool,
    /// Whether bulk *path* re-weighting (`PathApply`, a lazy `Action` tag
    /// pushed down on access — DESIGN.md §13) is O(log n) per op.
    pub lazy_path_update: bool,
    /// Whether bulk *component* re-weighting (`ComponentApply`) is
    /// O(log n) per op.
    pub lazy_component_update: bool,
}

impl Capability {
    /// The `weighted_aggregates` cell of Table 1, generated from the row's
    /// weighted capabilities (all structures share the same `Agg<M>` monoid
    /// API; this records which query families each answers exactly and
    /// fast).
    pub fn weighted_aggregates(&self) -> &'static str {
        match (self.weighted_path, self.weighted_subtree) {
            (true, true) => "path+subtree",
            (true, false) => "path",
            (false, true) => "subtree",
            (false, false) => "-",
        }
    }

    /// The `LazyAction` cell of Table 1: which bulk-update families the
    /// structure applies lazily (pending-action tags, DESIGN.md §13).
    /// Structures without a lazy-tag channel decline the ops with a typed
    /// `UnsupportedQuery` instead of faking them slowly.
    pub fn lazy_actions(&self) -> &'static str {
        match (self.lazy_path_update, self.lazy_component_update) {
            (true, true) => "path+component",
            (true, false) => "path",
            (false, true) => "component",
            (false, false) => "-",
        }
    }
}

/// Returns one row per structure implemented in this repository, mirroring
/// Table 1 of the paper plus the connectivity engine's row.
pub fn capability_matrix() -> Vec<Capability> {
    vec![
        Capability {
            name: "Link-cut tree",
            update_cost: "O(min{log n, D^2}) amortized",
            ternarized: false,
            parallel_updates: false,
            parallel_queries: false,
            subtree_queries: false,
            path_queries: true,
            non_local_queries: false,
            general_graphs: true,
            weighted_path: true,
            lazy_path_update: true,
            lazy_component_update: false,
            weighted_subtree: false,
        },
        Capability {
            name: "Euler tour tree",
            update_cost: "O(log n)",
            ternarized: false,
            parallel_updates: true,
            parallel_queries: false,
            subtree_queries: true,
            path_queries: false,
            non_local_queries: false,
            general_graphs: true,
            // path aggregates exist but only as an O(component) walk
            weighted_path: false,
            lazy_path_update: false,
            lazy_component_update: true,
            weighted_subtree: true,
        },
        Capability {
            name: "Topology tree",
            update_cost: "O(log n)",
            ternarized: true,
            parallel_updates: true,
            parallel_queries: true,
            subtree_queries: true,
            path_queries: true,
            non_local_queries: true,
            general_graphs: true,
            // exact only for interior degree ≤ 3 (ternarization caveat)
            weighted_path: false,
            lazy_path_update: false,
            lazy_component_update: false,
            weighted_subtree: true,
        },
        Capability {
            name: "UFO tree",
            update_cost: "O(min{log n, D})",
            ternarized: false,
            parallel_updates: true,
            parallel_queries: true,
            subtree_queries: true,
            path_queries: true,
            non_local_queries: true,
            general_graphs: true,
            weighted_path: true,
            lazy_path_update: false,
            lazy_component_update: false,
            weighted_subtree: true,
        },
        Capability {
            name: "HDT connectivity",
            update_cost: "O(log^2 n) amortized",
            ternarized: false,
            // the batch interface deduplicates and classifies in bulk but
            // applies operations sequentially today
            parallel_updates: false,
            parallel_queries: false,
            subtree_queries: false,
            path_queries: false,
            non_local_queries: false,
            general_graphs: true,
            // surfaced from the backend: tree-path and component aggregates
            weighted_path: true,
            lazy_path_update: true,
            lazy_component_update: true,
            weighted_subtree: true,
        },
    ]
}

/// Renders the capability matrix as an aligned text table (used by the
/// `table1` benchmark binary).
pub fn render_matrix() -> String {
    let rows = capability_matrix();
    let mut out = String::new();
    out.push_str(&format!(
        "{:<17} {:<30} {:>6} {:>9} {:>9} {:>8} {:>6} {:>9} {:>8} {:>13} {:>15}\n",
        "Structure",
        "Update cost",
        "Ternar",
        "ParUpd",
        "ParQry",
        "Subtree",
        "Path",
        "Non-local",
        "GenGraph",
        "WeightedAgg",
        "LazyAction"
    ));
    for r in rows {
        let weighted = r.weighted_aggregates();
        let lazy = r.lazy_actions();
        out.push_str(&format!(
            "{:<17} {:<30} {:>6} {:>9} {:>9} {:>8} {:>6} {:>9} {:>8} {:>13} {:>15}\n",
            r.name,
            r.update_cost,
            tick(r.ternarized),
            tick(r.parallel_updates),
            tick(r.parallel_queries),
            tick(r.subtree_queries),
            tick(r.path_queries),
            tick(r.non_local_queries),
            tick(r.general_graphs),
            weighted,
            lazy,
        ));
    }
    out
}

fn tick(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_matches_table1_shape() {
        let rows = capability_matrix();
        assert_eq!(rows.len(), 5);
        let ufo = rows.iter().find(|r| r.name == "UFO tree").unwrap();
        assert!(ufo.path_queries && ufo.subtree_queries && ufo.non_local_queries);
        assert!(!ufo.ternarized);
        let lct = rows.iter().find(|r| r.name == "Link-cut tree").unwrap();
        assert!(lct.path_queries && !lct.subtree_queries);
        let hdt = rows.iter().find(|r| r.name == "HDT connectivity").unwrap();
        assert!(hdt.general_graphs && !hdt.path_queries);
        assert!(
            rows.iter().all(|r| r.general_graphs),
            "every forest backs the connectivity engine"
        );
        let render = render_matrix();
        assert!(render.contains("UFO tree"));
        assert!(render.contains("HDT connectivity"));
        assert!(render.contains("WeightedAgg"));
        assert!(render.lines().count() >= 6);
    }

    #[test]
    fn weighted_aggregates_column_matches_the_shared_agg_surface() {
        let rows = capability_matrix();
        let ufo = rows.iter().find(|r| r.name == "UFO tree").unwrap();
        assert_eq!(ufo.weighted_aggregates(), "path+subtree");
        let lct = rows.iter().find(|r| r.name == "Link-cut tree").unwrap();
        assert_eq!(lct.weighted_aggregates(), "path");
        let ett = rows.iter().find(|r| r.name == "Euler tour tree").unwrap();
        assert_eq!(ett.weighted_aggregates(), "subtree");
        let topo = rows.iter().find(|r| r.name == "Topology tree").unwrap();
        assert_eq!(topo.weighted_aggregates(), "subtree");
        let hdt = rows.iter().find(|r| r.name == "HDT connectivity").unwrap();
        assert_eq!(hdt.weighted_aggregates(), "path+subtree");
    }

    #[test]
    fn lazy_action_column_matches_the_backend_support_consts() {
        use dyntree_connectivity::SpanningBackend;
        let rows = capability_matrix();
        let cell = |name: &str| rows.iter().find(|r| r.name == name).unwrap().lazy_actions();
        assert_eq!(cell("Link-cut tree"), "path");
        assert_eq!(cell("Euler tour tree"), "component");
        assert_eq!(cell("Topology tree"), "-");
        assert_eq!(cell("UFO tree"), "-");
        // the engine row aggregates what its backends can do
        assert_eq!(cell("HDT connectivity"), "path+component");
        // the table is generated, but the flags must agree with the real
        // backend consts the engine dispatches on
        let flags = |name: &str| {
            let r = rows.iter().find(|r| r.name == name).unwrap();
            (r.lazy_path_update, r.lazy_component_update)
        };
        assert_eq!(
            flags("Link-cut tree"),
            (
                <dyntree_linkcut::LinkCutForest>::SUPPORTS_PATH_APPLY,
                <dyntree_linkcut::LinkCutForest>::SUPPORTS_COMPONENT_APPLY,
            )
        );
        assert_eq!(
            flags("Euler tour tree"),
            (
                <dyntree_euler::EulerTourForest<dyntree_seqs::TreapSequence>>::SUPPORTS_PATH_APPLY,
                <dyntree_euler::EulerTourForest<dyntree_seqs::TreapSequence>>::SUPPORTS_COMPONENT_APPLY,
            )
        );
        assert_eq!(
            flags("UFO tree"),
            (
                <ufo_forest::UfoForest>::SUPPORTS_PATH_APPLY,
                <ufo_forest::UfoForest>::SUPPORTS_COMPONENT_APPLY,
            )
        );
        assert_eq!(
            flags("Topology tree"),
            (
                <ufo_forest::TopologyForest>::SUPPORTS_PATH_APPLY,
                <ufo_forest::TopologyForest>::SUPPORTS_COMPONENT_APPLY,
            )
        );
        let render = render_matrix();
        assert!(render.contains("LazyAction"));
        assert!(render.contains("path+component"));
    }
}
