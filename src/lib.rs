//! # UFO Trees — practical and provably-efficient parallel batch-dynamic trees
//!
//! This is the umbrella crate of the reproduction of *"UFO Trees: Practical
//! and Provably-Efficient Parallel Batch-Dynamic Trees"* (PPoPP 2026).  It
//! re-exports every component of the workspace under one roof:
//!
//! * [`UfoForest`] — the paper's contribution: a dynamic-trees structure based
//!   on tree contraction with unbounded fan-out merges.  Supports link/cut,
//!   connectivity, path aggregates, subtree aggregates, diameter and
//!   nearest-marked-vertex queries, plus batch updates and parallel batch
//!   queries.
//! * [`TopologyForest`] — topology trees (pair merges + dynamic
//!   ternarization), sharing the same contraction engine.
//! * [`LinkCutForest`] — splay-based link-cut trees, the strongest sequential
//!   baseline.
//! * [`TreapEulerForest`] / [`SplayEulerForest`] / [`BatchEulerForest`] —
//!   Euler tour trees over pluggable sequence backends.
//! * [`NaiveForest`] — an O(n)-per-operation oracle used by the test suite.
//! * [`DynConnectivity`] — fully-dynamic connectivity on **general graphs**
//!   (HDT levels), generic over any of the forests above as its
//!   spanning-forest backend ([`UfoConnectivity`], [`LinkCutConnectivity`],
//!   [`EulerConnectivity`], ...).
//! * [`ServingEngine`] — the epoch-snapshot serving layer over
//!   [`DynConnectivity`]: a single writer applies batches and publishes
//!   immutable snapshots; cloneable [`ReadHandle`]s answer `connected` /
//!   `component_size` / `component_agg` concurrently, wait-free in the
//!   steady state, each answer stamped with its epoch.
//! * [`workloads`] — every input generator of the paper's evaluation, plus
//!   dynamic edge streams for the connectivity engine.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! `EXPERIMENTS.md` for the reproduction of each table and figure.

pub use dyntree_connectivity as connectivity;
pub use dyntree_euler as euler;
pub use dyntree_linkcut as linkcut;
pub use dyntree_naive as naive;
pub use dyntree_primitives as primitives;
pub use dyntree_rctree as rctree;
pub use dyntree_seqs as seqs;
pub use dyntree_serve as serve;
pub use dyntree_ternary as ternary;
pub use dyntree_workloads as workloads;
pub use ufo_forest as ufo;

pub use dyntree_connectivity::{
    BatchReport, DeleteOutcome, DynConnectivity, EdgeKind, EulerConnectivity, GraphError, GraphOp,
    LinkCutConnectivity, NaiveConnectivity, OpOf, OpOutcome, SpanningBackend, TopologyConnectivity,
    UfoConnectivity,
};
pub use dyntree_euler::{BatchEulerForest, EulerTourForest, SplayEulerForest, TreapEulerForest};
pub use dyntree_linkcut::LinkCutForest;
pub use dyntree_naive::NaiveForest;
pub use dyntree_primitives::algebra::{
    Agg, CommutativeMonoid, I64Max, I64Min, I64Sum, InvertibleMonoid, MaxEdge, Monoid, Pair,
    SumMinMax, WeightStats, WeightedId,
};
pub use dyntree_serve::{
    EpochRetired, PinnedReader, ReadHandle, ServingEngine, Snapshot, UfoServingEngine, Versioned,
};
pub use dyntree_ternary::Ternarizer;
pub use ufo_forest::{ContractionForest, Policy, TopologyForest, UfoForest};

pub mod capabilities;

pub use capabilities::{capability_matrix, Capability};
