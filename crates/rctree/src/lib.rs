//! Rake-compress tree baseline — deferred stand-in (DESIGN.md §5).
//!
//! A dedicated change-propagation RC tree (Acar et al.) is future work: its
//! update path (self-adjusting re-execution of the contraction trace) differs
//! fundamentally from the level-synchronised engine in `ufo_forest`, and the
//! paper's evaluation uses the sequential RC tree only as a baseline.  Until
//! that lands, this crate keeps the workspace honest by re-exporting the
//! ternarized [`TopologyForest`] — the closest structure the workspace ships:
//! both are degree-3-bounded contraction hierarchies built from rake (pair
//! with a leaf) and compress (pair along a path) merges, and the paper itself
//! benchmarks RC trees behind the same dynamic ternarization wrapper.
//!
//! Downstream code should treat [`RcForest`] as "the RC-tree slot in the
//! benchmark matrix", not as a faithful RC tree.

pub use ufo_forest::TopologyForest;

/// The RC-tree stand-in: a ternarized topology forest (see crate docs).
pub type RcForest = TopologyForest;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stand_in_behaves_like_a_dynamic_tree() {
        let mut f = RcForest::new(8);
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(!f.link(2, 0), "cycle rejected");
        assert!(f.connected(0, 2));
        assert!(f.cut(1, 2));
        assert!(!f.connected(0, 2));
    }
}
