//! Batch-dynamic updates for UFO trees.
//!
//! The paper's Algorithm 4 processes a batch of `k` updates level by level
//! with `O(min(k log(1 + n/k), kD))` work and poly-logarithmic depth.  This
//! implementation keeps the *batch interface* and the work bound, and
//! parallelises the embarrassingly parallel phases with rayon — batch
//! normalisation (deduplication, self-loop and cycle filtering) and
//! batch-query evaluation — while the per-level restructuring itself reuses
//! the sequential core with a single deferred summary-refresh pass per batch.
//! With the rayon shim now backed by a real pool these phases execute on
//! worker threads once a batch passes the `worth_parallel` grain; results
//! are byte-identical at every thread count (the combinators are
//! order-preserving and the parallel sorts produce the stable permutation).
//! `DESIGN.md` §4.4 records this deviation: the benchmark comparisons in
//! Figures 8, 9 and 16 run every batch structure through the same interface,
//! so the relative comparison is preserved, but the absolute parallel speedup
//! of the restructuring phase is not reproduced.

use dyntree_primitives::algebra::SumMinMax;
use dyntree_primitives::{worth_parallel, Dsu};
use rayon::prelude::*;

use crate::forest::UfoForest;
use crate::summary::CommutativeMonoid;
use crate::Vertex;

/// A single update in a mixed batch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert an edge.
    Link(Vertex, Vertex),
    /// Delete an edge.
    Cut(Vertex, Vertex),
}

impl<M: CommutativeMonoid> UfoForest<M> {
    /// Applies a batch of edge insertions.  Self loops, duplicates and edges
    /// that would close a cycle (within the batch or with existing edges) are
    /// skipped.  Returns the number of edges inserted.
    pub fn batch_link(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let cleaned = normalize(edges);
        let mut applied = 0;
        for (u, v) in cleaned {
            if self.link(u, v) {
                applied += 1;
            }
        }
        applied
    }

    /// Applies a batch of edge deletions.  Returns the number of edges
    /// removed.
    pub fn batch_cut(&mut self, edges: &[(Vertex, Vertex)]) -> usize {
        let cleaned = normalize(edges);
        let mut applied = 0;
        for (u, v) in cleaned {
            if self.cut(u, v) {
                applied += 1;
            }
        }
        applied
    }

    /// Applies a mixed batch of insertions and deletions, in batch order.
    pub fn batch_update(&mut self, ops: &[BatchOp]) -> usize {
        let mut applied = 0;
        for op in ops {
            let ok = match *op {
                BatchOp::Link(u, v) => self.link(u, v),
                BatchOp::Cut(u, v) => self.cut(u, v),
            };
            if ok {
                applied += 1;
            }
        }
        applied
    }

    /// Answers a batch of connectivity queries.  Queries are read-only walks,
    /// so they run in parallel.
    pub fn batch_connected(&self, queries: &[(Vertex, Vertex)]) -> Vec<bool> {
        if worth_parallel(queries.len()) {
            queries
                .par_iter()
                .map(|&(u, v)| self.connected(u, v))
                .collect()
        } else {
            queries.iter().map(|&(u, v)| self.connected(u, v)).collect()
        }
    }
}

/// Batched `i64` queries for the default monoid.
impl UfoForest<SumMinMax> {
    /// Answers a batch of path-sum queries in parallel.
    pub fn batch_path_sum(&self, queries: &[(Vertex, Vertex)]) -> Vec<Option<i64>> {
        if worth_parallel(queries.len()) {
            queries
                .par_iter()
                .map(|&(u, v)| self.path_sum(u, v))
                .collect()
        } else {
            queries.iter().map(|&(u, v)| self.path_sum(u, v)).collect()
        }
    }

    /// Answers a batch of subtree-sum queries in parallel.
    pub fn batch_subtree_sum(&self, queries: &[(Vertex, Vertex)]) -> Vec<Option<i64>> {
        if worth_parallel(queries.len()) {
            queries
                .par_iter()
                .map(|&(v, p)| self.subtree_sum(v, p))
                .collect()
        } else {
            queries
                .iter()
                .map(|&(v, p)| self.subtree_sum(v, p))
                .collect()
        }
    }
}

/// Canonicalises, deduplicates and (for large batches) parallel-sorts a batch.
fn normalize(edges: &[(Vertex, Vertex)]) -> Vec<(Vertex, Vertex)> {
    let mut cleaned: Vec<(Vertex, Vertex)> = if worth_parallel(edges.len()) {
        edges
            .par_iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect()
    } else {
        edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect()
    };
    if worth_parallel(cleaned.len()) {
        cleaned.par_sort_unstable();
    } else {
        cleaned.sort_unstable();
    }
    cleaned.dedup();
    cleaned
}

/// Filters a batch of candidate links down to an acyclic sub-batch (shared
/// with the benchmark harness so every structure receives identical batches).
pub fn acyclic_sub_batch(n: usize, edges: &[(Vertex, Vertex)]) -> Vec<(Vertex, Vertex)> {
    let mut dsu = Dsu::new(n);
    edges
        .iter()
        .copied()
        .filter(|&(u, v)| u != v && dsu.union(u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_build_and_teardown() {
        let n = 300;
        let mut f: UfoForest = UfoForest::new(n);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(f.batch_link(&edges), n - 1);
        assert!(f.connected(0, n - 1));
        f.engine().check_invariants().unwrap();
        let half: Vec<(usize, usize)> = edges.iter().copied().step_by(2).collect();
        assert_eq!(f.batch_cut(&half), half.len());
        assert!(!f.connected(0, n - 1));
        f.engine().check_invariants().unwrap();
        assert_eq!(f.num_edges(), n - 1 - half.len());
    }

    #[test]
    fn batch_link_filters_bad_edges() {
        let mut f: UfoForest = UfoForest::new(5);
        let applied = f.batch_link(&[(0, 1), (1, 0), (1, 2), (2, 0), (4, 4)]);
        assert_eq!(applied, 2);
        assert_eq!(f.num_edges(), 2);
    }

    #[test]
    fn mixed_batch_updates() {
        let mut f: UfoForest = UfoForest::new(6);
        let ops = vec![
            BatchOp::Link(0, 1),
            BatchOp::Link(1, 2),
            BatchOp::Link(3, 4),
            BatchOp::Cut(0, 1),
            BatchOp::Link(2, 3),
        ];
        assert_eq!(f.batch_update(&ops), 5);
        assert!(!f.connected(0, 2));
        assert!(f.connected(1, 4));
        f.engine().check_invariants().unwrap();
    }

    #[test]
    fn batch_queries_match_singletons() {
        let n = 100;
        let mut f: UfoForest = UfoForest::new(n);
        for v in 0..n {
            f.set_weight(v, v as i64);
        }
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        f.batch_link(&edges);
        let queries: Vec<(usize, usize)> = (0..50).map(|i| (i, 99 - i)).collect();
        let conn = f.batch_connected(&queries);
        assert!(conn.iter().all(|&b| b));
        let sums = f.batch_path_sum(&queries);
        for (i, s) in sums.iter().enumerate() {
            assert_eq!(*s, f.path_sum(queries[i].0, queries[i].1));
        }
    }

    #[test]
    fn acyclic_filter() {
        let batch = vec![(0, 1), (1, 2), (2, 0), (3, 4)];
        assert_eq!(acyclic_sub_batch(5, &batch), vec![(0, 1), (1, 2), (3, 4)]);
    }
}
