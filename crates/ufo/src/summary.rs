//! Per-cluster summaries (the augmented values maintained during contraction).
//!
//! The aggregate types themselves live in `dyntree_primitives::algebra`: the
//! engine is generic over a [`CommutativeMonoid`] `M`, and every path or
//! subtree aggregate is an [`Agg<M>`].  The historical `i64` sum/min/max
//! structs survive as type aliases over the [`SumMinMax`] monoid —
//! [`PathAggregate`] and [`SubtreeAggregate`] are the same type today, and
//! `Agg`'s `Deref` to the monoid value keeps `agg.sum` / `agg.min` /
//! `agg.max` field reads compiling unchanged.

use dyntree_primitives::algebra::SumMinMax;
pub use dyntree_primitives::algebra::{Agg, CommutativeMonoid, Monoid};

use crate::{INF_DIST, NIL32};

/// Aggregate over the vertex weights of a path (endpoints inclusive unless
/// stated otherwise) under the default `i64` sum/min/max monoid.
pub type PathAggregate = Agg<SumMinMax>;

/// Aggregate over the vertex weights of a subtree (or whole component) under
/// the default `i64` sum/min/max monoid.
pub type SubtreeAggregate = Agg<SumMinMax>;

/// The augmented values each cluster maintains, generic over the vertex
/// weight monoid.
///
/// `boundary` holds the cluster's boundary vertices (the endpoints, inside the
/// cluster, of its external edges).  The paper proves every cluster has at
/// most two boundary vertices and that high-degree clusters have exactly one;
/// the engine asserts this in debug builds.  Boundary vertices are stored as
/// narrowed `u32` ids, like every other intra-forest link (DESIGN.md §12).
#[derive(Clone, Debug)]
pub struct Summary<M: CommutativeMonoid = SumMinMax> {
    /// Boundary vertices (`NIL32`-padded).
    pub boundary: [u32; 2],
    /// Number of valid entries of `boundary` (0, 1 or 2).
    pub nbound: u8,
    /// Aggregate over every vertex contained in the cluster.
    pub sub: Agg<M>,
    /// Total number of vertices contained (including phantom vertices).
    pub vertices: u64,
    /// Aggregate over the vertices strictly between the two boundary vertices
    /// (identity unless `nbound == 2`); `path.edges` is the number of edges on
    /// that cluster path.
    pub path: Agg<M>,
    /// Eccentricity (max distance in edges to any contained vertex) from each
    /// boundary vertex.
    pub ecc: [u64; 2],
    /// Longest path (in edges) between two vertices contained in the cluster.
    pub diam: u64,
    /// Distance from each boundary vertex to the nearest marked vertex inside
    /// the cluster (`INF_DIST` when none).
    pub near: [u64; 2],
}

impl<M: CommutativeMonoid> Summary<M> {
    /// Summary of an empty cluster (used as a starting point for folds).
    pub fn empty() -> Self {
        Summary {
            boundary: [NIL32, NIL32],
            nbound: 0,
            sub: Agg::IDENTITY,
            vertices: 0,
            path: Agg::IDENTITY,
            ecc: [0, 0],
            diam: 0,
            near: [INF_DIST, INF_DIST],
        }
    }

    /// Index of vertex `v` in the boundary array, if it is a boundary vertex.
    pub fn boundary_index(&self, v: u32) -> Option<usize> {
        (0..self.nbound as usize).find(|&i| self.boundary[i] == v)
    }

    /// Distance (in edges) between two boundary vertices of this cluster.
    /// Both arguments must be boundary vertices.
    pub fn boundary_distance(&self, a: u32, b: u32) -> u64 {
        if a == b {
            0
        } else {
            self.path.edges
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_aggregate_combines() {
        let a = PathAggregate::vertex(3);
        let b = PathAggregate::vertex(-1).cross_edge();
        let c = PathAggregate::combine(a, b);
        assert_eq!(c.sum, 2);
        assert_eq!(c.min, -1);
        assert_eq!(c.max, 3);
        assert_eq!(c.edges, 1);
        let d = PathAggregate::combine(c, PathAggregate::IDENTITY);
        assert_eq!(d, c);
    }

    #[test]
    fn subtree_aggregate_combines() {
        let a = SubtreeAggregate::vertex_if(5, false);
        let b = SubtreeAggregate::vertex_if(100, true); // phantom ignored
        let c = SubtreeAggregate::combine(a, b);
        assert_eq!(c.sum, 5);
        assert_eq!(c.count, 1);
        let d = SubtreeAggregate::combine(c, SubtreeAggregate::vertex_if(-2, false));
        assert_eq!(d.min, -2);
        assert_eq!(d.max, 5);
        assert_eq!(d.count, 2);
    }

    #[test]
    fn summary_boundary_helpers() {
        let mut s: Summary = Summary::empty();
        s.boundary = [7, 9];
        s.nbound = 2;
        s.path.edges = 4;
        assert_eq!(s.boundary_index(7), Some(0));
        assert_eq!(s.boundary_index(9), Some(1));
        assert_eq!(s.boundary_index(8), None);
        assert_eq!(s.boundary_distance(7, 7), 0);
        assert_eq!(s.boundary_distance(7, 9), 4);
    }
}
