//! The contraction-forest engine shared by UFO trees and topology trees.
//!
//! The engine is *level-synchronised*: leaf clusters (one per vertex) live at
//! level 0 and every cluster at level ℓ has its parent at level ℓ+1; clusters
//! that do not merge in a round receive a copy parent.  The paper's Lemma B.4 /
//! B.17 shows the total number of clusters under this scheme is `O(n)`.
//!
//! Sequential updates implement Algorithms 1 and 2: delete the ancestors of
//! the updated endpoints (skipping high-degree / high-fanout clusters under
//! the UFO policy), apply the edge change at every level where both endpoints'
//! surviving ancestors are distinct, then recluster the resulting root
//! clusters bottom-up.  Cluster summaries (boundaries, path/subtree
//! aggregates, distances) are refreshed in one deferred bottom-up pass at the
//! end of each update.

use dyntree_primitives::algebra::SumMinMax;

use crate::summary::{Agg, CommutativeMonoid, Summary};
use crate::{ClusterId, Vertex, INF_DIST, NIL32};

/// Narrows a cluster/vertex id to its stored `u32` form.
#[inline]
pub(crate) fn narrow(x: usize) -> u32 {
    debug_assert!(x < NIL32 as usize, "cluster id {x} exceeds u32 storage");
    x as u32
}

/// Which contraction rules the engine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Policy {
    /// UFO trees: pair merges between degree ≤ 2 clusters plus unbounded
    /// fan-out merges of a high-degree cluster with all its degree-1
    /// neighbours.  Accepts arbitrary-degree inputs.
    Ufo,
    /// Topology trees: pair merges only ((1,1), (1,2), (2,2), (1,3)); inputs
    /// must have maximum degree 3.
    Topology,
}

/// One directed adjacency record: an original edge with `my_end` inside this
/// cluster and `other_end` inside `neighbor`.
///
/// All three ids are stored narrowed to `u32` (DESIGN.md §12): an entry is 12
/// bytes instead of 24, and adjacency lists — the dominant per-edge cost of
/// the hierarchy — halve in size.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AdjEntry {
    /// The adjacent cluster at the same level.
    pub neighbor: u32,
    /// Endpoint of the original edge inside this cluster.
    pub my_end: u32,
    /// Endpoint of the original edge inside `neighbor`.
    pub other_end: u32,
}

/// A cluster of the contraction hierarchy.
///
/// Clusters live on a flat `Vec` slab with freelist recycling; all links
/// (parent pointer, child list, adjacency) are narrowed `u32` slab ids.
#[derive(Clone, Debug)]
pub struct Cluster<M: CommutativeMonoid = SumMinMax> {
    /// Parent cluster (one level up) or `NIL32`.
    pub parent: u32,
    /// Level in the hierarchy (leaves are level 0).
    pub level: u32,
    /// Whether the cluster is live (false for freed slots).
    pub alive: bool,
    /// Adjacent clusters at this level (one entry per incident original edge
    /// whose other endpoint lies in a different cluster at this level).
    pub neighbors: Vec<AdjEntry>,
    /// Child clusters (empty for leaves).
    pub children: Vec<u32>,
    /// Augmented values.
    pub summary: Summary<M>,
}

impl<M: CommutativeMonoid> Cluster<M> {
    fn new_leaf(summary: Summary<M>) -> Self {
        Cluster {
            parent: NIL32,
            level: 0,
            alive: true,
            neighbors: Vec::new(),
            children: Vec::new(),
            summary,
        }
    }

    /// Degree of the cluster at its level.
    pub fn degree(&self) -> usize {
        self.neighbors.len()
    }

    /// Fan-out (number of children).
    pub fn fanout(&self) -> usize {
        self.children.len()
    }
}

/// The cluster arena: a plain `Vec` slab that is additionally indexable by
/// the narrowed `u32` ids stored inside clusters and adjacency entries, so
/// `clusters[entry.neighbor]` works without a cast at every site.
#[derive(Clone, Debug)]
pub(crate) struct ClusterSlab<M: CommutativeMonoid = SumMinMax>(Vec<Cluster<M>>);

impl<M: CommutativeMonoid> std::ops::Deref for ClusterSlab<M> {
    type Target = Vec<Cluster<M>>;
    fn deref(&self) -> &Vec<Cluster<M>> {
        &self.0
    }
}

impl<M: CommutativeMonoid> std::ops::DerefMut for ClusterSlab<M> {
    fn deref_mut(&mut self) -> &mut Vec<Cluster<M>> {
        &mut self.0
    }
}

impl<M: CommutativeMonoid> std::ops::Index<u32> for ClusterSlab<M> {
    type Output = Cluster<M>;
    fn index(&self, i: u32) -> &Cluster<M> {
        &self.0[i as usize]
    }
}

impl<M: CommutativeMonoid> std::ops::IndexMut<u32> for ClusterSlab<M> {
    fn index_mut(&mut self, i: u32) -> &mut Cluster<M> {
        &mut self.0[i as usize]
    }
}

impl<M: CommutativeMonoid> std::ops::Index<usize> for ClusterSlab<M> {
    type Output = Cluster<M>;
    fn index(&self, i: usize) -> &Cluster<M> {
        &self.0[i]
    }
}

impl<M: CommutativeMonoid> std::ops::IndexMut<usize> for ClusterSlab<M> {
    fn index_mut(&mut self, i: usize) -> &mut Cluster<M> {
        &mut self.0[i]
    }
}

/// The contraction forest over vertices `0..n`, generic over the vertex
/// weight monoid (default: the `i64` sum/min/max aggregate).
#[derive(Clone, Debug)]
pub struct ContractionForest<M: CommutativeMonoid = SumMinMax> {
    policy: Policy,
    pub(crate) weights: Vec<M::Weight>,
    pub(crate) phantom: Vec<bool>,
    pub(crate) marked: Vec<bool>,
    pub(crate) clusters: ClusterSlab<M>,
    free: Vec<u32>,
    /// Root clusters awaiting reclustering, indexed by level.
    pending: Vec<Vec<u32>>,
    /// Clusters whose summaries must be recomputed.
    dirty: Vec<u32>,
    num_edges: usize,
}

impl<M: CommutativeMonoid> ContractionForest<M> {
    /// Creates a forest of `n` isolated vertices under the given policy.
    pub fn new(n: usize, policy: Policy) -> Self {
        let mut forest = ContractionForest {
            policy,
            weights: vec![M::Weight::default(); n],
            phantom: vec![false; n],
            marked: vec![false; n],
            clusters: ClusterSlab(Vec::with_capacity(2 * n)),
            free: Vec::new(),
            pending: Vec::new(),
            dirty: Vec::new(),
            num_edges: 0,
        };
        for v in 0..n {
            let summary = forest.leaf_summary(v);
            forest.clusters.push(Cluster::new_leaf(summary));
        }
        forest
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Appends isolated vertices (with default weight, non-phantom, unmarked)
    /// until the forest has `n` of them.  A smaller `n` is a no-op.
    ///
    /// Leaf clusters must occupy ids `0..n` — queries and the ternarization
    /// layer rely on `leaf id == vertex id` — so an internal cluster
    /// currently sitting on a soon-to-be-leaf id is relocated to a fresh slot
    /// at the end of the arena first, with every reference to it (parent's
    /// child list, children's parent pointers, adjacency mirrors) repointed.
    /// Must be called between updates (the engine holds no pending
    /// reclustering work then); cost is O(added + relocated degrees).
    pub fn ensure_vertices(&mut self, n: usize) {
        let old = self.len();
        if n <= old {
            return;
        }
        debug_assert!(
            self.pending.iter().all(Vec::is_empty) && self.dirty.is_empty(),
            "ensure_vertices during an update"
        );
        // ids below `n` stop being available for internal clusters
        self.free.retain(|&id| id as usize >= n);
        self.weights.resize(n, M::Weight::default());
        self.phantom.resize(n, false);
        self.marked.resize(n, false);
        for v in old..n {
            if v < self.clusters.len() && self.clusters[v].alive {
                self.relocate_cluster(v);
            }
            let summary = self.leaf_summary(v);
            if v < self.clusters.len() {
                self.clusters[v] = Cluster::new_leaf(summary);
            } else {
                debug_assert_eq!(self.clusters.len(), v);
                self.clusters.push(Cluster::new_leaf(summary));
            }
        }
    }

    /// Moves the internal cluster at id `from` to a fresh id at the end of
    /// the arena, repointing its parent's child list, its children's parent
    /// pointers and its neighbours' mirror adjacency entries.  Only
    /// [`ensure_vertices`](Self::ensure_vertices) calls this, to vacate a
    /// slot needed for a new leaf.
    fn relocate_cluster(&mut self, from: ClusterId) {
        let from = narrow(from);
        let to = narrow(self.clusters.len());
        let dead = Cluster {
            parent: NIL32,
            level: 0,
            alive: false,
            neighbors: Vec::new(),
            children: Vec::new(),
            summary: Summary::empty(),
        };
        let cluster = std::mem::replace(&mut self.clusters[from], dead);
        debug_assert!(cluster.level > 0, "leaves are never relocated");
        if cluster.parent != NIL32 {
            for ch in self.clusters[cluster.parent].children.iter_mut() {
                if *ch == from {
                    *ch = to;
                }
            }
        }
        for &ch in &cluster.children {
            self.clusters[ch].parent = to;
        }
        for e in &cluster.neighbors {
            for m in self.clusters[e.neighbor].neighbors.iter_mut() {
                if m.neighbor == from && m.my_end == e.other_end && m.other_end == e.my_end {
                    m.neighbor = to;
                }
            }
        }
        self.clusters.push(cluster);
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Policy in use.
    pub fn policy(&self) -> Policy {
        self.policy
    }

    /// Marks vertex `v` as phantom: its weight is ignored by every aggregate.
    /// Used by the ternarization wrapper for the auxiliary path vertices.
    pub fn set_phantom(&mut self, v: Vertex, phantom: bool) {
        self.phantom[v] = phantom;
        self.refresh_vertex(v);
    }

    /// Sets the weight of vertex `v`.
    pub fn set_weight(&mut self, v: Vertex, w: M::Weight) {
        self.weights[v] = w;
        self.refresh_vertex(v);
    }

    /// Returns the weight of vertex `v`.
    pub fn weight(&self, v: Vertex) -> M::Weight {
        self.weights[v]
    }

    /// Marks or unmarks vertex `v` for nearest-marked-vertex queries.
    pub fn set_marked(&mut self, v: Vertex, m: bool) {
        self.marked[v] = m;
        self.refresh_vertex(v);
    }

    /// Whether vertex `v` is marked.
    pub fn is_marked(&self, v: Vertex) -> bool {
        self.marked[v]
    }

    /// Whether edge `(u, v)` is currently present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        u < self.len()
            && v < self.len()
            && self.clusters[u]
                .neighbors
                .iter()
                .any(|e| e.my_end as usize == u && e.other_end as usize == v)
    }

    /// The topmost cluster of the tree containing `v`.
    pub fn top_cluster(&self, v: Vertex) -> ClusterId {
        let mut c = narrow(v);
        while self.clusters[c].parent != NIL32 {
            c = self.clusters[c].parent;
        }
        c as usize
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        u == v || self.top_cluster(u) == self.top_cluster(v)
    }

    /// Height of the hierarchy above `v` (number of ancestor levels).
    pub fn height(&self, v: Vertex) -> usize {
        let mut c = narrow(v);
        let mut h = 0;
        while self.clusters[c].parent != NIL32 {
            c = self.clusters[c].parent;
            h += 1;
        }
        h
    }

    /// Inserts edge `(u, v)`.  Returns `false` for self loops, duplicate edges
    /// and edges that would close a cycle.
    pub fn link(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v || u >= self.len() || v >= self.len() || self.has_edge(u, v) {
            return false;
        }
        if self.connected(u, v) {
            return false;
        }
        self.update_edge(u, v, false);
        self.num_edges += 1;
        true
    }

    /// Removes edge `(u, v)`.  Returns `false` if the edge is not present.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        self.update_edge(u, v, true);
        self.num_edges -= 1;
        true
    }

    /// Exact heap bytes owned by the structure.
    pub fn memory_bytes(&self) -> usize {
        let mut bytes = self.clusters.capacity() * std::mem::size_of::<Cluster<M>>()
            + self.weights.capacity() * std::mem::size_of::<M::Weight>()
            + self.phantom.capacity()
            + self.marked.capacity()
            + self.free.capacity() * std::mem::size_of::<u32>();
        for c in self.clusters.iter() {
            bytes += c.neighbors.capacity() * std::mem::size_of::<AdjEntry>();
            bytes += c.children.capacity() * std::mem::size_of::<u32>();
        }
        bytes
    }

    /// Number of live clusters (leaves plus internal).
    pub fn live_clusters(&self) -> usize {
        self.clusters.iter().filter(|c| c.alive).count()
    }

    // ------------------------------------------------------------------
    // Sequential update (Algorithms 1 and 2)
    // ------------------------------------------------------------------

    fn update_edge(&mut self, u: Vertex, v: Vertex, delete: bool) {
        let (u, v) = (narrow(u), narrow(v));
        self.delete_ancestors(u);
        self.delete_ancestors(v);
        if self.clusters[u].parent == NIL32 {
            self.push_pending(u);
        }
        if self.clusters[v].parent == NIL32 {
            self.push_pending(v);
        }
        self.apply_edge_all_levels(u, v, delete);
        self.mark_dirty(u);
        self.mark_dirty(v);
        self.recluster();
        self.flush_dirty();
    }

    /// Algorithm 1: walk up from `c0`'s parent, deleting every ancestor that
    /// the policy allows to be deleted and disconnecting low-degree clusters
    /// from surviving parents.
    fn delete_ancestors(&mut self, c0: u32) {
        let mut prev = c0;
        let mut prev_deleted = false;
        let mut curr = self.clusters[c0].parent;
        while curr != NIL32 {
            let next = self.clusters[curr].parent;
            let deletable = self.deletable(curr);
            if deletable {
                self.delete_cluster(curr);
                prev_deleted = true;
            } else {
                if !prev_deleted
                    && self.clusters[prev].alive
                    && self.clusters[prev].parent == curr
                    && self.clusters[prev].degree() <= 2
                {
                    self.disconnect_child(prev, curr);
                }
                prev_deleted = false;
            }
            prev = curr;
            curr = next;
        }
    }

    fn deletable(&self, c: u32) -> bool {
        match self.policy {
            Policy::Topology => true,
            Policy::Ufo => self.clusters[c].degree() < 3 && self.clusters[c].fanout() < 3,
        }
    }

    /// Deletes cluster `c`: its children become pending root clusters, its
    /// adjacency entries are removed from neighbours (and from surviving
    /// ancestors at higher levels), and the slot is freed.
    fn delete_cluster(&mut self, c: u32) {
        debug_assert!(self.clusters[c].alive && self.clusters[c].level > 0);
        let parent = self.clusters[c].parent;
        let entries: Vec<AdjEntry> = self.clusters[c].neighbors.clone();
        for e in &entries {
            self.remove_adj(e.neighbor, e.other_end, e.my_end);
            self.mark_dirty(e.neighbor);
            // the vertices of `c` leave every surviving ancestor, so the edge
            // must disappear from the levels above as well
            if parent != NIL32 {
                let qp = self.clusters[e.neighbor].parent;
                self.remove_edge_upward(parent, qp, e.my_end, e.other_end);
            }
        }
        let children: Vec<u32> = self.clusters[c].children.clone();
        for y in children {
            self.clusters[y].parent = NIL32;
            self.push_pending(y);
            self.mark_dirty(y);
        }
        if parent != NIL32 {
            self.clusters[parent].children.retain(|&x| x != c);
            self.mark_dirty(parent);
        }
        let cl = &mut self.clusters[c];
        cl.alive = false;
        cl.parent = NIL32;
        cl.neighbors.clear();
        cl.children.clear();
        self.free.push(c);
    }

    /// Disconnects `child` from its surviving parent `parent`, turning `child`
    /// into a pending root cluster.  If removing the child would disconnect the
    /// parent's remaining children (the child is the hub of a star merge), the
    /// parent is deleted instead.
    fn disconnect_child(&mut self, child: u32, parent: u32) {
        // Count the child's internal edges (edges to siblings).
        let internal = self.clusters[child]
            .neighbors
            .iter()
            .filter(|e| self.clusters[e.neighbor].parent == parent)
            .count();
        if self.clusters[parent].fanout() >= 3 && internal >= 2 {
            // `child` is the hub; removing it would shatter the parent.
            self.delete_cluster(parent);
            return;
        }
        self.clusters[child].parent = NIL32;
        self.clusters[parent].children.retain(|&x| x != child);
        self.mark_dirty(parent);
        self.push_pending(child);
        self.mark_dirty(child);
        // The child's vertices leave the parent's subtree: remove its external
        // edges from the parent's level and above.
        let entries: Vec<AdjEntry> = self.clusters[child].neighbors.clone();
        for e in entries {
            let qp = self.clusters[e.neighbor].parent;
            self.remove_edge_upward(parent, qp, e.my_end, e.other_end);
        }
    }

    /// Removes the original edge `(my_end, other_end)` from every level where
    /// it currently connects the two ancestor chains starting at `pa` / `pb`.
    fn remove_edge_upward(&mut self, mut pa: u32, mut pb: u32, a: u32, b: u32) {
        while pa != NIL32 && pb != NIL32 && pa != pb {
            if !self.clusters[pa].alive || !self.clusters[pb].alive {
                break;
            }
            self.remove_adj(pa, a, b);
            self.remove_adj(pb, b, a);
            self.mark_dirty(pa);
            self.mark_dirty(pb);
            pa = self.clusters[pa].parent;
            pb = self.clusters[pb].parent;
        }
    }

    /// Adds the original edge `(my_end, other_end)` at every level where the
    /// two ancestor chains starting at `pa` / `pb` are distinct.
    fn add_edge_upward(&mut self, mut pa: u32, mut pb: u32, a: u32, b: u32) {
        while pa != NIL32 && pb != NIL32 && pa != pb {
            self.add_adj(pa, pb, a, b);
            self.add_adj(pb, pa, b, a);
            self.mark_dirty(pa);
            self.mark_dirty(pb);
            pa = self.clusters[pa].parent;
            pb = self.clusters[pb].parent;
        }
    }

    /// Inserts or deletes the original edge `(u, v)` at every level where the
    /// two endpoints' ancestors are distinct live clusters.
    fn apply_edge_all_levels(&mut self, u: u32, v: u32, delete: bool) {
        let mut au = u;
        let mut av = v;
        while au != NIL32 && av != NIL32 && au != av {
            if delete {
                self.remove_adj(au, u, v);
                self.remove_adj(av, v, u);
            } else {
                self.add_adj(au, av, u, v);
                self.add_adj(av, au, v, u);
            }
            self.mark_dirty(au);
            self.mark_dirty(av);
            au = self.clusters[au].parent;
            av = self.clusters[av].parent;
        }
    }

    fn add_adj(&mut self, c: u32, nbr: u32, my_end: u32, other_end: u32) {
        debug_assert!(self.clusters[c].alive);
        if !self.clusters[c]
            .neighbors
            .iter()
            .any(|e| e.my_end == my_end && e.other_end == other_end)
        {
            self.clusters[c].neighbors.push(AdjEntry {
                neighbor: nbr,
                my_end,
                other_end,
            });
            // A parentless cluster that gains an edge stops being a finished
            // tree top: it must take part in the coming reclustering rounds,
            // or its tree would never merge with the edge's other side.
            if self.clusters[c].parent == NIL32 {
                self.push_pending(c);
            }
        } else {
            // keep the neighbour pointer fresh
            for e in &mut self.clusters[c].neighbors {
                if e.my_end == my_end && e.other_end == other_end {
                    e.neighbor = nbr;
                }
            }
        }
    }

    fn remove_adj(&mut self, c: u32, my_end: u32, other_end: u32) {
        let list = &mut self.clusters[c].neighbors;
        if let Some(pos) = list
            .iter()
            .position(|e| e.my_end == my_end && e.other_end == other_end)
        {
            list.swap_remove(pos);
        }
    }

    fn push_pending(&mut self, c: u32) {
        let level = self.clusters[c].level as usize;
        if self.pending.len() <= level {
            self.pending.resize_with(level + 1, Vec::new);
        }
        self.pending[level].push(c);
    }

    pub(crate) fn mark_dirty(&mut self, c: u32) {
        self.dirty.push(c);
    }

    // ------------------------------------------------------------------
    // Reclustering (Algorithm 2)
    // ------------------------------------------------------------------

    fn recluster(&mut self) {
        let mut level = 0;
        while level < self.pending.len() {
            let roots: Vec<u32> = {
                let bucket = &mut self.pending[level];
                if bucket.is_empty() {
                    level += 1;
                    continue;
                }
                std::mem::take(bucket)
            };
            let mut roots: Vec<u32> = roots
                .into_iter()
                .filter(|&c| {
                    self.clusters[c].alive
                        && self.clusters[c].parent == NIL32
                        && self.clusters[c].level as usize == level
                })
                .collect();
            roots.sort_unstable();
            roots.dedup();
            if roots.is_empty() {
                // a later push may refill this level; re-check before moving on
                if self.pending[level].is_empty() {
                    level += 1;
                }
                continue;
            }
            self.recluster_level(level, &roots);
            // do not advance: the level may have received new pending roots
            // (e.g. children of clusters deleted while absorbing neighbours)
        }
        self.pending.clear();
    }

    fn recluster_level(&mut self, level: usize, roots: &[u32]) {
        let mut new_parents: Vec<u32> = Vec::new();

        // Phase A (UFO only): high-degree root clusters absorb all their
        // degree-1 neighbours.
        if self.policy == Policy::Ufo {
            for &x in roots {
                if !self.is_unparented_root(x, level) || self.clusters[x].degree() < 3 {
                    continue;
                }
                let p = self.new_cluster(level as u32 + 1);
                self.attach_child(x, p);
                let nbrs: Vec<u32> = self.clusters[x]
                    .neighbors
                    .iter()
                    .map(|e| e.neighbor)
                    .collect();
                for y in nbrs {
                    if !self.clusters[y].alive || self.clusters[y].degree() != 1 {
                        continue;
                    }
                    if self.clusters[y].parent != NIL32 {
                        self.delete_ancestors(y);
                    }
                    if self.clusters[y].parent == NIL32 {
                        self.attach_child(y, p);
                    }
                }
                new_parents.push(p);
            }
        }

        // Phase B: degree-2 (and, for topology trees, degree-3) root clusters
        // try to pair with an unmerged neighbour.
        for &x in roots {
            if !self.is_unparented_root(x, level) {
                continue;
            }
            let dx = self.clusters[x].degree();
            let pairable = match self.policy {
                Policy::Ufo => dx == 2,
                Policy::Topology => dx == 2 || dx == 3,
            };
            if !pairable {
                continue;
            }
            let entries: Vec<AdjEntry> = self.clusters[x].neighbors.clone();
            let mut merged = false;
            for e in entries {
                let y = e.neighbor;
                if !self.clusters[y].alive {
                    continue;
                }
                let dy = self.clusters[y].degree();
                if !self.pair_allowed(dx, dy) || self.merges(y) {
                    continue;
                }
                if self.clusters[y].parent != NIL32 {
                    // y sits alone under a copy parent: join it there
                    let yp = self.clusters[y].parent;
                    self.delete_ancestors(yp);
                    self.attach_to_existing(x, yp);
                } else {
                    let p = self.new_cluster(level as u32 + 1);
                    self.attach_child(x, p);
                    self.attach_child(y, p);
                    new_parents.push(p);
                }
                merged = true;
                break;
            }
            if !merged {
                let p = self.new_cluster(level as u32 + 1);
                self.attach_child(x, p);
                new_parents.push(p);
            }
        }

        // Phase C: degree-1 root clusters.
        for &x in roots {
            if !self.is_unparented_root(x, level) || self.clusters[x].degree() != 1 {
                continue;
            }
            let e = self.clusters[x].neighbors[0];
            let y = e.neighbor;
            let dy = if self.clusters[y].alive {
                self.clusters[y].degree()
            } else {
                0
            };
            if self.clusters[y].alive && self.clusters[y].parent != NIL32 && !self.merges(y) {
                let yp = self.clusters[y].parent;
                self.delete_ancestors(yp);
                self.attach_to_existing(x, yp);
            } else if self.clusters[y].alive
                && self.clusters[y].parent != NIL32
                && dy >= 3
                && self.policy == Policy::Ufo
            {
                // y is a high-degree cluster already merged into its star
                // parent: x joins that star.
                let yp = self.clusters[y].parent;
                self.delete_ancestors(yp);
                self.attach_to_existing(x, yp);
            } else if self.clusters[y].alive
                && self.clusters[y].parent == NIL32
                && self.pair_allowed(1, dy)
            {
                let p = self.new_cluster(level as u32 + 1);
                self.attach_child(x, p);
                self.attach_child(y, p);
                new_parents.push(p);
            } else {
                let p = self.new_cluster(level as u32 + 1);
                self.attach_child(x, p);
                new_parents.push(p);
            }
        }

        // Degree-0 root clusters are finished trees: they get no parent.

        // Populate the adjacency lists of the newly created parents.
        for &p in &new_parents {
            if !self.clusters[p].alive {
                continue;
            }
            self.populate_parent_adjacency(p);
            self.mark_dirty(p);
            self.push_pending(p);
        }
    }

    fn is_unparented_root(&self, c: u32, level: usize) -> bool {
        self.clusters[c].alive
            && self.clusters[c].parent == NIL32
            && self.clusters[c].level as usize == level
    }

    fn pair_allowed(&self, da: usize, db: usize) -> bool {
        match self.policy {
            Policy::Ufo => (1..=2).contains(&da) && (1..=2).contains(&db),
            Policy::Topology => {
                matches!((da.min(db), da.max(db)), (1, 1) | (1, 2) | (2, 2) | (1, 3))
            }
        }
    }

    /// Whether `y` already participates in a genuine merge (its parent has
    /// more than one child).
    fn merges(&self, y: u32) -> bool {
        let p = self.clusters[y].parent;
        p != NIL32 && self.clusters[p].fanout() >= 2
    }

    fn new_cluster(&mut self, level: u32) -> u32 {
        let cluster = Cluster {
            parent: NIL32,
            level,
            alive: true,
            neighbors: Vec::new(),
            children: Vec::new(),
            summary: Summary::empty(),
        };
        if let Some(id) = self.free.pop() {
            self.clusters[id] = cluster;
            id
        } else {
            self.clusters.push(cluster);
            narrow(self.clusters.len() - 1)
        }
    }

    fn attach_child(&mut self, child: u32, parent: u32) {
        debug_assert_eq!(self.clusters[child].parent, NIL32);
        debug_assert_eq!(
            self.clusters[child].level + 1,
            self.clusters[parent].level,
            "level mismatch while attaching"
        );
        self.clusters[child].parent = parent;
        self.clusters[parent].children.push(child);
        self.mark_dirty(parent);
    }

    /// Attaches root cluster `x` to an already-existing parent `p` and fixes
    /// up the adjacency of `p` (and of `p`'s surviving ancestors) to account
    /// for `x`'s external edges.
    fn attach_to_existing(&mut self, x: u32, p: u32) {
        debug_assert!(self.clusters[p].alive);
        self.attach_child(x, p);
        let entries: Vec<AdjEntry> = self.clusters[x].neighbors.clone();
        for e in entries {
            let qp = self.clusters[e.neighbor].parent;
            if qp == p || qp == NIL32 {
                continue;
            }
            self.add_edge_upward(p, qp, e.my_end, e.other_end);
        }
        self.mark_dirty(p);
    }

    /// Builds the adjacency list of a freshly created parent from its
    /// children's adjacency, inserting the symmetric entries into neighbouring
    /// clusters that already exist.
    fn populate_parent_adjacency(&mut self, p: u32) {
        let children: Vec<u32> = self.clusters[p].children.clone();
        for c in children {
            let entries: Vec<AdjEntry> = self.clusters[c].neighbors.clone();
            for e in entries {
                if !self.clusters[e.neighbor].alive {
                    continue;
                }
                let qp = self.clusters[e.neighbor].parent;
                if qp == p || qp == NIL32 {
                    continue;
                }
                self.add_adj(p, qp, e.my_end, e.other_end);
                self.add_adj(qp, p, e.other_end, e.my_end);
                self.mark_dirty(qp);
            }
        }
    }

    // ------------------------------------------------------------------
    // Summary maintenance
    // ------------------------------------------------------------------

    fn refresh_vertex(&mut self, v: Vertex) {
        self.mark_dirty(narrow(v));
        self.flush_dirty();
    }

    /// Recomputes the summaries of every dirty cluster and of all their
    /// ancestors, bottom-up.
    pub(crate) fn flush_dirty(&mut self) {
        if self.dirty.is_empty() {
            return;
        }
        let mut work: Vec<u32> = std::mem::take(&mut self.dirty);
        work.retain(|&c| (c as usize) < self.clusters.len() && self.clusters[c].alive);
        work.sort_unstable();
        work.dedup();
        // close under ancestors
        let mut seen: dyntree_primitives::hash::FxHashSet<u32> = work.iter().copied().collect();
        let mut frontier = work.clone();
        while let Some(c) = frontier.pop() {
            let p = self.clusters[c].parent;
            if p != NIL32 && self.clusters[p].alive && seen.insert(p) {
                work.push(p);
                frontier.push(p);
            }
        }
        work.sort_unstable_by_key(|&c| self.clusters[c].level);
        for c in work {
            if self.clusters[c].alive {
                let s = self.compute_summary(c);
                self.clusters[c].summary = s;
            }
        }
    }

    fn leaf_summary(&self, v: Vertex) -> Summary<M> {
        let w = self.weights[v];
        let phantom = self.phantom[v];
        Summary {
            boundary: [narrow(v), narrow(v)],
            nbound: 1,
            sub: Agg::vertex_if(w, phantom),
            vertices: 1,
            path: Agg::IDENTITY,
            ecc: [0, 0],
            diam: 0,
            near: if self.marked[v] {
                [0, 0]
            } else {
                [INF_DIST, INF_DIST]
            },
        }
    }

    /// The vertex-weight contribution of `v` to a path aggregate (identity for
    /// phantom vertices, but the vertex still counts as a hop).
    pub(crate) fn vertex_path_value(&self, v: Vertex) -> Agg<M> {
        if self.phantom[v] {
            Agg::IDENTITY
        } else {
            Agg::vertex(self.weights[v])
        }
    }

    /// Recomputes the summary of cluster `c` from its children (or from the
    /// vertex data for leaves).
    pub(crate) fn compute_summary(&self, c: u32) -> Summary<M> {
        let cl = &self.clusters[c];
        // Boundaries come from the cluster's own adjacency.
        let mut boundary = [NIL32, NIL32];
        let mut nbound = 0usize;
        for e in &cl.neighbors {
            if !boundary[..nbound].contains(&e.my_end) {
                if nbound < 2 {
                    boundary[nbound] = e.my_end;
                }
                nbound += 1;
            }
        }
        debug_assert!(
            nbound <= 2,
            "cluster {} has {} boundary vertices",
            c,
            nbound
        );
        let nbound = nbound.min(2);

        if cl.children.is_empty() {
            // leaf
            let mut s = self.leaf_summary(c as usize);
            // a leaf's boundary is always itself
            s.boundary = [c, c];
            s.nbound = if nbound == 0 { 1 } else { nbound as u8 };
            return s;
        }

        let children = &cl.children;
        let mut s = Summary::empty();
        s.boundary = boundary;
        s.nbound = nbound as u8;
        for &ch in children {
            s.sub = Agg::combine(s.sub, self.clusters[ch].summary.sub);
            s.vertices += self.clusters[ch].summary.vertices;
        }

        if children.len() == 1 {
            let ch = &self.clusters[children[0]].summary;
            s.path = if nbound == 2 { ch.path } else { Agg::IDENTITY };
            s.diam = ch.diam;
            for i in 0..nbound {
                let bi = ch
                    .boundary_index(s.boundary[i])
                    .expect("parent boundary must be a child boundary");
                s.ecc[i] = ch.ecc[bi];
                s.near[i] = ch.near[bi];
            }
            return s;
        }

        // General case: the children form either a pair or a star (hub plus
        // attached children).  Identify the hub as the child with the most
        // internal (sibling) edges; every other child is attached to the hub
        // by exactly one internal edge.
        let internal_edges = |child: u32| -> Vec<AdjEntry> {
            self.clusters[child]
                .neighbors
                .iter()
                .filter(|e| {
                    self.clusters[e.neighbor].alive && self.clusters[e.neighbor].parent == c
                })
                .copied()
                .collect()
        };
        let hub = *children
            .iter()
            .max_by_key(|&&ch| internal_edges(ch).len())
            .unwrap();
        let hub_sum = &self.clusters[hub].summary;
        let hub_internal = internal_edges(hub);

        // Locate each parent boundary: either inside the hub, or inside one of
        // the attached children.  For each boundary we precompute the distance
        // to every hub boundary vertex and the base (within "its own child +
        // the hub") eccentricity / nearest-marked distance.
        struct BoundaryLoc {
            /// the attached child containing the boundary (NIL32 if in the hub)
            child: u32,
            /// distance from the boundary to each hub boundary vertex
            d_hub: [u64; 2],
            ecc: u64,
            near: u64,
        }
        let mut locs: Vec<BoundaryLoc> = Vec::with_capacity(nbound);
        for i in 0..nbound {
            let b = s.boundary[i];
            if let Some(bi) = hub_sum.boundary_index(b) {
                let mut d_hub = [0u64; 2];
                for (j, d) in d_hub.iter_mut().enumerate().take(hub_sum.nbound as usize) {
                    *d = hub_sum.boundary_distance(b, hub_sum.boundary[j]);
                }
                locs.push(BoundaryLoc {
                    child: NIL32,
                    d_hub,
                    ecc: hub_sum.ecc[bi],
                    near: hub_sum.near[bi],
                });
            } else {
                // boundary lies in an attached child
                let (child, e) = hub_internal
                    .iter()
                    .find_map(|e| {
                        let ch = &self.clusters[e.neighbor].summary;
                        ch.boundary_index(b).map(|_| (e.neighbor, *e))
                    })
                    .expect("parent boundary must lie in a child");
                let ch = &self.clusters[child].summary;
                let bi = ch.boundary_index(b).unwrap();
                let y = e.other_end; // attach vertex inside the child
                let x = e.my_end; // attach vertex inside the hub
                let d_to_hub_attach = ch.boundary_distance(b, y) + 1;
                let xi = hub_sum.boundary_index(x).unwrap_or(0);
                let mut d_hub = [0u64; 2];
                for (j, d) in d_hub.iter_mut().enumerate().take(hub_sum.nbound as usize) {
                    *d = d_to_hub_attach + hub_sum.boundary_distance(x, hub_sum.boundary[j]);
                }
                locs.push(BoundaryLoc {
                    child,
                    d_hub,
                    ecc: ch.ecc[bi].max(d_to_hub_attach + hub_sum.ecc[xi]),
                    near: ch.near[bi].min(d_to_hub_attach.saturating_add(hub_sum.near[xi])),
                });
            }
        }

        // Fold the attached children into diameter / eccentricity / nearest.
        // Diameter bookkeeping: per hub boundary vertex, the two largest
        // pendant depths of attached children.
        let mut best_depth: [[u64; 2]; 2] = [[0, 0], [0, 0]];
        let mut diam = hub_sum.diam;
        let mut ecc = [0u64; 2];
        let mut near = [INF_DIST; 2];
        for i in 0..nbound {
            ecc[i] = locs[i].ecc;
            near[i] = locs[i].near;
        }

        for e in &hub_internal {
            let child = e.neighbor;
            if child == hub {
                continue;
            }
            let ch = &self.clusters[child].summary;
            let attach_hub = e.my_end; // vertex inside the hub
            let attach_child = e.other_end; // vertex inside the child
            let ci = ch.boundary_index(attach_child).unwrap_or(0);
            let depth = 1 + ch.ecc[ci];
            let near_child = ch.near[ci].saturating_add(1);
            diam = diam.max(ch.diam);
            let hi = hub_sum.boundary_index(attach_hub).unwrap_or(0);
            {
                let slot = &mut best_depth[hi];
                if depth > slot[0] {
                    slot[1] = slot[0];
                    slot[0] = depth;
                } else if depth > slot[1] {
                    slot[1] = depth;
                }
                diam = diam.max(depth + hub_sum.ecc[hi]);
            }
            for i in 0..nbound {
                // distance from parent boundary i to the attach vertex on the
                // hub side (skipping the child containing the boundary itself)
                if locs[i].child == child {
                    continue;
                }
                let through = locs[i].d_hub[hi];
                ecc[i] = ecc[i].max(through + depth);
                near[i] = near[i].min(through.saturating_add(near_child));
            }
        }
        // combine the two deepest pendants at each hub boundary vertex, and
        // across the hub's two boundary vertices
        for depths in best_depth.iter().take(hub_sum.nbound as usize) {
            if depths[0] > 0 && depths[1] > 0 {
                diam = diam.max(depths[0] + depths[1]);
            }
        }
        if hub_sum.nbound == 2 && best_depth[0][0] > 0 && best_depth[1][0] > 0 {
            diam = diam.max(best_depth[0][0] + hub_sum.path.edges + best_depth[1][0]);
        }
        s.diam = diam.max(ecc[..nbound].iter().copied().max().unwrap_or(0));
        s.ecc = ecc;
        s.near = near;

        // Cluster path: only meaningful with two boundary vertices.
        if nbound == 2 {
            let (b0, b1) = (s.boundary[0], s.boundary[1]);
            s.path = self.path_between_in_parent(c, hub, &hub_internal, b0, b1);
        }
        s
    }

    /// Aggregate over the vertices strictly between `b0` and `b1`, both of
    /// which are boundary vertices of the parent `p` whose children are `hub`
    /// plus the clusters attached to it via `hub_internal`.
    fn path_between_in_parent(
        &self,
        _p: u32,
        hub: u32,
        hub_internal: &[AdjEntry],
        b0: u32,
        b1: u32,
    ) -> Agg<M> {
        let hub_sum = &self.clusters[hub].summary;
        let loc = |b: u32| -> Option<usize> { hub_sum.boundary_index(b) };
        match (loc(b0), loc(b1)) {
            (Some(_), Some(_)) => {
                // both boundaries are inside the hub: the parent path is the
                // hub's own cluster path
                if b0 == b1 {
                    Agg::IDENTITY
                } else {
                    hub_sum.path
                }
            }
            _ => {
                // One (or both) boundary lies in a non-hub child: the parent
                // is a pair merge.  Find the children containing b0 / b1 and
                // stitch their paths through the connecting edge.
                let find_child = |b: u32| -> Option<(u32, AdjEntry)> {
                    hub_internal.iter().find_map(|e| {
                        let ch = &self.clusters[e.neighbor].summary;
                        ch.boundary_index(b).map(|_| (e.neighbor, *e))
                    })
                };
                let inside_child = |child: u32, from: u32, to: u32| -> Agg<M> {
                    let cs = &self.clusters[child].summary;
                    if from == to {
                        Agg::IDENTITY
                    } else {
                        let _ = cs;
                        cs.path
                    }
                };
                match (loc(b0), find_child(b0), loc(b1), find_child(b1)) {
                    (Some(_), _, None, Some((c1, e1))) => {
                        // b0 in hub, b1 in child c1 attached via e1
                        let x = e1.my_end; // in hub
                        let y = e1.other_end; // in c1
                        let mut agg = if b0 == x { Agg::IDENTITY } else { hub_sum.path };
                        if x != b0 {
                            agg = Agg::combine(agg, self.vertex_path_value(x as usize));
                        }
                        agg = agg.cross_edge();
                        if y != b1 {
                            agg = Agg::combine(agg, self.vertex_path_value(y as usize));
                            agg = Agg::combine(agg, inside_child(c1, y, b1));
                        }
                        agg
                    }
                    (None, Some((c0, e0)), Some(_), _) => {
                        // symmetric case
                        let x = e0.my_end;
                        let y = e0.other_end;
                        let mut agg = if b1 == x { Agg::IDENTITY } else { hub_sum.path };
                        if x != b1 {
                            agg = Agg::combine(agg, self.vertex_path_value(x as usize));
                        }
                        agg = agg.cross_edge();
                        if y != b0 {
                            agg = Agg::combine(agg, self.vertex_path_value(y as usize));
                            agg = Agg::combine(agg, inside_child(c0, y, b0));
                        }
                        agg
                    }
                    (None, Some((c0, e0)), None, Some((c1, e1))) => {
                        // both boundaries in (distinct) non-hub children:
                        // b0 .. e0 .. hub .. e1 .. b1
                        let mut agg = if e0.other_end != b0 {
                            Agg::combine(
                                inside_child(c0, b0, e0.other_end),
                                self.vertex_path_value(e0.other_end as usize),
                            )
                        } else {
                            Agg::IDENTITY
                        };
                        agg = agg.cross_edge();
                        // through the hub from e0.my_end to e1.my_end
                        agg = Agg::combine(agg, self.vertex_path_value(e0.my_end as usize));
                        if e0.my_end != e1.my_end {
                            agg = Agg::combine(agg, hub_sum.path);
                            agg = Agg::combine(agg, self.vertex_path_value(e1.my_end as usize));
                        }
                        agg = agg.cross_edge();
                        if e1.other_end != b1 {
                            agg = Agg::combine(agg, self.vertex_path_value(e1.other_end as usize));
                            agg = Agg::combine(agg, inside_child(c1, e1.other_end, b1));
                        }
                        agg
                    }
                    _ => Agg::IDENTITY,
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariant checking (tests)
    // ------------------------------------------------------------------

    /// Exhaustively checks the structural invariants of the hierarchy against
    /// the ground-truth forest described by the leaf adjacency.  Intended for
    /// tests on small inputs; cost is O(n · height).
    pub fn check_invariants(&self) -> Result<(), String> {
        let n = self.len();
        // 1. leaf adjacency is symmetric and defines a forest
        let mut dsu = vec![usize::MAX; n];
        fn find(dsu: &mut Vec<usize>, x: usize) -> usize {
            if dsu[x] == usize::MAX {
                return x;
            }
            let r = find(dsu, dsu[x]);
            dsu[x] = r;
            r
        }
        for v in 0..n {
            for e in &self.clusters[v].neighbors {
                if e.my_end as usize != v {
                    return Err(format!("leaf {} has entry with my_end {}", v, e.my_end));
                }
                let u = e.other_end as usize;
                if !self.clusters[u]
                    .neighbors
                    .iter()
                    .any(|r| r.my_end as usize == u && r.other_end as usize == v)
                {
                    return Err(format!("edge ({},{}) not symmetric", v, u));
                }
                if v < u {
                    let (ru, rv) = (find(&mut dsu, v), find(&mut dsu, u));
                    if ru == rv {
                        return Err(format!("cycle detected at edge ({},{})", v, u));
                    }
                    dsu[ru] = rv;
                }
            }
        }
        // 2. parent/child consistency, level synchronisation
        for (id, c) in self.clusters.iter().enumerate() {
            if !c.alive {
                continue;
            }
            if c.parent != NIL32 {
                let p = &self.clusters[c.parent];
                if !p.alive {
                    return Err(format!("cluster {} has dead parent", id));
                }
                if p.level != c.level + 1 {
                    return Err(format!("cluster {} level mismatch with parent", id));
                }
                if !p.children.contains(&narrow(id)) {
                    return Err(format!("cluster {} missing from parent's children", id));
                }
            }
            for &ch in &c.children {
                if !self.clusters[ch].alive || self.clusters[ch].parent != narrow(id) {
                    return Err(format!("child {} of {} inconsistent", ch, id));
                }
            }
        }
        // 3. every connected component contracts to a single top cluster and
        //    membership is consistent
        for v in 0..n {
            for e in &self.clusters[v].neighbors {
                let u = e.other_end as usize;
                if self.top_cluster(u) != self.top_cluster(v) {
                    return Err(format!(
                        "endpoints of edge ({},{}) have different top clusters",
                        v, u
                    ));
                }
            }
        }
        // 4. cluster adjacency at every level matches the ground truth: an
        //    entry (my_end, other_end) exists at level ℓ iff the leaf edge
        //    exists and the two ancestors at level ℓ are distinct.
        for v in 0..n {
            let leaf_edges: Vec<(u32, u32)> = self.clusters[v]
                .neighbors
                .iter()
                .map(|e| (e.my_end, e.other_end))
                .collect();
            for (a, b) in leaf_edges {
                let mut ca = a;
                let mut cb = b;
                loop {
                    if ca == cb {
                        break;
                    }
                    if !self.clusters[ca]
                        .neighbors
                        .iter()
                        .any(|e| e.my_end == a && e.other_end == b && e.neighbor == cb)
                    {
                        return Err(format!(
                            "edge ({},{}) missing at level {} between clusters {} and {}",
                            a, b, self.clusters[ca].level, ca, cb
                        ));
                    }
                    let (pa, pb) = (self.clusters[ca].parent, self.clusters[cb].parent);
                    if pa == NIL32 || pb == NIL32 {
                        if pa != pb {
                            return Err(format!(
                                "edge ({},{}): one chain ended before meeting",
                                a, b
                            ));
                        }
                        break;
                    }
                    ca = pa;
                    cb = pb;
                }
            }
            // no stale entries: every adjacency entry of every ancestor of v
            // must correspond to a real leaf edge with v's side inside it
        }
        for (id, cl) in self.clusters.iter().enumerate() {
            if !cl.alive {
                continue;
            }
            for e in &cl.neighbors {
                // the recorded original edge must exist at the leaves
                if !self.clusters[e.my_end]
                    .neighbors
                    .iter()
                    .any(|l| l.other_end == e.other_end)
                {
                    return Err(format!(
                        "cluster {} has stale edge ({},{})",
                        id, e.my_end, e.other_end
                    ));
                }
                // my_end must be contained in this cluster, other_end in the neighbour
                if self.ancestor_at_level(e.my_end as usize, cl.level) != Some(id) {
                    return Err(format!(
                        "cluster {} lists edge endpoint {} it does not contain",
                        id, e.my_end
                    ));
                }
                if self.ancestor_at_level(e.other_end as usize, cl.level)
                    != Some(e.neighbor as usize)
                {
                    return Err(format!(
                        "cluster {} neighbour pointer stale for edge ({},{})",
                        id, e.my_end, e.other_end
                    ));
                }
            }
        }
        Ok(())
    }

    /// The ancestor of leaf `v` at `level`, if the chain reaches it.
    pub fn ancestor_at_level(&self, v: Vertex, level: u32) -> Option<ClusterId> {
        let mut c = narrow(v);
        loop {
            if self.clusters[c].level == level {
                return Some(c as usize);
            }
            if self.clusters[c].level > level {
                return None;
            }
            let p = self.clusters[c].parent;
            if p == NIL32 {
                return None;
            }
            c = p;
        }
    }

    /// The chain of ancestors of `v` from the leaf to the top, inclusive.
    pub fn ancestor_chain(&self, v: Vertex) -> Vec<ClusterId> {
        let mut out = vec![v];
        let mut c = narrow(v);
        while self.clusters[c].parent != NIL32 {
            c = self.clusters[c].parent;
            out.push(c as usize);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The narrowed adjacency entry must stay at 12 bytes — this is the
    /// memory contract behind the bytes-per-edge gate (DESIGN.md §12).
    #[test]
    fn adj_entry_is_twelve_bytes() {
        assert_eq!(std::mem::size_of::<AdjEntry>(), 12);
    }

    /// Repeatedly linking and cutting the same edges must recycle dead
    /// cluster slots through the freelist instead of growing the slab without
    /// bound (regression test for slab reuse-after-free bookkeeping).
    #[test]
    fn cluster_freelist_recycles_slots() {
        let mut f: ContractionForest = ContractionForest::new(8, Policy::Ufo);
        for v in 0..7 {
            assert!(f.link(v, v + 1));
        }
        let after_build = f.clusters.len();
        for _ in 0..50 {
            assert!(f.cut(3, 4));
            assert!(f.link(3, 4));
            f.check_invariants().unwrap();
        }
        // The slab may grow a little past the initial build (churn can retire
        // a few clusters before their slots hit the freelist), but it must
        // not grow linearly with the number of cut/link cycles.
        assert!(
            f.clusters.len() <= after_build + 16,
            "slab leaked: {} -> {}",
            after_build,
            f.clusters.len()
        );
        // Freed ids really are handed back out: a fresh link after a cut must
        // not allocate more than it freed.
        let before = f.clusters.len();
        assert!(f.cut(0, 1));
        assert!(f.link(0, 1));
        assert!(f.clusters.len() <= before + 2);
    }

    /// Dead slots on the freelist are never reachable through live links.
    #[test]
    fn freelist_slots_are_dead() {
        let mut f: ContractionForest = ContractionForest::new(16, Policy::Ufo);
        for v in 0..15 {
            f.link(v, v + 1);
        }
        for v in (1..15).step_by(3) {
            f.cut(v, v + 1);
        }
        f.check_invariants().unwrap();
        for &id in f.free.iter() {
            assert!(!f.clusters[id].alive, "freelist slot {id} is alive");
        }
        // And every live cluster's links point at live clusters only.
        for c in f.clusters.iter().filter(|c| c.alive) {
            if c.parent != NIL32 {
                assert!(f.clusters[c.parent].alive);
            }
            for &ch in &c.children {
                assert!(f.clusters[ch].alive);
            }
        }
    }
}
