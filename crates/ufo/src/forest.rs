//! The public forest types: [`UfoForest`] (the paper's contribution) and
//! [`TopologyForest`] (topology trees behind dynamic ternarization).

use dyntree_primitives::algebra::SumMinMax;
use dyntree_ternary::{Ternarizer, UnderlyingOp};

use crate::engine::{ContractionForest, Policy};
use crate::summary::{Agg, CommutativeMonoid};
use crate::Vertex;

/// A UFO tree forest over vertices `0..n`, generic over the vertex weight
/// monoid (default: `i64` sum/min/max).
///
/// Thin façade over [`ContractionForest`] with the UFO merge policy; see the
/// crate documentation for the supported operations.
#[derive(Clone, Debug)]
pub struct UfoForest<M: CommutativeMonoid = SumMinMax> {
    inner: ContractionForest<M>,
}

impl<M: CommutativeMonoid> UfoForest<M> {
    /// Creates a forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            inner: ContractionForest::new(n, Policy::Ufo),
        }
    }

    /// Builds a forest from an edge list (edges that would create cycles are
    /// skipped).
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut f = Self::new(n);
        for &(u, v) in edges {
            f.link(u, v);
        }
        f
    }

    /// Access to the underlying contraction engine (for advanced queries and
    /// instrumentation).
    pub fn engine(&self) -> &ContractionForest<M> {
        &self.inner
    }

    /// Mutable access to the underlying contraction engine.
    pub fn engine_mut(&mut self) -> &mut ContractionForest<M> {
        &mut self.inner
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Appends isolated vertices until the forest has `n` of them.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.inner.ensure_vertices(n);
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.inner.num_edges()
    }

    /// Inserts edge `(u, v)`; returns `false` for self loops, duplicates and
    /// cycle-creating edges.
    pub fn link(&mut self, u: Vertex, v: Vertex) -> bool {
        self.inner.link(u, v)
    }

    /// Removes edge `(u, v)`; returns `false` if not present.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> bool {
        self.inner.cut(u, v)
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        self.inner.connected(u, v)
    }

    /// Whether edge `(u, v)` is present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.inner.has_edge(u, v)
    }

    /// Sets the weight of vertex `v`.
    pub fn set_weight(&mut self, v: Vertex, w: M::Weight) {
        self.inner.set_weight(v, w);
    }

    /// Returns the weight of vertex `v`.
    pub fn weight(&self, v: Vertex) -> M::Weight {
        self.inner.weight(v)
    }

    /// Marks or unmarks `v` for nearest-marked-vertex queries.
    pub fn set_marked(&mut self, v: Vertex, m: bool) {
        self.inner.set_marked(v, m);
    }

    /// Monoid aggregate over the vertex weights on the `u`–`v` path.
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<Agg<M>> {
        self.inner.path_aggregate(u, v)
    }

    /// Number of edges on the `u`–`v` path.
    pub fn path_length(&self, u: Vertex, v: Vertex) -> Option<u64> {
        self.inner.path_length(u, v)
    }

    /// Monoid aggregate over the subtree of `v` away from its neighbour
    /// `parent`.
    pub fn subtree_aggregate(&self, v: Vertex, parent: Vertex) -> Option<Agg<M>> {
        self.inner.subtree_aggregate(v, parent)
    }

    /// Number of vertices in the subtree of `v` away from `parent`.
    pub fn subtree_size(&self, v: Vertex, parent: Vertex) -> Option<u64> {
        self.inner.subtree_size(v, parent)
    }

    /// Monoid aggregate over the whole component containing `v`.
    pub fn component_aggregate(&self, v: Vertex) -> Agg<M> {
        self.inner.component_aggregate(v)
    }

    /// Number of vertices in the component containing `v`.
    pub fn component_size(&self, v: Vertex) -> u64 {
        self.inner.component_size(v)
    }

    /// Diameter, in edges, of the component containing `v`.
    pub fn component_diameter(&self, v: Vertex) -> u64 {
        self.inner.component_diameter(v)
    }

    /// Distance from `v` to the nearest marked vertex in its component.
    pub fn nearest_marked_distance(&self, v: Vertex) -> Option<u64> {
        self.inner.nearest_marked_distance(v)
    }

    /// Exact heap bytes owned by the structure.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.
impl UfoForest<SumMinMax> {
    /// Sum of vertex weights on the `u`–`v` path.
    pub fn path_sum(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_sum(u, v)
    }

    /// Maximum vertex weight on the `u`–`v` path.
    pub fn path_max(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_max(u, v)
    }

    /// Minimum vertex weight on the `u`–`v` path.
    pub fn path_min(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_min(u, v)
    }

    /// Sum of vertex weights in the subtree of `v` away from `parent`.
    pub fn subtree_sum(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.inner.subtree_sum(v, parent)
    }

    /// Maximum vertex weight in the subtree of `v` away from `parent`.
    pub fn subtree_max(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.inner.subtree_max(v, parent)
    }

    /// Minimum vertex weight in the subtree of `v` away from `parent`.
    pub fn subtree_min(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.inner.subtree_min(v, parent)
    }
}

/// Topology trees over arbitrary-degree inputs: the contraction engine with
/// the topology policy, wrapped in dynamic ternarization exactly as the paper
/// does for its topology-tree and RC-tree baselines.
#[derive(Clone, Debug)]
pub struct TopologyForest<M: CommutativeMonoid = SumMinMax> {
    ternarizer: Ternarizer,
    inner: ContractionForest<M>,
    n: usize,
}

impl<M: CommutativeMonoid> TopologyForest<M> {
    /// Creates a forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        let cap = Ternarizer::capacity_bound(n);
        let mut inner: ContractionForest<M> = ContractionForest::new(cap, Policy::Topology);
        // Vertices above `n` are phantom ternarization helpers: they carry
        // the monoid identity (via the phantom flag), so the generic interior
        // weights thread through ternarization untouched.
        for v in n..cap {
            inner.set_phantom(v, true);
        }
        Self {
            ternarizer: Ternarizer::new(n),
            inner,
            n,
        }
    }

    /// Builds a forest from an edge list.
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut f = Self::new(n);
        for &(u, v) in edges {
            f.link(u, v);
        }
        f
    }

    /// Number of original vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Appends isolated original vertices until the forest has `n` of them.
    ///
    /// The underlying contraction engine is grown to the ternarizer's
    /// capacity bound for the new vertex count; freshly grown underlying
    /// slots default to phantom (they are ternarization helpers), and the
    /// new vertices' primary slots — possibly recycled extra-slot ids — get
    /// their phantom flag cleared so their weights count again.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        let cap = Ternarizer::capacity_bound(n);
        let old_cap = self.inner.len();
        self.inner.ensure_vertices(cap);
        for s in old_cap..cap {
            self.inner.set_phantom(s, true);
        }
        for s in self.ternarizer.grow(n) {
            self.inner.set_phantom(s, false);
        }
        self.n = n;
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of original edges currently present.
    pub fn num_edges(&self) -> usize {
        self.ternarizer.num_edges()
    }

    /// Inserts edge `(u, v)`.
    pub fn link(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v || u >= self.n || v >= self.n || self.ternarizer.has_edge(u, v) {
            return false;
        }
        if self.connected(u, v) {
            return false;
        }
        let ops = match self.ternarizer.link(u, v) {
            Some(ops) => ops,
            None => return false,
        };
        self.apply(&ops);
        true
    }

    /// Removes edge `(u, v)`.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> bool {
        let ops = match self.ternarizer.cut(u, v) {
            Some(ops) => ops,
            None => return false,
        };
        self.apply(&ops);
        true
    }

    fn apply(&mut self, ops: &[UnderlyingOp]) {
        for op in ops {
            match *op {
                UnderlyingOp::Link(a, b) => {
                    let ok = self.inner.link(a, b);
                    debug_assert!(ok, "underlying link ({a},{b}) rejected");
                }
                UnderlyingOp::Cut(a, b) => {
                    let ok = self.inner.cut(a, b);
                    debug_assert!(ok, "underlying cut ({a},{b}) rejected");
                }
            }
        }
    }

    /// Whether `u` and `v` are connected.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        self.inner.connected(
            self.ternarizer.representative(u),
            self.ternarizer.representative(v),
        )
    }

    /// Whether edge `(u, v)` is present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.ternarizer.has_edge(u, v)
    }

    /// Sets the weight of original vertex `v` (stored on its primary slot).
    pub fn set_weight(&mut self, v: Vertex, w: M::Weight) {
        self.inner.set_weight(self.ternarizer.representative(v), w);
    }

    /// Returns the weight of vertex `v`.
    pub fn weight(&self, v: Vertex) -> M::Weight {
        self.inner.weight(self.ternarizer.representative(v))
    }

    /// Monoid aggregate over the vertex weights on the `u`–`v` path (phantom
    /// ternarization vertices contribute the identity; see the exactness
    /// caveat on [`path_sum`](TopologyForest::path_sum), which applies to
    /// every weight component — the `edges` counter counts *underlying*
    /// edges and is exact only for degree ≤ 3 interiors too).
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<Agg<M>> {
        self.inner.path_aggregate(
            self.ternarizer.representative(u),
            self.ternarizer.representative(v),
        )
    }

    /// Monoid aggregate over the subtree of `v` away from `parent`.
    pub fn subtree_aggregate(&self, v: Vertex, parent: Vertex) -> Option<Agg<M>> {
        let (sv, sp) = self.ternarizer.edge_slots(v, parent)?;
        self.inner.subtree_aggregate(sv, sp)
    }

    /// Monoid aggregate over the whole component containing `v`.
    pub fn component_aggregate(&self, v: Vertex) -> Agg<M> {
        self.inner
            .component_aggregate(self.ternarizer.representative(v))
    }

    /// Number of original vertices in the component containing `v`.
    pub fn component_size(&self, v: Vertex) -> u64 {
        self.component_aggregate(v).count
    }

    /// Exact heap bytes owned (engine + ternarizer).
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes() + self.ternarizer.memory_bytes()
    }

    /// Access to the underlying contraction engine.
    pub fn engine(&self) -> &ContractionForest<M> {
        &self.inner
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.
impl TopologyForest<SumMinMax> {
    /// Sum of vertex weights on the `u`–`v` path (phantom ternarization
    /// vertices contribute nothing).
    ///
    /// **Exactness caveat** (applies to [`path_max`](Self::path_max) and
    /// [`path_min`](Self::path_min) too): the answer is exact whenever every
    /// *interior* vertex of the path has degree ≤ 3.  An interior vertex of
    /// degree ≥ 4 may be entered and left through edges hosted on two extra
    /// ternarization slots whose underlying path misses the weight-carrying
    /// primary slot, silently omitting that vertex's weight.  This is a
    /// fundamental limit of weight-on-one-slot dynamic ternarization (any two
    /// disjoint pairs of hosted edges would both need to bracket the same
    /// slot) and one of the paper's motivations for UFO trees, which support
    /// unbounded degrees natively and are always exact.  Endpoint weights are
    /// always included regardless of degree.
    pub fn path_sum(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_sum(
            self.ternarizer.representative(u),
            self.ternarizer.representative(v),
        )
    }

    /// Maximum vertex weight on the `u`–`v` path (see the exactness caveat on
    /// [`path_sum`](Self::path_sum)).
    pub fn path_max(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_max(
            self.ternarizer.representative(u),
            self.ternarizer.representative(v),
        )
    }

    /// Minimum vertex weight on the `u`–`v` path (see the exactness caveat on
    /// [`path_sum`](Self::path_sum)).
    pub fn path_min(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.inner.path_min(
            self.ternarizer.representative(u),
            self.ternarizer.representative(v),
        )
    }

    /// Sum of vertex weights in the subtree of `v` away from `parent`.
    ///
    /// The subtree is delimited by the original edge `(v, parent)`, which maps
    /// to a specific underlying edge between two slots.
    pub fn subtree_sum(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        // The underlying edge may be attached to non-primary slots, so resolve
        // through the engine's adjacency from the representative slots: use
        // the component split defined by the mapped edge.
        let _ = (v, parent);
        self.subtree_aggregate(v, parent).map(|a| a.sum)
    }

    /// Number of original vertices in the subtree of `v` away from `parent`.
    pub fn subtree_size(&self, v: Vertex, parent: Vertex) -> Option<u64> {
        self.subtree_aggregate(v, parent).map(|a| a.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ufo_basic_link_cut() {
        let mut f: UfoForest = UfoForest::new(8);
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(f.link(2, 3));
        assert!(!f.link(3, 0));
        assert!(f.connected(0, 3));
        assert!(!f.connected(0, 4));
        assert!(f.cut(1, 2));
        assert!(!f.connected(0, 3));
        assert!(f.connected(2, 3));
        assert_eq!(f.num_edges(), 2);
        f.engine().check_invariants().unwrap();
    }

    #[test]
    fn ufo_star_and_queries() {
        let mut f: UfoForest = UfoForest::new(10);
        for v in 0..10 {
            f.set_weight(v, v as i64);
        }
        for v in 1..10 {
            assert!(f.link(0, v));
        }
        f.engine().check_invariants().unwrap();
        assert_eq!(f.component_size(0), 10);
        assert_eq!(f.component_diameter(0), 2);
        assert_eq!(f.path_sum(3, 7), Some(3 + 7));
        assert_eq!(f.path_length(3, 7), Some(2));
        assert_eq!(f.path_max(1, 2), Some(2));
        assert_eq!(f.subtree_sum(0, 4), Some((0..10).sum::<i64>() - 4));
        assert_eq!(f.subtree_sum(4, 0), Some(4));
        assert_eq!(f.subtree_size(0, 4), Some(9));
    }

    #[test]
    fn ufo_path_graph_queries() {
        let n = 50;
        let mut f: UfoForest = UfoForest::new(n);
        for v in 0..n {
            f.set_weight(v, v as i64);
        }
        for v in 0..n - 1 {
            assert!(f.link(v, v + 1));
        }
        f.engine().check_invariants().unwrap();
        assert_eq!(f.component_diameter(0), (n - 1) as u64);
        assert_eq!(f.path_length(0, n - 1), Some((n - 1) as u64));
        assert_eq!(f.path_sum(10, 20), Some((10..=20).sum::<i64>()));
        assert_eq!(f.path_min(10, 20), Some(10));
        assert_eq!(f.path_max(10, 20), Some(20));
        assert_eq!(f.subtree_size(20, 19), Some((n - 20) as u64));
        // nearest marked
        let mut f2 = f.clone();
        f2.set_marked(40, true);
        assert_eq!(f2.nearest_marked_distance(10), Some(30));
        assert_eq!(f2.nearest_marked_distance(45), Some(5));
        assert_eq!(f.nearest_marked_distance(0), None);
    }

    #[test]
    fn ufo_height_is_logarithmic_on_paths_and_constant_on_stars() {
        let n = 1024;
        let mut path: UfoForest = UfoForest::new(n);
        for v in 0..n - 1 {
            path.link(v, v + 1);
        }
        let h_path = path.engine().height(0);
        assert!(h_path <= 4 * 11, "path height too large: {}", h_path);

        let mut star: UfoForest = UfoForest::new(n);
        for v in 1..n {
            star.link(0, v);
        }
        let h_star = star.engine().height(0);
        assert!(h_star <= 6, "star height should be O(D): {}", h_star);
    }

    #[test]
    fn ufo_growth_relocates_internal_clusters() {
        // links first, so internal clusters occupy the ids the new leaves
        // need; ensure_vertices must relocate them and stay consistent
        let mut f: UfoForest = UfoForest::new(4);
        for v in 0..4 {
            f.set_weight(v, 10 + v as i64);
        }
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(f.link(2, 3));
        f.engine().check_invariants().unwrap();
        f.ensure_vertices(9);
        f.engine().check_invariants().unwrap();
        assert_eq!(f.len(), 9);
        assert!(f.connected(0, 3), "old path survives growth");
        assert!(!f.connected(0, 7), "new vertices start isolated");
        assert_eq!(f.path_sum(0, 3), Some(10 + 11 + 12 + 13));
        // the grown vertices are full citizens: link, weigh, query
        for v in 4..9 {
            f.set_weight(v, v as i64);
            assert!(f.link(v - 1, v));
        }
        f.engine().check_invariants().unwrap();
        assert_eq!(f.component_size(0), 9);
        assert_eq!(f.path_sum(4, 6), Some(4 + 5 + 6));
        assert_eq!(f.subtree_sum(8, 7), Some(8));
        // growth is repeatable
        f.ensure_vertices(12);
        f.engine().check_invariants().unwrap();
        assert!(f.link(8, 11));
        assert!(f.connected(0, 11));
    }

    #[test]
    fn ufo_growth_on_star_hub() {
        // a star makes the hub's ancestor a high-fanout cluster; growth must
        // not disturb it even when its id gets claimed by a new leaf
        let mut f: UfoForest = UfoForest::new(6);
        for v in 1..6 {
            assert!(f.link(0, v));
        }
        f.ensure_vertices(40);
        f.engine().check_invariants().unwrap();
        for v in 6..40 {
            assert!(f.link(0, v), "hub absorbs grown vertex {v}");
        }
        f.engine().check_invariants().unwrap();
        assert_eq!(f.component_size(0), 40);
        assert_eq!(f.component_diameter(0), 2);
    }

    #[test]
    fn topology_growth_reuses_recycled_slots_correctly() {
        let mut f: TopologyForest = TopologyForest::new(5);
        for v in 0..5 {
            f.set_weight(v, 1);
        }
        // star forces extra ternarization slots, teardown recycles them
        for v in 1..5 {
            assert!(f.link(0, v));
        }
        for v in 1..5 {
            assert!(f.cut(0, v));
        }
        f.ensure_vertices(8);
        assert_eq!(f.len(), 8);
        // new vertices may sit on recycled (previously phantom) slots: their
        // weights must count again
        for v in 5..8 {
            f.set_weight(v, 100);
        }
        assert!(f.link(4, 5));
        assert!(f.link(5, 6));
        assert!(f.connected(4, 6));
        assert_eq!(f.component_aggregate(4).sum, 1 + 100 + 100);
        assert_eq!(f.component_size(4), 3);
        f.engine().check_invariants().unwrap();
    }

    #[test]
    fn topology_forest_with_ternarization() {
        let mut f: TopologyForest = TopologyForest::new(12);
        for v in 0..12 {
            f.set_weight(v, v as i64);
        }
        // a star forces ternarization
        for v in 1..12 {
            assert!(f.link(0, v));
        }
        assert!(f.connected(3, 9));
        assert_eq!(f.component_size(0), 12);
        assert_eq!(f.path_sum(3, 7), Some(3 + 7));
        assert_eq!(f.path_max(3, 7), Some(7));
        assert!(f.cut(0, 3));
        assert!(!f.connected(3, 9));
        assert_eq!(f.num_edges(), 10);
        f.engine().check_invariants().unwrap();
    }
}
