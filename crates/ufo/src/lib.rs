//! UFO trees — unbounded fan-out parallel batch-dynamic trees.
//!
//! This crate is the core of the reproduction: a *contraction forest* engine
//! that represents each tree of the input forest as a hierarchy of clusters
//! produced by rounds of tree contraction, exactly as described in Sections 3
//! and 4 of the paper.  Two merge policies share the engine:
//!
//! * [`Policy::Ufo`] — the paper's contribution: degree-1/degree-2 clusters
//!   merge along a maximal matching and *high-degree clusters absorb all of
//!   their degree-1 neighbours in one round* (unbounded fan-out), which keeps
//!   the hierarchy height at `O(min(log n, D))` without ternarization.
//! * [`Policy::Topology`] — Frederickson's topology trees: only pair merges
//!   are allowed, and inputs of degree > 3 must be ternarized first (the
//!   public [`TopologyForest`] wrapper does this via `dyntree_ternary`).
//!
//! Updates follow Algorithms 1–2 of the paper (delete the ancestors of the
//! endpoints, avoiding high-degree/high-fanout clusters, then recluster
//! bottom-up).  Queries are read-only walks over the hierarchy: connectivity,
//! vertex-weight path aggregates, subtree aggregates (including
//! non-invertible ones), component diameter and nearest-marked-vertex
//! queries.  Batch updates are exposed through [`UfoForest::batch_link`] /
//! [`UfoForest::batch_cut`] (see `batch.rs` for the parallelisation story and
//! `DESIGN.md` §4.4 for the deviations from Algorithm 4).

pub mod batch;
pub mod engine;
pub mod forest;
pub mod queries;
pub mod summary;

pub use dyntree_primitives::algebra::{
    Agg, CommutativeMonoid, InvertibleMonoid, Monoid, SumMinMax, WeightStats,
};
pub use engine::{ContractionForest, Policy};
pub use forest::{TopologyForest, UfoForest};
pub use summary::{PathAggregate, SubtreeAggregate, Summary};

/// Vertex identifier in the represented forest.
pub type Vertex = usize;

/// Identifier of a cluster in the contraction hierarchy.
pub type ClusterId = usize;

/// Sentinel meaning "no cluster / no vertex".
pub const NIL: usize = usize::MAX;

/// `u32` counterpart of [`NIL`], used inside the narrowed cluster storage
/// (cluster links and adjacency entries are stored as 4-byte ids; the public
/// API keeps `usize`).
pub const NIL32: u32 = u32::MAX;

/// Distance value used as "unreachable" in distance summaries.
pub(crate) const INF_DIST: u64 = u64::MAX / 4;
