//! Read-only queries over the contraction hierarchy.
//!
//! Every query walks the `O(min(log n, D))`-height hierarchy from the leaf
//! clusters of its arguments towards the root, combining the per-cluster
//! summaries.  No query mutates the structure, so any number of queries can
//! run concurrently (e.g. from a rayon parallel iterator) while no update is
//! in flight.
//!
//! Internally the walks operate on the narrowed `u32` ids used by the flat
//! cluster storage (DESIGN.md §12); the public signatures keep `usize`.

use dyntree_primitives::algebra::SumMinMax;

use crate::engine::{narrow, AdjEntry, ContractionForest};
use crate::summary::{Agg, CommutativeMonoid};
use crate::{ClusterId, Vertex, INF_DIST, NIL32};

/// Looks up the interior aggregate for boundary vertex `v` in a walk state.
fn lookup<M: CommutativeMonoid>(state: &[(u32, Agg<M>)], v: u32) -> Option<Agg<M>> {
    state.iter().find(|(b, _)| *b == v).map(|(_, a)| *a)
}

impl<M: CommutativeMonoid> ContractionForest<M> {
    /// Aggregate over the vertex weights on the `u`–`v` path (both endpoints
    /// inclusive), or `None` if `u` and `v` are not connected.
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<Agg<M>> {
        if u >= self.len() || v >= self.len() {
            return None;
        }
        if u == v {
            return Some(self.vertex_path_value(u));
        }
        let cu = self.ancestor_chain(u);
        let cv = self.ancestor_chain(v);
        let lca_level = (0..cu.len().min(cv.len())).find(|&l| cu[l] == cv[l])?;
        debug_assert!(lca_level >= 1);
        let lca = narrow(cu[lca_level]);
        let child_u = narrow(cu[lca_level - 1]);
        let child_v = narrow(cv[lca_level - 1]);

        // interior aggregates from u / v to every boundary of their child of
        // the LCA cluster
        let state_u = self.walk_state(u, &cu[..lca_level])?;
        let state_v = self.walk_state(v, &cv[..lca_level])?;

        // Route from child_u to child_v inside the LCA cluster: either they
        // are directly adjacent (pair merges, leaf-hub) or they both hang off
        // the hub child (star merges).
        let direct = self.clusters[child_u]
            .neighbors
            .iter()
            .find(|e| e.neighbor == child_v)
            .copied();
        let (interior_to_entry, entry) = if let Some(e) = direct {
            let base = lookup(&state_u, e.my_end)?;
            (
                self.extend_across(base, u, &e, child_v, e.other_end),
                e.other_end,
            )
        } else {
            // two hops through the hub
            let mut found = None;
            for e1 in self.internal_edges(child_u, lca) {
                let hub = e1.neighbor;
                if let Some(e2) = self.clusters[hub]
                    .neighbors
                    .iter()
                    .find(|e| e.neighbor == child_v)
                    .copied()
                {
                    let base = lookup(&state_u, e1.my_end)?;
                    let through_hub = self.extend_across(base, u, &e1, hub, e2.my_end);
                    let into_v = self.extend_across(through_hub, u, &e2, child_v, e2.other_end);
                    found = Some((into_v, e2.other_end));
                    break;
                }
            }
            found?
        };

        let sv = lookup(&state_v, entry)?;
        let mut total = self.vertex_path_value(u);
        total = Agg::combine(total, interior_to_entry);
        if entry as usize != v {
            total = Agg::combine(total, self.vertex_path_value(entry as usize));
        }
        total = Agg::combine(total, sv);
        total = Agg::combine(total, self.vertex_path_value(v));
        Some(total)
    }

    /// Number of edges on the `u`–`v` path.
    pub fn path_length(&self, u: Vertex, v: Vertex) -> Option<u64> {
        self.path_aggregate(u, v).map(|a| a.edges)
    }

    /// Aggregate over every vertex of the component containing `v`.
    pub fn component_aggregate(&self, v: Vertex) -> Agg<M> {
        self.clusters[self.top_cluster(v)].summary.sub
    }

    /// Number of (non-phantom) vertices in the component containing `v`.
    pub fn component_size(&self, v: Vertex) -> u64 {
        self.component_aggregate(v).count
    }

    /// Diameter, in edges, of the component containing `v`.
    pub fn component_diameter(&self, v: Vertex) -> u64 {
        self.clusters[self.top_cluster(v)].summary.diam
    }

    /// Aggregate over the subtree of `v` on the far side of its neighbour
    /// `parent` (i.e. the component of `v` after removing edge `(v, parent)`),
    /// or `None` if `(v, parent)` is not an edge.
    pub fn subtree_aggregate(&self, v: Vertex, parent: Vertex) -> Option<Agg<M>> {
        if !self.has_edge(v, parent) {
            return None;
        }
        let cu = self.ancestor_chain(v);
        let cp = self.ancestor_chain(parent);
        let lca_level = (0..cu.len().min(cp.len())).find(|&l| cu[l] == cp[l])?;
        let child_v = narrow(cu[lca_level - 1]);
        let child_p = narrow(cp[lca_level - 1]);
        let lca = narrow(cu[lca_level]);

        let mut acc = self.clusters[child_v].summary.sub;

        // v-side siblings inside the LCA cluster: only non-trivial when the
        // child containing v is the hub of a star merge.
        let hub = self.hub_of(lca);
        if self.clusters[lca].fanout() > 2 && hub == Some(child_v) {
            for e in self.internal_edges(child_v, lca) {
                let s = e.neighbor;
                if s != child_p && s != child_v {
                    acc = Agg::combine(acc, self.clusters[s].summary.sub);
                }
            }
        }

        // v-side boundary vertices of the LCA cluster.
        let mut vside: Vec<u32> = Vec::with_capacity(2);
        let lca_sum = &self.clusters[lca].summary;
        for i in 0..lca_sum.nbound as usize {
            let b = lca_sum.boundary[i];
            if self.child_side(lca, b, child_v, child_p, hub) {
                vside.push(b);
            }
        }

        // Walk towards the root, absorbing v-side siblings.
        let mut x = lca;
        let mut bset = vside;
        loop {
            if bset.is_empty() {
                break;
            }
            let p = self.clusters[x].parent;
            if p == NIL32 {
                break;
            }
            // siblings directly adjacent to x
            let internal = self.internal_edges(x, p);
            let x_sum = &self.clusters[x].summary;
            let all_vside = bset.len() == x_sum.nbound as usize;
            for e in &internal {
                let attach = e.my_end;
                let sib_vside = bset.contains(&attach);
                if sib_vside {
                    acc = Agg::combine(acc, self.clusters[e.neighbor].summary.sub);
                    // if the sibling is the hub of a star, the other leaves
                    // hang off it and are v-side too
                    if self.clusters[p].fanout() > 2 && self.hub_of(p) == Some(e.neighbor) {
                        for e2 in self.internal_edges(e.neighbor, p) {
                            if e2.neighbor != x {
                                acc = Agg::combine(acc, self.clusters[e2.neighbor].summary.sub);
                            }
                        }
                    }
                }
            }
            // new v-side boundary set for the parent
            let p_sum = &self.clusters[p].summary;
            let mut new_bset = Vec::with_capacity(2);
            for i in 0..p_sum.nbound as usize {
                let b = p_sum.boundary[i];
                let side = if x_sum.boundary_index(b).is_some() {
                    bset.contains(&b)
                } else {
                    // b lies in a sibling: the sibling's side decides
                    self.sibling_side(x, p, b, &bset, &internal)
                };
                if side {
                    new_bset.push(b);
                }
            }
            let _ = all_vside;
            bset = new_bset;
            x = p;
        }
        Some(acc)
    }

    /// Number of vertices in the subtree of `v` away from `parent`.
    pub fn subtree_size(&self, v: Vertex, parent: Vertex) -> Option<u64> {
        self.subtree_aggregate(v, parent).map(|a| a.count)
    }

    /// Distance (in edges) from `v` to the nearest marked vertex in its
    /// component, or `None` if no marked vertex is reachable.
    pub fn nearest_marked_distance(&self, v: Vertex) -> Option<u64> {
        let mut best = if self.is_marked(v) { 0 } else { INF_DIST };
        // state: distance from v to each boundary vertex of the current cluster
        let mut state: Vec<(u32, u64)> = vec![(narrow(v), 0)];
        let chain = self.ancestor_chain(v);
        for w in chain.windows(2) {
            let (c, p) = (narrow(w[0]), narrow(w[1]));
            let internal = self.internal_edges(c, p);
            // fold siblings into `best`
            for e in &internal {
                let s = e.neighbor;
                let dist_to_attach = state
                    .iter()
                    .find(|(b, _)| *b == e.my_end)
                    .map(|(_, d)| *d)
                    .unwrap_or(INF_DIST);
                let ssum = &self.clusters[s].summary;
                if let Some(si) = ssum.boundary_index(e.other_end) {
                    best = best.min(
                        dist_to_attach
                            .saturating_add(1)
                            .saturating_add(ssum.near[si]),
                    );
                }
                // second-hop siblings (leaves of a star hanging off this hub)
                if self.clusters[p].fanout() > 2 && self.hub_of(p) == Some(s) {
                    for e2 in self.internal_edges(s, p) {
                        if e2.neighbor == c {
                            continue;
                        }
                        let s2 = &self.clusters[e2.neighbor].summary;
                        if let (Some(hi), Some(si2)) = (
                            ssum.boundary_index(e.other_end),
                            s2.boundary_index(e2.other_end),
                        ) {
                            let through = ssum.boundary_distance(ssum.boundary[hi], e2.my_end);
                            best = best.min(
                                dist_to_attach
                                    .saturating_add(1)
                                    .saturating_add(through)
                                    .saturating_add(1)
                                    .saturating_add(s2.near[si2]),
                            );
                        }
                    }
                }
            }
            // new state for the parent's boundaries
            state = self.distance_state(c, p, &state, &internal);
        }
        if best >= INF_DIST {
            None
        } else {
            Some(best)
        }
    }

    // ------------------------------------------------------------------
    // walk helpers
    // ------------------------------------------------------------------

    /// Interior aggregates from `origin` to every boundary vertex of the last
    /// cluster of `chain` (the chain runs from the leaf of `origin` upwards).
    /// The `edges` field of each aggregate is the number of edges between the
    /// two vertices.
    fn walk_state(&self, origin: Vertex, chain: &[ClusterId]) -> Option<Vec<(u32, Agg<M>)>> {
        let mut state: Vec<(u32, Agg<M>)> = vec![(narrow(origin), Agg::IDENTITY)];
        for w in chain.windows(2) {
            let (c, p) = (narrow(w[0]), narrow(w[1]));
            state = self.interior_state(origin, c, p, &state)?;
        }
        Some(state)
    }

    fn interior_state(
        &self,
        origin: Vertex,
        c: u32,
        p: u32,
        state: &[(u32, Agg<M>)],
    ) -> Option<Vec<(u32, Agg<M>)>> {
        let p_sum = &self.clusters[p].summary;
        let c_sum = &self.clusters[c].summary;
        let internal = self.internal_edges(c, p);
        let mut out = Vec::with_capacity(2);
        for i in 0..p_sum.nbound as usize {
            let b = p_sum.boundary[i];
            if c_sum.boundary_index(b).is_some() {
                if let Some((_, a)) = state.iter().find(|(x, _)| *x == b) {
                    out.push((b, *a));
                    continue;
                }
            }
            // b lies in a sibling reachable from c via one internal edge, or
            // via the hub (two hops).
            let mut found = false;
            for e in &internal {
                let ssum = &self.clusters[e.neighbor].summary;
                if ssum.boundary_index(b).is_some() {
                    if let Some((_, base)) = state.iter().find(|(x, _)| *x == e.my_end) {
                        out.push((b, self.extend_across(*base, origin, e, e.neighbor, b)));
                        found = true;
                    }
                    break;
                }
            }
            if !found {
                // two hops: through the (single) adjacent sibling of c
                for e in &internal {
                    let hubc = e.neighbor;
                    let base = match state.iter().find(|(x, _)| *x == e.my_end) {
                        Some((_, a)) => *a,
                        None => continue,
                    };
                    for e2 in self.internal_edges(hubc, p) {
                        if e2.neighbor == c {
                            continue;
                        }
                        let s2 = &self.clusters[e2.neighbor].summary;
                        if s2.boundary_index(b).is_some() {
                            let to_hub_far = self.extend_across(base, origin, e, hubc, e2.my_end);
                            let e2_adj = AdjEntry {
                                neighbor: e2.neighbor,
                                my_end: e2.my_end,
                                other_end: e2.other_end,
                            };
                            out.push((
                                b,
                                self.extend_across(to_hub_far, origin, &e2_adj, e2.neighbor, b),
                            ));
                            found = true;
                            break;
                        }
                    }
                    if found {
                        break;
                    }
                }
            }
            if !found {
                return None;
            }
        }
        Some(out)
    }

    /// Extends an interior aggregate across the edge `e` (from the cluster
    /// containing `e.my_end` into the cluster `s` containing `e.other_end`)
    /// and further to `target`, a boundary vertex of `s`.
    fn extend_across(
        &self,
        base: Agg<M>,
        origin: Vertex,
        e: &AdjEntry,
        s: u32,
        target: u32,
    ) -> Agg<M> {
        let mut agg = base;
        if e.my_end as usize != origin {
            agg = Agg::combine(agg, self.vertex_path_value(e.my_end as usize));
        }
        agg = agg.cross_edge();
        if e.other_end != target {
            agg = Agg::combine(agg, self.vertex_path_value(e.other_end as usize));
            let ssum = &self.clusters[s].summary;
            if ssum.boundary_distance(e.other_end, target) > 0 {
                agg = Agg::combine(agg, ssum.path);
            }
        }
        agg
    }

    /// Distance-only version of [`interior_state`] used by nearest-marked
    /// queries (falls back to `INF_DIST` for unreachable boundaries).
    fn distance_state(
        &self,
        c: u32,
        p: u32,
        state: &[(u32, u64)],
        internal: &[AdjEntry],
    ) -> Vec<(u32, u64)> {
        let p_sum = &self.clusters[p].summary;
        let c_sum = &self.clusters[c].summary;
        let mut out = Vec::with_capacity(2);
        for i in 0..p_sum.nbound as usize {
            let b = p_sum.boundary[i];
            if c_sum.boundary_index(b).is_some() {
                if let Some((_, d)) = state.iter().find(|(x, _)| *x == b) {
                    out.push((b, *d));
                    continue;
                }
            }
            let mut best = INF_DIST;
            for e in internal {
                let base = state
                    .iter()
                    .find(|(x, _)| *x == e.my_end)
                    .map(|(_, d)| *d)
                    .unwrap_or(INF_DIST);
                let ssum = &self.clusters[e.neighbor].summary;
                if ssum.boundary_index(b).is_some() {
                    best = best.min(
                        base.saturating_add(1)
                            .saturating_add(ssum.boundary_distance(e.other_end, b)),
                    );
                } else {
                    // two hops via this sibling
                    for e2 in self.internal_edges(e.neighbor, p) {
                        if e2.neighbor == c {
                            continue;
                        }
                        let s2 = &self.clusters[e2.neighbor].summary;
                        if s2.boundary_index(b).is_some() {
                            best = best.min(
                                base.saturating_add(1)
                                    .saturating_add(ssum.boundary_distance(e.other_end, e2.my_end))
                                    .saturating_add(1)
                                    .saturating_add(s2.boundary_distance(e2.other_end, b)),
                            );
                        }
                    }
                }
            }
            out.push((b, best));
        }
        out
    }

    /// Internal (sibling) edges of `c` within its parent `p`.
    fn internal_edges(&self, c: u32, p: u32) -> Vec<AdjEntry> {
        self.clusters[c]
            .neighbors
            .iter()
            .filter(|e| self.clusters[e.neighbor].alive && self.clusters[e.neighbor].parent == p)
            .copied()
            .collect()
    }

    /// The hub child of `p` (the child with the most sibling edges), if `p`
    /// has more than one child.
    fn hub_of(&self, p: u32) -> Option<u32> {
        let children = &self.clusters[p].children;
        if children.len() < 2 {
            return None;
        }
        children
            .iter()
            .copied()
            .max_by_key(|&ch| self.internal_edges(ch, p).len())
    }

    /// Whether boundary vertex `b` of the LCA cluster is on `v`'s side of the
    /// removed edge, given the children containing `v` and `p`.
    fn child_side(&self, lca: u32, b: u32, child_v: u32, child_p: u32, hub: Option<u32>) -> bool {
        if self.clusters[child_v].summary.boundary_index(b).is_some() {
            return true;
        }
        if self.clusters[child_p].summary.boundary_index(b).is_some() {
            return false;
        }
        // b lies in some other sibling: that sibling hangs off the hub, so it
        // is v-side exactly when v's child is the hub.
        let _ = lca;
        hub == Some(child_v)
    }

    /// Side of the sibling containing boundary vertex `b` of the parent `p`.
    fn sibling_side(&self, x: u32, p: u32, b: u32, bset: &[u32], internal: &[AdjEntry]) -> bool {
        // direct siblings
        for e in internal {
            if self.clusters[e.neighbor]
                .summary
                .boundary_index(b)
                .is_some()
            {
                return bset.contains(&e.my_end);
            }
        }
        // two-hop siblings (through the hub)
        for e in internal {
            for e2 in self.internal_edges(e.neighbor, p) {
                if e2.neighbor == x {
                    continue;
                }
                if self.clusters[e2.neighbor]
                    .summary
                    .boundary_index(b)
                    .is_some()
                {
                    return bset.contains(&e.my_end);
                }
            }
        }
        false
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.
impl ContractionForest<SumMinMax> {
    /// Sum of vertex weights on the `u`–`v` path.
    pub fn path_sum(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.sum)
    }

    /// Maximum vertex weight on the `u`–`v` path.
    pub fn path_max(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.max)
    }

    /// Minimum vertex weight on the `u`–`v` path.
    pub fn path_min(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.min)
    }

    /// Sum of vertex weights in the subtree of `v` away from `parent`.
    pub fn subtree_sum(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.sum)
    }

    /// Maximum vertex weight in the subtree of `v` away from `parent`
    /// (a non-invertible aggregate, per Section 4.2 of the paper).
    pub fn subtree_max(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.max)
    }

    /// Minimum vertex weight in the subtree of `v` away from `parent`.
    pub fn subtree_min(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.min)
    }
}
