//! The link-cut forest implementation, generic over the aggregation monoid.

use dyntree_primitives::algebra::{Action, ActionOf, Agg, CommutativeMonoid, SumMinMax};

const NIL: usize = usize::MAX;

/// The identity action of `M`'s update monoid (bound-shortening helper).
#[inline]
fn no_act<M: CommutativeMonoid>() -> ActionOf<M> {
    <ActionOf<M> as Action<M>>::IDENTITY
}

/// One splay-tree node per represented vertex.
#[derive(Clone, Debug)]
struct Node<M: CommutativeMonoid> {
    parent: usize,
    child: [usize; 2],
    /// Lazy "reverse this path" bit used by `make_root`.
    flip: bool,
    /// Vertex weight.
    value: M::Weight,
    /// Monoid aggregate over the splay subtree (a contiguous path segment).
    /// Soundness under the lazy `flip` reversal is exactly why the monoid
    /// must be commutative.
    agg: M::Value,
    size: usize,
    /// Lazy action still to be applied to the *children's* splay subtrees;
    /// this node's own `value` and `agg` already reflect every tag placed
    /// on it (DESIGN.md §13).  Orthogonal to `flip`: actions are pointwise,
    /// so reversal and update commute.
    pending: ActionOf<M>,
}

impl<M: CommutativeMonoid> Node<M> {
    fn new(value: M::Weight) -> Self {
        Self {
            parent: NIL,
            child: [NIL, NIL],
            flip: false,
            value,
            agg: M::lift(value),
            size: 1,
            pending: no_act::<M>(),
        }
    }
}

/// A forest of vertices `0..n` maintained with link-cut trees, generic over
/// the vertex-weight monoid (default: the `i64` sum/min/max aggregate).
///
/// Path aggregates are computed over the vertices of the queried path,
/// endpoints inclusive, and returned as [`Agg<M>`].
#[derive(Clone, Debug)]
pub struct LinkCutForest<M: CommutativeMonoid = SumMinMax> {
    nodes: Vec<Node<M>>,
    num_edges: usize,
}

impl<M: CommutativeMonoid> LinkCutForest<M> {
    /// Creates a forest of `n` isolated vertices with default weight.
    pub fn new(n: usize) -> Self {
        Self {
            nodes: (0..n).map(|_| Node::new(M::Weight::default())).collect(),
            num_edges: 0,
        }
    }

    /// Creates a forest with the given vertex weights.
    pub fn with_weights(weights: &[M::Weight]) -> Self {
        Self {
            nodes: weights.iter().map(|&w| Node::new(w)).collect(),
            num_edges: 0,
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Appends isolated vertices (with default weight) until the forest has
    /// `n` of them.  Each new vertex is its own one-node splay tree, so no
    /// existing preferred path is disturbed.  A smaller `n` is a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        while self.nodes.len() < n {
            self.nodes.push(Node::new(M::Weight::default()));
        }
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// Exact number of heap bytes owned by the structure.
    pub fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<M>>()
    }

    /// Sets the weight of vertex `v`.
    pub fn set_weight(&mut self, v: usize, w: M::Weight) {
        self.access(v);
        self.nodes[v].value = w;
        self.update(v);
    }

    /// Returns the weight of vertex `v`.
    ///
    /// The stored value lags any action tags still pending on strict splay
    /// ancestors, so this folds them in (closest ancestor innermost) by a
    /// read-only walk.  The walk stops at path-parent pointers: a pending
    /// tag applies only to the holder's own splay subtree, and `v` is not in
    /// the subtree of a node it reaches via a path-parent edge.
    pub fn weight(&self, v: usize) -> M::Weight {
        let mut acc = no_act::<M>();
        let mut cur = v;
        loop {
            let p = self.nodes[cur].parent;
            if p == NIL || (self.nodes[p].child[0] != cur && self.nodes[p].child[1] != cur) {
                break;
            }
            acc = ActionOf::<M>::compose(self.nodes[p].pending, acc);
            cur = p;
        }
        acc.act_weight(self.nodes[v].value)
    }

    /// Applies `act` to every vertex on the `u`–`v` path (inclusive) and
    /// returns the number of vertices touched, or `None` if the endpoints
    /// are disconnected.  `O(log n)` amortized: the exposed path becomes one
    /// splay tree and a single pending tag covers it.
    pub fn path_apply(&mut self, u: usize, v: usize, act: ActionOf<M>) -> Option<u64> {
        let x = self.expose_path(u, v)?;
        let count = self.nodes[x].size as u64;
        self.apply_node(x, act);
        Some(count)
    }

    /// Inserts the edge `(u, v)`.  Returns `false` if `u == v` or the edge
    /// would close a cycle (the vertices are already connected).
    pub fn link(&mut self, u: usize, v: usize) -> bool {
        if u == v || self.connected(u, v) {
            return false;
        }
        self.make_root(u);
        // After make_root + access, `u` is the root of its splay tree and of
        // the represented tree; attaching via a path-parent pointer links the
        // two trees without disturbing v's preferred paths.
        self.nodes[u].parent = v;
        self.num_edges += 1;
        true
    }

    /// Removes the edge `(u, v)`.  Returns `false` if the edge is not present.
    pub fn cut(&mut self, u: usize, v: usize) -> bool {
        if u == v {
            return false;
        }
        self.make_root(u);
        self.access(v);
        // If (u, v) is an edge of the represented tree, then after rerooting
        // at u and exposing v, u is v's left child in the splay tree and has
        // no right child (it is v's immediate predecessor on the path).
        if self.nodes[v].child[0] != u
            || self.nodes[u].child[1] != NIL
            || self.nodes[u].child[0] != NIL
        {
            return false;
        }
        self.nodes[v].child[0] = NIL;
        self.nodes[u].parent = NIL;
        self.update(v);
        self.num_edges -= 1;
        true
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&mut self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        self.find_root(u) == self.find_root(v)
    }

    /// The root of the tree containing `v` (an arbitrary but stable
    /// representative until the next `make_root`/`link`/`cut`).
    pub fn find_root(&mut self, v: usize) -> usize {
        self.access(v);
        let mut x = v;
        loop {
            self.push(x);
            let l = self.nodes[x].child[0];
            if l == NIL {
                break;
            }
            x = l;
        }
        self.splay(x);
        x
    }

    /// Re-roots the tree containing `v` at `v`.
    pub fn make_root(&mut self, v: usize) {
        self.access(v);
        self.nodes[v].flip ^= true;
        self.push(v);
    }

    /// Monoid aggregate over the vertex weights on the `u`–`v` path
    /// (inclusive), or `None` if the vertices are not connected.
    pub fn path_aggregate(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        self.expose_path(u, v).map(|x| Agg {
            value: self.nodes[x].agg,
            count: self.nodes[x].size as u64,
            edges: (self.nodes[x].size - 1) as u64,
        })
    }

    /// Number of edges on the `u`–`v` path.
    pub fn path_len(&mut self, u: usize, v: usize) -> Option<usize> {
        self.expose_path(u, v).map(|x| self.nodes[x].size - 1)
    }

    /// Lowest common ancestor of `u` and `v` in the tree rooted at `r`, or
    /// `None` if the three vertices are not all connected.
    pub fn lca(&mut self, u: usize, v: usize, r: usize) -> Option<usize> {
        if !self.connected(u, r) || !self.connected(v, r) {
            return None;
        }
        self.make_root(r);
        self.access(u);
        Some(self.access(v))
    }

    // ----- internal splay machinery -------------------------------------

    /// Exposes the path between `u` and `v` in a single splay tree rooted at
    /// the returned node, or `None` if they are disconnected.
    fn expose_path(&mut self, u: usize, v: usize) -> Option<usize> {
        if !self.connected(u, v) {
            return None;
        }
        self.make_root(u);
        self.access(v);
        Some(v)
    }

    /// Applies `a` to the whole splay subtree rooted at `x`, eagerly on
    /// `x`'s own value and aggregate and lazily (pending tag) on children.
    fn apply_node(&mut self, x: usize, a: ActionOf<M>) {
        if x == NIL || a.is_identity() {
            return;
        }
        let size = self.nodes[x].size as u64;
        let node = &mut self.nodes[x];
        node.value = a.act_weight(node.value);
        node.agg = a.act_value(node.agg, size);
        node.pending = ActionOf::<M>::compose(a, node.pending);
    }

    fn update(&mut self, x: usize) {
        // Callers always splay (hence push) before updating; a pending tag
        // here would mean folding stale child aggs over an acted own agg.
        debug_assert!(
            self.nodes[x].pending.is_identity(),
            "update on a node with a pending action"
        );
        let (l, r) = (self.nodes[x].child[0], self.nodes[x].child[1]);
        let mut agg = M::lift(self.nodes[x].value);
        let mut size = 1;
        for c in [l, r] {
            if c != NIL {
                agg = M::combine(agg, self.nodes[c].agg);
                size += self.nodes[c].size;
            }
        }
        let node = &mut self.nodes[x];
        node.agg = agg;
        node.size = size;
    }

    fn push(&mut self, x: usize) {
        if self.nodes[x].flip {
            self.nodes[x].flip = false;
            self.nodes[x].child.swap(0, 1);
            for i in 0..2 {
                let c = self.nodes[x].child[i];
                if c != NIL {
                    self.nodes[c].flip ^= true;
                }
            }
        }
        let p = self.nodes[x].pending;
        if !p.is_identity() {
            self.nodes[x].pending = no_act::<M>();
            let (l, r) = (self.nodes[x].child[0], self.nodes[x].child[1]);
            self.apply_node(l, p);
            self.apply_node(r, p);
        }
    }

    /// Whether `x` is the root of its splay tree (its parent link, if any, is
    /// a path-parent pointer).
    fn is_splay_root(&self, x: usize) -> bool {
        let p = self.nodes[x].parent;
        p == NIL || (self.nodes[p].child[0] != x && self.nodes[p].child[1] != x)
    }

    fn rotate(&mut self, x: usize) {
        let p = self.nodes[x].parent;
        let g = self.nodes[p].parent;
        let dir = (self.nodes[p].child[1] == x) as usize;
        let b = self.nodes[x].child[1 - dir];

        // p adopts x's inner child
        self.nodes[p].child[dir] = b;
        if b != NIL {
            self.nodes[b].parent = p;
        }
        // x adopts p
        self.nodes[x].child[1 - dir] = p;
        self.nodes[p].parent = x;
        // g adopts x (or x keeps g as path parent)
        self.nodes[x].parent = g;
        if g != NIL {
            if self.nodes[g].child[0] == p {
                self.nodes[g].child[0] = x;
            } else if self.nodes[g].child[1] == p {
                self.nodes[g].child[1] = x;
            }
        }
        self.update(p);
        self.update(x);
    }

    fn splay(&mut self, x: usize) {
        // Push lazy flips from the splay root down to x before rotating.
        let mut stack = vec![x];
        let mut cur = x;
        while !self.is_splay_root(cur) {
            cur = self.nodes[cur].parent;
            stack.push(cur);
        }
        while let Some(y) = stack.pop() {
            self.push(y);
        }
        while !self.is_splay_root(x) {
            let p = self.nodes[x].parent;
            if !self.is_splay_root(p) {
                let g = self.nodes[p].parent;
                let zig_zig = (self.nodes[g].child[0] == p) == (self.nodes[p].child[0] == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    /// Makes the path from the tree root to `x` preferred and splays `x` to
    /// the root of its splay tree.  Returns the last path-parent jumped over,
    /// which is the LCA when used in the access-access pattern.
    fn access(&mut self, x: usize) -> usize {
        self.splay(x);
        self.nodes[x].child[1] = NIL;
        self.update(x);
        let mut last = x;
        while self.nodes[x].parent != NIL {
            let y = self.nodes[x].parent;
            self.splay(y);
            self.nodes[y].child[1] = x;
            self.update(y);
            self.splay(x);
            last = y;
        }
        last
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.
impl LinkCutForest<SumMinMax> {
    /// Sum of vertex weights on the `u`–`v` path (inclusive), or `None` if the
    /// vertices are not connected.
    pub fn path_sum(&mut self, u: usize, v: usize) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.sum)
    }

    /// Maximum vertex weight on the `u`–`v` path (inclusive).
    pub fn path_max(&mut self, u: usize, v: usize) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.max)
    }

    /// Minimum vertex weight on the `u`–`v` path (inclusive).
    pub fn path_min(&mut self, u: usize, v: usize) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_link_cut_connected() {
        let mut f: LinkCutForest = LinkCutForest::new(6);
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(f.link(3, 4));
        assert!(f.connected(0, 2));
        assert!(!f.connected(0, 3));
        assert!(!f.link(2, 0), "cycle must be rejected");
        assert!(f.cut(1, 2));
        assert!(!f.connected(0, 2));
        assert!(f.connected(0, 1));
        assert!(!f.cut(1, 2), "cutting a missing edge fails");
        assert_eq!(f.num_edges(), 2);
    }

    #[test]
    fn cut_requires_actual_edge() {
        let mut f: LinkCutForest = LinkCutForest::new(4);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        // 0 and 3 are connected but not adjacent
        assert!(!f.cut(0, 3));
        assert!(f.connected(0, 3));
        assert!(f.cut(2, 1));
        assert!(!f.connected(0, 3));
    }

    #[test]
    fn path_aggregates_on_a_path() {
        let mut f: LinkCutForest = LinkCutForest::new(6);
        for v in 0..6 {
            f.set_weight(v, v as i64 * 10);
        }
        for v in 0..5 {
            f.link(v, v + 1);
        }
        assert_eq!(f.path_sum(1, 4), Some(100));
        assert_eq!(f.path_max(0, 5), Some(50));
        assert_eq!(f.path_min(2, 5), Some(20));
        assert_eq!(f.path_len(0, 5), Some(5));
        assert_eq!(f.path_sum(3, 3), Some(30));
        assert_eq!(f.path_sum(0, 0), Some(0));
    }

    #[test]
    fn path_aggregates_survive_rerooting() {
        let mut f: LinkCutForest = LinkCutForest::new(8);
        for v in 0..8 {
            f.set_weight(v, 1 << v);
        }
        // star centred at 0 plus a tail 3-6-7
        for v in 1..6 {
            f.link(0, v);
        }
        f.link(3, 6);
        f.link(6, 7);
        assert_eq!(
            f.path_sum(7, 5),
            Some((1 << 7) + (1 << 6) + (1 << 3) + 1 + (1 << 5))
        );
        f.make_root(7);
        assert_eq!(f.path_sum(1, 2), Some(2 + 1 + 4));
        assert_eq!(f.path_len(7, 1), Some(4));
    }

    #[test]
    fn lca_with_explicit_root() {
        let mut f: LinkCutForest = LinkCutForest::new(7);
        // 0 - 1, 1 - 2, 1 - 3, 0 - 4, 4 - 5, unrelated 6
        f.link(0, 1);
        f.link(1, 2);
        f.link(1, 3);
        f.link(0, 4);
        f.link(4, 5);
        assert_eq!(f.lca(2, 3, 0), Some(1));
        assert_eq!(f.lca(2, 5, 0), Some(0));
        assert_eq!(f.lca(2, 1, 0), Some(1));
        assert_eq!(f.lca(5, 5, 0), Some(5));
        assert_eq!(f.lca(2, 6, 0), None);
    }

    #[test]
    fn weights_update_after_set() {
        let mut f: LinkCutForest = LinkCutForest::new(3);
        f.link(0, 1);
        f.link(1, 2);
        f.set_weight(1, 7);
        assert_eq!(f.path_sum(0, 2), Some(7));
        f.set_weight(1, -2);
        assert_eq!(f.path_sum(0, 2), Some(-2));
        assert_eq!(f.path_min(0, 2), Some(-2));
        assert_eq!(f.weight(1), -2);
    }

    #[test]
    fn path_apply_shifts_exactly_the_path() {
        use dyntree_primitives::algebra::AddConst;
        let mut f: LinkCutForest = LinkCutForest::new(8);
        for v in 0..8 {
            f.set_weight(v, v as i64 * 10);
        }
        // star centred at 0 plus a tail 3-6-7
        for v in 1..6 {
            f.link(0, v);
        }
        f.link(3, 6);
        f.link(6, 7);
        // path 7-6-3-0-5: five vertices gain 1000
        assert_eq!(f.path_apply(7, 5, AddConst(1000)), Some(5));
        assert_eq!(f.weight(7), 1070);
        assert_eq!(f.weight(6), 1060);
        assert_eq!(f.weight(3), 1030);
        assert_eq!(f.weight(0), 1000);
        assert_eq!(f.weight(5), 1050);
        assert_eq!(f.weight(1), 10, "off-path vertices untouched");
        assert_eq!(f.weight(4), 40);
        assert_eq!(f.path_sum(1, 1), Some(10));
        assert_eq!(f.path_sum(7, 5), Some(1070 + 1060 + 1030 + 1000 + 1050));
        // aggregates reflect the action immediately, and survive rerooting:
        // the 1–2 path runs through the shifted centre 0
        f.make_root(7);
        assert_eq!(f.path_max(1, 2), Some(1000));
        assert_eq!(f.path_sum(1, 2), Some(10 + 1000 + 20));
        // a single-vertex path is a count-1 apply
        assert_eq!(f.path_apply(4, 4, AddConst(2)), Some(1));
        assert_eq!(f.weight(4), 42);
        // disconnected endpoints decline
        let mut g: LinkCutForest = LinkCutForest::new(3);
        assert_eq!(g.path_apply(0, 2, AddConst(1)), None);
    }

    #[test]
    fn stacked_path_applies_compose() {
        use dyntree_primitives::algebra::AddConst;
        let n = 400;
        let mut f: LinkCutForest = LinkCutForest::new(n);
        let mut mirror: Vec<i64> = (0..n as i64).collect();
        for v in 0..n {
            f.set_weight(v, v as i64);
        }
        for v in 0..n - 1 {
            f.link(v, v + 1);
        }
        // overlapping segment shifts on the path graph, mirrored naively
        let segs = [
            (10usize, 200usize, 7i64),
            (150, 399, -3),
            (0, 180, 11),
            (180, 150, 5),
        ];
        for &(a, b, d) in &segs {
            assert_eq!(
                f.path_apply(a, b, AddConst(d)),
                Some((a.abs_diff(b) + 1) as u64)
            );
            let (lo, hi) = (a.min(b), a.max(b));
            for m in mirror[lo..=hi].iter_mut() {
                *m += d;
            }
        }
        for v in (0..n).step_by(13) {
            assert_eq!(f.weight(v), mirror[v], "vertex {v}");
        }
        let want: i64 = mirror.iter().sum();
        assert_eq!(f.path_sum(0, n - 1), Some(want));
        // cut inside a tagged region and check both halves stay consistent
        assert!(f.cut(199, 200));
        let left: i64 = mirror[..200].iter().sum();
        assert_eq!(f.path_sum(0, 199), Some(left));
        assert_eq!(f.path_sum(200, n - 1), Some(want - left));
    }

    #[test]
    fn memory_accounting_is_positive() {
        let f: LinkCutForest = LinkCutForest::new(1000);
        assert!(f.memory_bytes() >= 1000 * std::mem::size_of::<usize>());
        assert_eq!(f.len(), 1000);
        assert!(!f.is_empty());
    }

    #[test]
    fn long_path_stress() {
        let n = 2000;
        let mut f: LinkCutForest = LinkCutForest::new(n);
        for v in 0..n {
            f.set_weight(v, v as i64);
        }
        for v in 0..n - 1 {
            assert!(f.link(v, v + 1));
        }
        assert!(f.connected(0, n - 1));
        assert_eq!(f.path_len(0, n - 1), Some(n - 1));
        assert_eq!(f.path_sum(0, n - 1), Some((n as i64 - 1) * n as i64 / 2));
        // cut in the middle
        assert!(f.cut(n / 2, n / 2 + 1));
        assert!(!f.connected(0, n - 1));
        assert!(f.connected(0, n / 2));
        assert!(f.connected(n / 2 + 1, n - 1));
    }
}
