//! Splay-based link-cut trees (Sleator–Tarjan), the paper's fastest sequential
//! baseline.
//!
//! The implementation follows the classic amortized design: the represented
//! forest is decomposed into preferred paths, each stored in a splay tree keyed
//! by depth; `access` (a.k.a. `expose`) brings the root-to-vertex path into one
//! splay tree.  Operations are `O(log n)` amortized, and — as the paper's new
//! analysis (Theorem B.1) shows — `O(D^2)` worst case where `D` is the
//! diameter of the represented tree, which is why link-cut trees are so fast
//! on shallow inputs.
//!
//! Supported operations: `link`, `cut`, `connected`, `find_root`, `make_root`
//! (re-rooting / evert), vertex-weight path aggregates (`path_sum`,
//! `path_max`, `path_min`, `path_len`) and `lca`.

pub mod forest;

pub use forest::LinkCutForest;
