//! A treap-backed dynamic sequence (randomized balanced BST with parent
//! pointers), mirroring the "ETT (Treap)" baseline of the paper.
//!
//! Nodes live on a flat `Vec` slab addressed by `u32` ids with freelist
//! recycling (DESIGN.md §12): links are 4-byte indices, not boxes or
//! machine words, so a `Node` is 16 bytes slimmer and traversals chase
//! cache-dense indices.  The public [`Handle`] stays `usize`; the `u32`
//! narrowing is an internal storage decision guarded by debug assertions
//! (a sequence would need 4 billion live nodes to overflow).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Action, ActionOf, Agg, CommutativeMonoid, DynSequence, Handle, SumMinMax};

const NIL: u32 = u32::MAX;

/// The identity action of `M`'s update monoid (bound-shortening helper).
#[inline]
fn no_act<M: CommutativeMonoid>() -> ActionOf<M> {
    <ActionOf<M> as Action<M>>::IDENTITY
}

/// Narrows a slab index to its stored `u32` form.
#[inline]
fn narrow(x: usize) -> u32 {
    debug_assert!(x < NIL as usize, "slab index {x} exceeds u32 storage");
    x as u32
}

#[derive(Clone, Debug)]
struct Node<M: CommutativeMonoid> {
    left: u32,
    right: u32,
    parent: u32,
    size: u32,
    priority: u64,
    value: M::Weight,
    is_item: bool,
    agg: Agg<M>,
    /// Lazy action still to be applied to the *children's* subtrees; this
    /// node's own `value` and `agg` already reflect every tag placed on it
    /// (DESIGN.md §13), so aggregates never need a push.
    pending: ActionOf<M>,
}

/// Treap-based implementation of [`DynSequence`].
#[derive(Clone, Debug)]
pub struct TreapSequence<M: CommutativeMonoid = SumMinMax> {
    nodes: Vec<Node<M>>,
    free: Vec<u32>,
    rng: StdRng,
    live: usize,
}

impl<M: CommutativeMonoid> TreapSequence<M> {
    fn size_of(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    fn agg_of(&self, t: u32) -> Agg<M> {
        if t == NIL {
            Agg::IDENTITY
        } else {
            self.nodes[t as usize].agg
        }
    }

    fn pull(&mut self, t: u32) {
        // See `SplaySequence::pull`: pulling through a pending tag would
        // fold stale child aggs over the already-acted own agg.
        debug_assert!(
            self.nodes[t as usize].pending.is_identity(),
            "pull on a node with a pending action"
        );
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        let own = Agg::vertex_if(
            self.nodes[t as usize].value,
            !self.nodes[t as usize].is_item,
        );
        let agg = Agg::combine(Agg::combine(self.agg_of(l), own), self.agg_of(r));
        let size = 1 + self.size_of(l) + self.size_of(r);
        let node = &mut self.nodes[t as usize];
        node.agg = agg;
        node.size = size;
    }

    /// Applies `a` to the whole subtree rooted at `t`, eagerly on `t`'s own
    /// value and aggregate and lazily (via the pending tag) on its children.
    fn apply_node(&mut self, t: u32, a: ActionOf<M>) {
        if t == NIL || a.is_identity() {
            return;
        }
        let node = &mut self.nodes[t as usize];
        if node.is_item {
            node.value = a.act_weight(node.value);
        }
        node.agg.value = a.act_value(node.agg.value, node.agg.count);
        node.pending = ActionOf::<M>::compose(a, node.pending);
    }

    /// Pushes `t`'s pending tag down to its children and clears it.
    fn push(&mut self, t: u32) {
        let p = self.nodes[t as usize].pending;
        if p.is_identity() {
            return;
        }
        self.nodes[t as usize].pending = no_act::<M>();
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        self.apply_node(l, p);
        self.apply_node(r, p);
    }

    /// Pushes pending tags top-down along the root→`h` path (`h` included),
    /// so `h`'s stored value is current and path pulls see clean nodes.
    fn push_path(&mut self, h: u32) {
        let mut stack = vec![h];
        let mut cur = h;
        while self.nodes[cur as usize].parent != NIL {
            cur = self.nodes[cur as usize].parent;
            stack.push(cur);
        }
        while let Some(n) = stack.pop() {
            self.push(n);
        }
    }

    fn find_root(&self, mut t: u32) -> u32 {
        while self.nodes[t as usize].parent != NIL {
            t = self.nodes[t as usize].parent;
        }
        t
    }

    /// Splits the tree rooted at `t` into its first `k` nodes and the rest.
    fn split_idx(&mut self, t: u32, k: u32) -> (u32, u32) {
        if t == NIL {
            return (NIL, NIL);
        }
        // t's children change below; its tag must reach them first.
        self.push(t);
        let left = self.nodes[t as usize].left;
        let lsz = self.size_of(left);
        if k <= lsz {
            let (a, b) = self.split_idx(left, k);
            self.nodes[t as usize].left = b;
            if b != NIL {
                self.nodes[b as usize].parent = t;
            }
            if a != NIL {
                self.nodes[a as usize].parent = NIL;
            }
            self.nodes[t as usize].parent = NIL;
            self.pull(t);
            (a, t)
        } else {
            let right = self.nodes[t as usize].right;
            let (a, b) = self.split_idx(right, k - lsz - 1);
            self.nodes[t as usize].right = a;
            if a != NIL {
                self.nodes[a as usize].parent = t;
            }
            if b != NIL {
                self.nodes[b as usize].parent = NIL;
            }
            self.nodes[t as usize].parent = NIL;
            self.pull(t);
            (t, b)
        }
    }

    fn merge(&mut self, a: u32, b: u32) -> u32 {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a as usize].priority > self.nodes[b as usize].priority {
            // a wins and adopts a new right subtree: push its tag first
            self.push(a);
            let r = self.merge(self.nodes[a as usize].right, b);
            self.nodes[a as usize].right = r;
            self.nodes[r as usize].parent = a;
            self.nodes[a as usize].parent = NIL;
            self.pull(a);
            a
        } else {
            self.push(b);
            let l = self.merge(a, self.nodes[b as usize].left);
            self.nodes[b as usize].left = l;
            self.nodes[l as usize].parent = b;
            self.nodes[b as usize].parent = NIL;
            self.pull(b);
            b
        }
    }

    fn position_internal(&self, h: u32) -> usize {
        let mut pos = self.size_of(self.nodes[h as usize].left) as usize;
        let mut cur = h;
        while self.nodes[cur as usize].parent != NIL {
            let p = self.nodes[cur as usize].parent;
            if self.nodes[p as usize].right == cur {
                pos += self.size_of(self.nodes[p as usize].left) as usize + 1;
            }
            cur = p;
        }
        pos
    }

    fn collect(&self, t: u32, out: &mut Vec<Handle>) {
        if t == NIL {
            return;
        }
        self.collect(self.nodes[t as usize].left, out);
        out.push(t as usize);
        self.collect(self.nodes[t as usize].right, out);
    }

    /// Re-computes aggregates on the path from `h` to its root after an
    /// in-place value change.
    fn fix_to_root(&mut self, h: u32) {
        let mut cur = h;
        while cur != NIL {
            self.pull(cur);
            cur = self.nodes[cur as usize].parent;
        }
    }
}

impl<M: CommutativeMonoid> DynSequence<M> for TreapSequence<M> {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rng: StdRng::seed_from_u64(0x5eed_cafe),
            live: 0,
        }
    }

    fn make(&mut self, value: M::Weight, is_item: bool) -> Handle {
        let node = Node {
            left: NIL,
            right: NIL,
            parent: NIL,
            size: 1,
            priority: self.rng.random(),
            value,
            is_item,
            agg: Agg::vertex_if(value, !is_item),
            pending: no_act::<M>(),
        };
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx as usize
        } else {
            self.nodes.push(node);
            narrow(self.nodes.len() - 1) as usize
        }
    }

    fn set_value(&mut self, h: Handle, value: M::Weight) {
        // Clear tags above h first: the write must not be retro-acted by a
        // pending ancestor tag, and fix_to_root pulls through those nodes.
        self.push_path(narrow(h));
        self.nodes[h].value = value;
        self.fix_to_root(narrow(h));
    }

    fn value(&self, h: Handle) -> M::Weight {
        // Fold pending tags on strict ancestors (closest innermost) over the
        // stored value, without restructuring — a `&self` read.
        if !self.nodes[h].is_item {
            return self.nodes[h].value;
        }
        let mut acc = no_act::<M>();
        let mut cur = narrow(h);
        while self.nodes[cur as usize].parent != NIL {
            cur = self.nodes[cur as usize].parent;
            acc = ActionOf::<M>::compose(self.nodes[cur as usize].pending, acc);
        }
        acc.act_weight(self.nodes[h].value)
    }

    fn root(&mut self, h: Handle) -> Handle {
        self.find_root(narrow(h)) as usize
    }

    fn position(&mut self, h: Handle) -> usize {
        self.position_internal(narrow(h))
    }

    fn seq_len(&mut self, h: Handle) -> usize {
        let r = self.find_root(narrow(h));
        self.nodes[r as usize].size as usize
    }

    fn split_before(&mut self, h: Handle) -> (Option<Handle>, Handle) {
        let pos = self.position_internal(narrow(h));
        let root = self.find_root(narrow(h));
        let (a, b) = self.split_idx(root, narrow(pos));
        debug_assert_ne!(b, NIL);
        (if a == NIL { None } else { Some(a as usize) }, b as usize)
    }

    fn split_after(&mut self, h: Handle) -> (Handle, Option<Handle>) {
        let pos = self.position_internal(narrow(h));
        let root = self.find_root(narrow(h));
        let (a, b) = self.split_idx(root, narrow(pos + 1));
        debug_assert_ne!(a, NIL);
        (a as usize, if b == NIL { None } else { Some(b as usize) })
    }

    fn join(&mut self, left: Option<Handle>, right: Option<Handle>) -> Option<Handle> {
        match (left, right) {
            (None, None) => None,
            (Some(a), None) => Some(self.find_root(narrow(a)) as usize),
            (None, Some(b)) => Some(self.find_root(narrow(b)) as usize),
            (Some(a), Some(b)) => {
                let (ra, rb) = (self.find_root(narrow(a)), self.find_root(narrow(b)));
                assert_ne!(ra, rb, "joining a sequence with itself");
                Some(self.merge(ra, rb) as usize)
            }
        }
    }

    fn aggregate(&mut self, h: Handle) -> Agg<M> {
        // Always current under the pending-tag convention (apply_node acts
        // on a node's agg the moment it is tagged).
        let r = self.find_root(narrow(h));
        self.nodes[r as usize].agg
    }

    fn apply_seq(&mut self, h: Handle, act: ActionOf<M>) {
        let r = self.find_root(narrow(h));
        self.apply_node(r, act);
    }

    fn free(&mut self, h: Handle) {
        assert_eq!(self.nodes[h].size, 1, "freeing a non-singleton node");
        assert_eq!(self.nodes[h].parent, NIL);
        self.live -= 1;
        self.free.push(narrow(h));
    }

    fn to_vec(&mut self, h: Handle) -> Vec<Handle> {
        let r = self.find_root(narrow(h));
        let mut out = Vec::with_capacity(self.nodes[r as usize].size as usize);
        self.collect(r, &mut out);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<M>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn live_nodes(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treap_stays_balanced_enough() {
        // Build a long sequence by repeated joins and check positions.
        let mut s: TreapSequence = DynSequence::new();
        let hs: Vec<usize> = (0..2000).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let root = root.unwrap();
        assert_eq!(s.aggregate(root).count, 2000);
        assert_eq!(s.position(hs[1234]), 1234);
        assert_eq!(s.aggregate(root).sum, (0..2000).sum::<i64>());
    }

    #[test]
    fn split_and_rejoin_roundtrip() {
        let mut s: TreapSequence = DynSequence::new();
        let hs: Vec<usize> = (0..100).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        for split_at in [0usize, 1, 37, 50, 99] {
            let (l, r) = s.split_before(hs[split_at]);
            assert_eq!(s.position(hs[split_at]), 0);
            if let Some(l) = l {
                assert_eq!(s.aggregate(l).count, split_at as u64);
            }
            let joined = s.join(l, Some(r)).unwrap();
            assert_eq!(s.aggregate(joined).count, 100u64);
            assert_eq!(s.position(hs[split_at]), split_at);
        }
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut s: TreapSequence = DynSequence::new();
        let a = s.make(1, true);
        s.free(a);
        let b = s.make(2, true);
        assert_eq!(a, b, "slot should be reused");
        assert_eq!(s.live_nodes(), 1);
    }

    #[test]
    fn lazy_apply_survives_splits_and_merges() {
        use dyntree_primitives::algebra::AddConst;
        let mut s: TreapSequence = DynSequence::new();
        let hs: Vec<usize> = (0..64).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let root = root.unwrap();
        s.apply_seq(root, AddConst(100));
        assert_eq!(s.aggregate(root).sum, (0..64).map(|i| i + 100).sum::<i64>());
        assert_eq!(s.value(hs[17]), 117, "value reads through pending tags");
        // split forces pushes; both halves must carry the acted values
        let (l, r) = s.split_before(hs[32]);
        assert_eq!(
            s.aggregate(l.unwrap()).sum,
            (0..32).map(|i| i + 100).sum::<i64>()
        );
        assert_eq!(s.aggregate(r).min, 132);
        // act on one half only, rejoin, and check the mixed aggregate
        s.apply_seq(r, AddConst(-1000));
        let joined = s.join(l, Some(r)).unwrap();
        assert_eq!(s.value(hs[40]), 40 + 100 - 1000);
        assert_eq!(s.value(hs[10]), 110);
        assert_eq!(s.aggregate(joined).min, 132 - 1000);
        assert_eq!(s.aggregate(joined).count, 64);
        // set_value through a pending tag must not be retro-acted
        s.apply_seq(joined, AddConst(7));
        s.set_value(hs[40], 5);
        assert_eq!(s.value(hs[40]), 5);
        let r2 = s.root(hs[40]);
        assert_eq!(s.aggregate(r2).min, 132 - 1000 + 7);
    }

    #[test]
    fn node_slab_entries_are_narrow() {
        // The u32 narrowing is the point of the flat slab: a default-monoid
        // node must stay 16 bytes slimmer than its usize-link ancestor
        // (3 links + size at 4 bytes each instead of 8).
        let narrowed = std::mem::size_of::<Node<SumMinMax>>();
        struct WideNode {
            _left: usize,
            _right: usize,
            _parent: usize,
            _size: usize,
            _priority: u64,
            _value: i64,
            _is_item: bool,
            _agg: Agg<SumMinMax>,
            _pending: ActionOf<SumMinMax>,
        }
        assert!(
            narrowed + 16 <= std::mem::size_of::<WideNode>(),
            "narrowed node {narrowed} B not slimmer than wide layout"
        );
    }
}
