//! A treap-backed dynamic sequence (randomized balanced BST with parent
//! pointers), mirroring the "ETT (Treap)" baseline of the paper.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Agg, CommutativeMonoid, DynSequence, Handle, SumMinMax};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<M: CommutativeMonoid> {
    left: usize,
    right: usize,
    parent: usize,
    priority: u64,
    value: M::Weight,
    is_item: bool,
    agg: Agg<M>,
    size: usize,
}

/// Treap-based implementation of [`DynSequence`].
#[derive(Clone, Debug)]
pub struct TreapSequence<M: CommutativeMonoid = SumMinMax> {
    nodes: Vec<Node<M>>,
    free: Vec<usize>,
    rng: StdRng,
    live: usize,
}

impl<M: CommutativeMonoid> TreapSequence<M> {
    fn size_of(&self, t: usize) -> usize {
        if t == NIL {
            0
        } else {
            self.nodes[t].size
        }
    }

    fn agg_of(&self, t: usize) -> Agg<M> {
        if t == NIL {
            Agg::IDENTITY
        } else {
            self.nodes[t].agg
        }
    }

    fn pull(&mut self, t: usize) {
        let (l, r) = (self.nodes[t].left, self.nodes[t].right);
        let own = Agg::vertex_if(self.nodes[t].value, !self.nodes[t].is_item);
        let agg = Agg::combine(Agg::combine(self.agg_of(l), own), self.agg_of(r));
        let size = 1 + self.size_of(l) + self.size_of(r);
        let node = &mut self.nodes[t];
        node.agg = agg;
        node.size = size;
    }

    fn find_root(&self, mut t: usize) -> usize {
        while self.nodes[t].parent != NIL {
            t = self.nodes[t].parent;
        }
        t
    }

    /// Splits the tree rooted at `t` into its first `k` nodes and the rest.
    fn split_idx(&mut self, t: usize, k: usize) -> (usize, usize) {
        if t == NIL {
            return (NIL, NIL);
        }
        let left = self.nodes[t].left;
        let lsz = self.size_of(left);
        if k <= lsz {
            let (a, b) = self.split_idx(left, k);
            self.nodes[t].left = b;
            if b != NIL {
                self.nodes[b].parent = t;
            }
            if a != NIL {
                self.nodes[a].parent = NIL;
            }
            self.nodes[t].parent = NIL;
            self.pull(t);
            (a, t)
        } else {
            let right = self.nodes[t].right;
            let (a, b) = self.split_idx(right, k - lsz - 1);
            self.nodes[t].right = a;
            if a != NIL {
                self.nodes[a].parent = t;
            }
            if b != NIL {
                self.nodes[b].parent = NIL;
            }
            self.nodes[t].parent = NIL;
            self.pull(t);
            (t, b)
        }
    }

    fn merge(&mut self, a: usize, b: usize) -> usize {
        if a == NIL {
            return b;
        }
        if b == NIL {
            return a;
        }
        if self.nodes[a].priority > self.nodes[b].priority {
            let r = self.merge(self.nodes[a].right, b);
            self.nodes[a].right = r;
            self.nodes[r].parent = a;
            self.nodes[a].parent = NIL;
            self.pull(a);
            a
        } else {
            let l = self.merge(a, self.nodes[b].left);
            self.nodes[b].left = l;
            self.nodes[l].parent = b;
            self.nodes[b].parent = NIL;
            self.pull(b);
            b
        }
    }

    fn position_internal(&self, h: usize) -> usize {
        let mut pos = self.size_of(self.nodes[h].left);
        let mut cur = h;
        while self.nodes[cur].parent != NIL {
            let p = self.nodes[cur].parent;
            if self.nodes[p].right == cur {
                pos += self.size_of(self.nodes[p].left) + 1;
            }
            cur = p;
        }
        pos
    }

    fn collect(&self, t: usize, out: &mut Vec<usize>) {
        if t == NIL {
            return;
        }
        self.collect(self.nodes[t].left, out);
        out.push(t);
        self.collect(self.nodes[t].right, out);
    }

    /// Re-computes aggregates on the path from `h` to its root after an
    /// in-place value change.
    fn fix_to_root(&mut self, h: usize) {
        let mut cur = h;
        while cur != NIL {
            self.pull(cur);
            cur = self.nodes[cur].parent;
        }
    }
}

impl<M: CommutativeMonoid> DynSequence<M> for TreapSequence<M> {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            rng: StdRng::seed_from_u64(0x5eed_cafe),
            live: 0,
        }
    }

    fn make(&mut self, value: M::Weight, is_item: bool) -> Handle {
        let node = Node {
            left: NIL,
            right: NIL,
            parent: NIL,
            priority: self.rng.random(),
            value,
            is_item,
            agg: Agg::vertex_if(value, !is_item),
            size: 1,
        };
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn set_value(&mut self, h: Handle, value: M::Weight) {
        self.nodes[h].value = value;
        self.fix_to_root(h);
    }

    fn value(&self, h: Handle) -> M::Weight {
        self.nodes[h].value
    }

    fn root(&mut self, h: Handle) -> Handle {
        self.find_root(h)
    }

    fn position(&mut self, h: Handle) -> usize {
        self.position_internal(h)
    }

    fn seq_len(&mut self, h: Handle) -> usize {
        let r = self.find_root(h);
        self.nodes[r].size
    }

    fn split_before(&mut self, h: Handle) -> (Option<Handle>, Handle) {
        let pos = self.position_internal(h);
        let root = self.find_root(h);
        let (a, b) = self.split_idx(root, pos);
        debug_assert_ne!(b, NIL);
        (if a == NIL { None } else { Some(a) }, b)
    }

    fn split_after(&mut self, h: Handle) -> (Handle, Option<Handle>) {
        let pos = self.position_internal(h);
        let root = self.find_root(h);
        let (a, b) = self.split_idx(root, pos + 1);
        debug_assert_ne!(a, NIL);
        (a, if b == NIL { None } else { Some(b) })
    }

    fn join(&mut self, left: Option<Handle>, right: Option<Handle>) -> Option<Handle> {
        match (left, right) {
            (None, None) => None,
            (Some(a), None) => Some(self.find_root(a)),
            (None, Some(b)) => Some(self.find_root(b)),
            (Some(a), Some(b)) => {
                let (ra, rb) = (self.find_root(a), self.find_root(b));
                assert_ne!(ra, rb, "joining a sequence with itself");
                Some(self.merge(ra, rb))
            }
        }
    }

    fn aggregate(&mut self, h: Handle) -> Agg<M> {
        let r = self.find_root(h);
        self.nodes[r].agg
    }

    fn free(&mut self, h: Handle) {
        assert_eq!(self.nodes[h].size, 1, "freeing a non-singleton node");
        assert_eq!(self.nodes[h].parent, NIL);
        self.live -= 1;
        self.free.push(h);
    }

    fn to_vec(&mut self, h: Handle) -> Vec<Handle> {
        let r = self.find_root(h);
        let mut out = Vec::with_capacity(self.nodes[r].size);
        self.collect(r, &mut out);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<M>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
    }

    fn live_nodes(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn treap_stays_balanced_enough() {
        // Build a long sequence by repeated joins and check positions.
        let mut s: TreapSequence = DynSequence::new();
        let hs: Vec<usize> = (0..2000).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let root = root.unwrap();
        assert_eq!(s.aggregate(root).count, 2000);
        assert_eq!(s.position(hs[1234]), 1234);
        assert_eq!(s.aggregate(root).sum, (0..2000).sum::<i64>());
    }

    #[test]
    fn split_and_rejoin_roundtrip() {
        let mut s: TreapSequence = DynSequence::new();
        let hs: Vec<usize> = (0..100).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        for split_at in [0usize, 1, 37, 50, 99] {
            let (l, r) = s.split_before(hs[split_at]);
            assert_eq!(s.position(hs[split_at]), 0);
            if let Some(l) = l {
                assert_eq!(s.aggregate(l).count, split_at as u64);
            }
            let joined = s.join(l, Some(r)).unwrap();
            assert_eq!(s.aggregate(joined).count, 100u64);
            assert_eq!(s.position(hs[split_at]), split_at);
        }
    }

    #[test]
    fn free_list_reuses_slots() {
        let mut s: TreapSequence = DynSequence::new();
        let a = s.make(1, true);
        s.free(a);
        let b = s.make(2, true);
        assert_eq!(a, b, "slot should be reused");
        assert_eq!(s.live_nodes(), 1);
    }
}
