//! Ordered-sequence substrates for Euler tour trees.
//!
//! The paper's sequential ETT baselines come in three flavours (treap, splay
//! tree, skip list) that differ only in the underlying sequence structure.
//! This crate defines the [`DynSequence`] interface an Euler tour tree needs —
//! split before/after a handle, join, position, and aggregate over a sequence
//! — and provides balanced implementations.
//!
//! Every node carries a weight of the [`CommutativeMonoid`] the sequence is
//! instantiated with (the historical `i64` sum/min/max behaviour is the
//! default [`SumMinMax`] monoid) and an *item* flag; aggregates are
//! [`Agg<M>`] values computed over item nodes only, which lets the Euler tour
//! tree store vertex occurrences as items and edge arcs as non-items.
//! Commutativity is required because splits and joins reorder the fold.

pub mod splay;
pub mod treap;

pub use splay::SplaySequence;
pub use treap::TreapSequence;

pub use dyntree_primitives::algebra::{
    Action, ActionOf, Agg, CommutativeMonoid, Monoid, SumMinMax,
};

/// Handle to a node of a sequence.  Handles are stable for the lifetime of the
/// node (until [`DynSequence::free`]).
pub type Handle = usize;

/// A dynamic sequence supporting split/join by handle, generic over the
/// aggregation monoid (default: the `i64` sum/min/max of [`SumMinMax`]).
///
/// All operations may restructure the sequence internally (splay trees do so
/// on every access), hence the `&mut self` receivers even on queries.
/// Implementations must be `Send + Sync` so forests built over them qualify
/// as connectivity backends, which cross into the batch pre-pass thread pool
/// by shared reference (plain owned node arrays satisfy this automatically).
pub trait DynSequence<M: CommutativeMonoid = SumMinMax>: Send + Sync {
    /// Creates an empty structure (no nodes).
    fn new() -> Self;

    /// Allocates a new singleton sequence holding one node and returns its
    /// handle.  `is_item` controls whether the value participates in
    /// aggregates.
    fn make(&mut self, value: M::Weight, is_item: bool) -> Handle;

    /// Updates the value stored at `h`.
    fn set_value(&mut self, h: Handle, value: M::Weight);

    /// Returns the value stored at `h`.
    fn value(&self, h: Handle) -> M::Weight;

    /// Representative (root) of the sequence containing `h`.  Two handles are
    /// in the same sequence iff their roots are equal at the same point in
    /// time.
    fn root(&mut self, h: Handle) -> Handle;

    /// Zero-based position of `h` within its sequence.
    fn position(&mut self, h: Handle) -> usize;

    /// Total number of nodes in the sequence containing `h`.
    fn seq_len(&mut self, h: Handle) -> usize;

    /// Splits immediately before `h`; returns the roots of the left part
    /// (possibly empty) and of the right part (which starts with `h`).
    fn split_before(&mut self, h: Handle) -> (Option<Handle>, Handle);

    /// Splits immediately after `h`; returns the roots of the left part
    /// (which ends with `h`) and of the right part (possibly empty).
    fn split_after(&mut self, h: Handle) -> (Handle, Option<Handle>);

    /// Concatenates two sequences and returns the root of the result.
    fn join(&mut self, left: Option<Handle>, right: Option<Handle>) -> Option<Handle>;

    /// Aggregate over the item nodes of the sequence containing `h`.
    fn aggregate(&mut self, h: Handle) -> Agg<M>;

    /// Applies `act` to every item node of the sequence containing `h`,
    /// lazily: the root is tagged in `O(1)` (after root-finding) and the tag
    /// is pushed towards leaves on later structural access (DESIGN.md §13).
    /// Aggregates reflect the action immediately; [`value`](Self::value)
    /// reads through pending tags.
    fn apply_seq(&mut self, h: Handle, act: ActionOf<M>);

    /// Releases a node.  The node must form a singleton sequence.
    fn free(&mut self, h: Handle);

    /// Flattens the sequence containing `h` into a vector of handles, in
    /// order.  Intended for tests.
    fn to_vec(&mut self, h: Handle) -> Vec<Handle>;

    /// Exact heap bytes owned by the structure.
    fn memory_bytes(&self) -> usize;

    /// Number of live nodes.
    fn live_nodes(&self) -> usize;
}

#[cfg(test)]
mod trait_tests {
    use super::*;

    fn exercise<S: DynSequence>() {
        let mut s = S::new();
        // Build the sequence [10, 20, 30, 40] out of singletons.
        let hs: Vec<Handle> = (1..=4).map(|i| s.make(i * 10, true)).collect();
        let mut root = Some(hs[0]);
        for &h in &hs[1..] {
            root = s.join(root, Some(h));
        }
        let root = root.unwrap();
        assert_eq!(s.seq_len(hs[2]), 4);
        assert_eq!(s.aggregate(root).sum, 100);
        assert_eq!(s.aggregate(root).count, 4);
        for (i, &h) in hs.iter().enumerate() {
            assert_eq!(s.position(h), i, "position of element {}", i);
        }
        assert_eq!(s.to_vec(hs[1]), hs);

        // Split before 30: [10, 20] and [30, 40].
        let (left, right) = s.split_before(hs[2]);
        let left = left.unwrap();
        assert_eq!(s.aggregate(left).sum, 30);
        assert_eq!(s.aggregate(right).sum, 70);
        assert_ne!(s.root(hs[0]), s.root(hs[3]));

        // Re-join in swapped order: [30, 40, 10, 20].
        let joined = s.join(Some(right), Some(left)).unwrap();
        assert_eq!(s.aggregate(joined).count, 4);
        assert_eq!(s.position(hs[2]), 0);
        assert_eq!(s.position(hs[0]), 2);
        assert_eq!(s.to_vec(hs[0]), vec![hs[2], hs[3], hs[0], hs[1]]);

        // Non-item nodes do not contribute to aggregates.
        let marker = s.make(999, false);
        let cur_root = s.root(hs[0]);
        let joined = s.join(Some(cur_root), Some(marker)).unwrap();
        assert_eq!(s.aggregate(joined).sum, 100);
        assert_eq!(s.aggregate(joined).count, 4);
        assert_eq!(s.seq_len(marker), 5);

        // set_value is reflected in aggregates.
        s.set_value(hs[0], 0);
        let r = s.root(hs[0]);
        assert_eq!(s.aggregate(r).sum, 90);
        assert_eq!(s.value(hs[0]), 0);

        // apply_seq acts on every item at once, skipping non-items.
        s.apply_seq(hs[0], dyntree_primitives::algebra::AddConst(5));
        let r = s.root(hs[0]);
        assert_eq!(s.aggregate(r).sum, 110);
        assert_eq!(s.aggregate(r).count, 4);
        assert_eq!(s.value(hs[0]), 5);
        assert_eq!(s.value(marker), 999, "non-items are untouched");

        // Split the marker off and free it.
        let (rest, _right) = s.split_before(marker);
        assert!(rest.is_some());
        s.free(marker);
        assert_eq!(s.live_nodes(), 4);
        assert!(s.memory_bytes() > 0);
    }

    /// The sequences work with any commutative monoid, not just the default.
    fn exercise_generic<S: DynSequence<dyntree_primitives::algebra::MaxEdge>>() {
        use dyntree_primitives::algebra::WeightedId;
        let mut s = S::new();
        let a = s.make(WeightedId { weight: 5, id: 0 }, true);
        let b = s.make(WeightedId { weight: 9, id: 1 }, true);
        let c = s.make(WeightedId { weight: 7, id: 2 }, true);
        let r = s.join(Some(a), Some(b));
        let r = s.join(r, Some(c)).unwrap();
        assert_eq!(s.aggregate(r).value, WeightedId { weight: 9, id: 1 });
        s.set_value(b, WeightedId { weight: 1, id: 1 });
        let r = s.root(a);
        assert_eq!(s.aggregate(r).value, WeightedId { weight: 7, id: 2 });
        // a uniform shift keeps the argmax carrier and moves its weight
        s.apply_seq(r, dyntree_primitives::algebra::AddConst(10));
        let r = s.root(a);
        assert_eq!(s.aggregate(r).value, WeightedId { weight: 17, id: 2 });
        assert_eq!(s.value(a), WeightedId { weight: 15, id: 0 });
    }

    #[test]
    fn treap_satisfies_contract() {
        exercise::<TreapSequence>();
        exercise_generic::<TreapSequence<dyntree_primitives::algebra::MaxEdge>>();
    }

    #[test]
    fn splay_satisfies_contract() {
        exercise::<SplaySequence>();
        exercise_generic::<SplaySequence<dyntree_primitives::algebra::MaxEdge>>();
    }
}
