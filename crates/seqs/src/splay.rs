//! A splay-tree-backed dynamic sequence, mirroring the "ETT (Splay Tree)"
//! baseline of the paper.  Amortized `O(log n)` per operation.
//!
//! Like the treap, nodes live on a flat `Vec` slab addressed by `u32` ids
//! with freelist recycling (DESIGN.md §12): 4-byte links instead of machine
//! words halve the pointer footprint per node and keep rotations within
//! fewer cache lines.  The public [`Handle`] stays `usize`.

use crate::{Action, ActionOf, Agg, CommutativeMonoid, DynSequence, Handle, SumMinMax};

const NIL: u32 = u32::MAX;

/// The identity action of `M`'s update monoid (bound-shortening helper).
#[inline]
fn no_act<M: CommutativeMonoid>() -> ActionOf<M> {
    <ActionOf<M> as Action<M>>::IDENTITY
}

/// Narrows a slab index to its stored `u32` form.
#[inline]
fn narrow(x: usize) -> u32 {
    debug_assert!(x < NIL as usize, "slab index {x} exceeds u32 storage");
    x as u32
}

#[derive(Clone, Debug)]
struct Node<M: CommutativeMonoid> {
    left: u32,
    right: u32,
    parent: u32,
    size: u32,
    value: M::Weight,
    is_item: bool,
    agg: Agg<M>,
    /// Lazy action still to be applied to the *children's* subtrees; this
    /// node's own `value` and `agg` already reflect every tag placed on it
    /// (DESIGN.md §13), so aggregates never need a push.
    pending: ActionOf<M>,
}

/// Splay-tree-based implementation of [`DynSequence`].
#[derive(Clone, Debug)]
pub struct SplaySequence<M: CommutativeMonoid = SumMinMax> {
    nodes: Vec<Node<M>>,
    free: Vec<u32>,
    live: usize,
}

impl<M: CommutativeMonoid> SplaySequence<M> {
    fn size_of(&self, t: u32) -> u32 {
        if t == NIL {
            0
        } else {
            self.nodes[t as usize].size
        }
    }

    fn agg_of(&self, t: u32) -> Agg<M> {
        if t == NIL {
            Agg::IDENTITY
        } else {
            self.nodes[t as usize].agg
        }
    }

    fn pull(&mut self, t: u32) {
        // A pending tag means the children's aggs lag this node's; pulling
        // now would overwrite the acted agg with stale inputs.  Every caller
        // pushes first (splay / push_path), so this can only fire on a bug.
        debug_assert!(
            self.nodes[t as usize].pending.is_identity(),
            "pull on a node with a pending action"
        );
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        let own = Agg::vertex_if(
            self.nodes[t as usize].value,
            !self.nodes[t as usize].is_item,
        );
        let agg = Agg::combine(Agg::combine(self.agg_of(l), own), self.agg_of(r));
        let size = 1 + self.size_of(l) + self.size_of(r);
        let node = &mut self.nodes[t as usize];
        node.agg = agg;
        node.size = size;
    }

    /// Applies `a` to the whole subtree rooted at `t`, eagerly on `t`'s own
    /// value and aggregate and lazily (via the pending tag) on its children.
    fn apply_node(&mut self, t: u32, a: ActionOf<M>) {
        if t == NIL || a.is_identity() {
            return;
        }
        let node = &mut self.nodes[t as usize];
        if node.is_item {
            node.value = a.act_weight(node.value);
        }
        node.agg.value = a.act_value(node.agg.value, node.agg.count);
        node.pending = ActionOf::<M>::compose(a, node.pending);
    }

    /// Pushes `t`'s pending tag down to its children and clears it.
    fn push(&mut self, t: u32) {
        let p = self.nodes[t as usize].pending;
        if p.is_identity() {
            return;
        }
        self.nodes[t as usize].pending = no_act::<M>();
        let (l, r) = (self.nodes[t as usize].left, self.nodes[t as usize].right);
        self.apply_node(l, p);
        self.apply_node(r, p);
    }

    fn rotate(&mut self, x: u32) {
        let p = self.nodes[x as usize].parent;
        let g = self.nodes[p as usize].parent;
        let right_child = self.nodes[p as usize].right == x;
        let b = if right_child {
            self.nodes[x as usize].left
        } else {
            self.nodes[x as usize].right
        };
        // p adopts b
        if right_child {
            self.nodes[p as usize].right = b;
        } else {
            self.nodes[p as usize].left = b;
        }
        if b != NIL {
            self.nodes[b as usize].parent = p;
        }
        // x adopts p
        if right_child {
            self.nodes[x as usize].left = p;
        } else {
            self.nodes[x as usize].right = p;
        }
        self.nodes[p as usize].parent = x;
        // g adopts x
        self.nodes[x as usize].parent = g;
        if g != NIL {
            if self.nodes[g as usize].left == p {
                self.nodes[g as usize].left = x;
            } else {
                self.nodes[g as usize].right = x;
            }
        }
        self.pull(p);
        self.pull(x);
    }

    fn splay(&mut self, x: u32) {
        // Push pending tags top-down along the root→x path (x included):
        // rotations re-parent x's inner child out from under x, so every
        // node whose children change must be tag-clean first.
        let mut stack = vec![x];
        let mut cur = x;
        while self.nodes[cur as usize].parent != NIL {
            cur = self.nodes[cur as usize].parent;
            stack.push(cur);
        }
        while let Some(n) = stack.pop() {
            self.push(n);
        }
        while self.nodes[x as usize].parent != NIL {
            let p = self.nodes[x as usize].parent;
            let g = self.nodes[p as usize].parent;
            if g != NIL {
                let zig_zig =
                    (self.nodes[g as usize].left == p) == (self.nodes[p as usize].left == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    fn rightmost(&self, mut t: u32) -> u32 {
        while self.nodes[t as usize].right != NIL {
            t = self.nodes[t as usize].right;
        }
        t
    }

    fn root_of(&self, h: u32) -> u32 {
        // Walk up without restructuring: the DynSequence contract requires
        // two calls on members of the same sequence to return the same
        // handle, so the root must be stable across read-only queries.
        let mut cur = h;
        while self.nodes[cur as usize].parent != NIL {
            cur = self.nodes[cur as usize].parent;
        }
        cur
    }

    fn collect(&self, t: u32, out: &mut Vec<Handle>) {
        if t == NIL {
            return;
        }
        self.collect(self.nodes[t as usize].left, out);
        out.push(t as usize);
        self.collect(self.nodes[t as usize].right, out);
    }
}

impl<M: CommutativeMonoid> DynSequence<M> for SplaySequence<M> {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn make(&mut self, value: M::Weight, is_item: bool) -> Handle {
        let node = Node {
            left: NIL,
            right: NIL,
            parent: NIL,
            size: 1,
            value,
            is_item,
            agg: Agg::vertex_if(value, !is_item),
            pending: no_act::<M>(),
        };
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx as usize] = node;
            idx as usize
        } else {
            self.nodes.push(node);
            narrow(self.nodes.len() - 1) as usize
        }
    }

    fn set_value(&mut self, h: Handle, value: M::Weight) {
        self.splay(narrow(h));
        self.nodes[h].value = value;
        self.pull(narrow(h));
    }

    fn value(&self, h: Handle) -> M::Weight {
        // The stored value lags any tags still pending on strict ancestors;
        // fold them (closest ancestor innermost) without restructuring so
        // this stays a `&self` read.
        if !self.nodes[h].is_item {
            return self.nodes[h].value;
        }
        let mut acc = no_act::<M>();
        let mut cur = narrow(h);
        while self.nodes[cur as usize].parent != NIL {
            cur = self.nodes[cur as usize].parent;
            acc = ActionOf::<M>::compose(self.nodes[cur as usize].pending, acc);
        }
        acc.act_weight(self.nodes[h].value)
    }

    fn root(&mut self, h: Handle) -> Handle {
        self.root_of(narrow(h)) as usize
    }

    fn position(&mut self, h: Handle) -> usize {
        self.splay(narrow(h));
        self.size_of(self.nodes[h].left) as usize
    }

    fn seq_len(&mut self, h: Handle) -> usize {
        self.splay(narrow(h));
        self.nodes[h].size as usize
    }

    fn split_before(&mut self, h: Handle) -> (Option<Handle>, Handle) {
        self.splay(narrow(h));
        let l = self.nodes[h].left;
        if l == NIL {
            return (None, h);
        }
        self.nodes[h].left = NIL;
        self.nodes[l as usize].parent = NIL;
        self.pull(narrow(h));
        (Some(l as usize), h)
    }

    fn split_after(&mut self, h: Handle) -> (Handle, Option<Handle>) {
        self.splay(narrow(h));
        let r = self.nodes[h].right;
        if r == NIL {
            return (h, None);
        }
        self.nodes[h].right = NIL;
        self.nodes[r as usize].parent = NIL;
        self.pull(narrow(h));
        (h, Some(r as usize))
    }

    fn join(&mut self, left: Option<Handle>, right: Option<Handle>) -> Option<Handle> {
        match (left, right) {
            (None, None) => None,
            (Some(a), None) => Some(self.root_of(narrow(a)) as usize),
            (None, Some(b)) => Some(self.root_of(narrow(b)) as usize),
            (Some(a), Some(b)) => {
                let ra = self.root_of(narrow(a));
                let last = self.rightmost(ra);
                self.splay(last);
                let rb = self.root_of(narrow(b));
                assert_ne!(last, rb, "joining a sequence with itself");
                debug_assert_eq!(self.nodes[last as usize].right, NIL);
                self.nodes[last as usize].right = rb;
                self.nodes[rb as usize].parent = last;
                self.pull(last);
                Some(last as usize)
            }
        }
    }

    fn aggregate(&mut self, h: Handle) -> Agg<M> {
        // Aggregates are always current under the pending-tag convention
        // (apply_node acts on a node's agg the moment it is tagged).
        let r = self.root_of(narrow(h));
        self.nodes[r as usize].agg
    }

    fn apply_seq(&mut self, h: Handle, act: ActionOf<M>) {
        let r = self.root_of(narrow(h));
        self.apply_node(r, act);
    }

    fn free(&mut self, h: Handle) {
        self.splay(narrow(h));
        assert_eq!(self.nodes[h].size, 1, "freeing a non-singleton node");
        self.live -= 1;
        self.free.push(narrow(h));
    }

    fn to_vec(&mut self, h: Handle) -> Vec<Handle> {
        let r = self.root_of(narrow(h));
        let mut out = Vec::with_capacity(self.nodes[r as usize].size as usize);
        self.collect(r, &mut out);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<M>>()
            + self.free.capacity() * std::mem::size_of::<u32>()
    }

    fn live_nodes(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splay_positions_match_build_order() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..500).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        for (i, &h) in hs.iter().enumerate().step_by(37) {
            assert_eq!(s.position(h), i);
        }
        assert_eq!(s.aggregate(hs[0]).count, 500);
    }

    #[test]
    fn split_in_the_middle() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..20).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let (l, r) = s.split_after(hs[9]);
        assert_eq!(s.aggregate(l).count, 10);
        assert_eq!(s.aggregate(r.unwrap()).count, 10);
        assert_eq!(s.position(hs[10]), 0);
    }

    #[test]
    fn free_list_reuses_slots() {
        // Regression guard for the slab freelist: a freed slot must be the
        // next one handed out, and reusing it must leave no stale links from
        // its previous life (the fresh node starts detached).
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..8).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let (_l, _r) = s.split_before(hs[4]);
        let (_single, _rest) = s.split_after(hs[4]);
        s.free(hs[4]);
        let again = s.make(99, true);
        assert_eq!(again, hs[4], "slot should be reused");
        assert_eq!(s.position(again), 0, "recycled node starts detached");
        assert_eq!(s.aggregate(again).count, 1);
        assert_eq!(s.live_nodes(), 8);
    }

    #[test]
    fn lazy_apply_pushes_through_rotations() {
        use dyntree_primitives::algebra::AddConst;
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..128).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let root = root.unwrap();
        s.apply_seq(root, AddConst(1000));
        assert_eq!(s.value(hs[99]), 1099, "value reads through pending tags");
        // splaying a deep node pushes the whole path; positions and
        // aggregates must agree with the eager result afterwards
        assert_eq!(s.position(hs[99]), 99);
        assert_eq!(s.value(hs[99]), 1099);
        let r = s.root(hs[0]);
        assert_eq!(s.aggregate(r).sum, (0..128).map(|i| i + 1000).sum::<i64>());
        // stacked tags compose: apply twice, then read an untouched node
        s.apply_seq(hs[5], AddConst(-1));
        s.apply_seq(hs[5], AddConst(-1));
        assert_eq!(s.value(hs[64]), 1062);
        let (l, rr) = s.split_before(hs[64]);
        assert_eq!(s.aggregate(l.unwrap()).max, 1061);
        assert_eq!(s.aggregate(rr).min, 1062);
        // set_value lands after the tags, never before
        s.set_value(hs[64], 0);
        assert_eq!(s.value(hs[64]), 0);
        assert_eq!(s.aggregate(rr).min, 0);
    }

    #[test]
    fn interleaved_splits_and_joins_keep_order() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..64).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        // rotate the sequence left by 10: split before hs[10], swap halves
        let (l, r) = s.split_before(hs[10]);
        let joined = s.join(Some(r), l).unwrap();
        let order = s.to_vec(joined);
        assert_eq!(order[0], hs[10]);
        assert_eq!(order[63], hs[9]);
        assert_eq!(order.len(), 64);
    }
}
