//! A splay-tree-backed dynamic sequence, mirroring the "ETT (Splay Tree)"
//! baseline of the paper.  Amortized `O(log n)` per operation.

use crate::{Agg, CommutativeMonoid, DynSequence, Handle, SumMinMax};

const NIL: usize = usize::MAX;

#[derive(Clone, Debug)]
struct Node<M: CommutativeMonoid> {
    left: usize,
    right: usize,
    parent: usize,
    value: M::Weight,
    is_item: bool,
    agg: Agg<M>,
    size: usize,
}

/// Splay-tree-based implementation of [`DynSequence`].
#[derive(Clone, Debug)]
pub struct SplaySequence<M: CommutativeMonoid = SumMinMax> {
    nodes: Vec<Node<M>>,
    free: Vec<usize>,
    live: usize,
}

impl<M: CommutativeMonoid> SplaySequence<M> {
    fn size_of(&self, t: usize) -> usize {
        if t == NIL {
            0
        } else {
            self.nodes[t].size
        }
    }

    fn agg_of(&self, t: usize) -> Agg<M> {
        if t == NIL {
            Agg::IDENTITY
        } else {
            self.nodes[t].agg
        }
    }

    fn pull(&mut self, t: usize) {
        let (l, r) = (self.nodes[t].left, self.nodes[t].right);
        let own = Agg::vertex_if(self.nodes[t].value, !self.nodes[t].is_item);
        let agg = Agg::combine(Agg::combine(self.agg_of(l), own), self.agg_of(r));
        let size = 1 + self.size_of(l) + self.size_of(r);
        let node = &mut self.nodes[t];
        node.agg = agg;
        node.size = size;
    }

    fn rotate(&mut self, x: usize) {
        let p = self.nodes[x].parent;
        let g = self.nodes[p].parent;
        let dir = (self.nodes[p].right == x) as usize;
        let b = if dir == 1 {
            self.nodes[x].left
        } else {
            self.nodes[x].right
        };
        // p adopts b
        if dir == 1 {
            self.nodes[p].right = b;
        } else {
            self.nodes[p].left = b;
        }
        if b != NIL {
            self.nodes[b].parent = p;
        }
        // x adopts p
        if dir == 1 {
            self.nodes[x].left = p;
        } else {
            self.nodes[x].right = p;
        }
        self.nodes[p].parent = x;
        // g adopts x
        self.nodes[x].parent = g;
        if g != NIL {
            if self.nodes[g].left == p {
                self.nodes[g].left = x;
            } else {
                self.nodes[g].right = x;
            }
        }
        self.pull(p);
        self.pull(x);
    }

    fn splay(&mut self, x: usize) {
        while self.nodes[x].parent != NIL {
            let p = self.nodes[x].parent;
            let g = self.nodes[p].parent;
            if g != NIL {
                let zig_zig = (self.nodes[g].left == p) == (self.nodes[p].left == x);
                if zig_zig {
                    self.rotate(p);
                } else {
                    self.rotate(x);
                }
            }
            self.rotate(x);
        }
    }

    fn rightmost(&self, mut t: usize) -> usize {
        while self.nodes[t].right != NIL {
            t = self.nodes[t].right;
        }
        t
    }

    fn collect(&self, t: usize, out: &mut Vec<usize>) {
        if t == NIL {
            return;
        }
        self.collect(self.nodes[t].left, out);
        out.push(t);
        self.collect(self.nodes[t].right, out);
    }
}

impl<M: CommutativeMonoid> DynSequence<M> for SplaySequence<M> {
    fn new() -> Self {
        Self {
            nodes: Vec::new(),
            free: Vec::new(),
            live: 0,
        }
    }

    fn make(&mut self, value: M::Weight, is_item: bool) -> Handle {
        let node = Node {
            left: NIL,
            right: NIL,
            parent: NIL,
            value,
            is_item,
            agg: Agg::vertex_if(value, !is_item),
            size: 1,
        };
        self.live += 1;
        if let Some(idx) = self.free.pop() {
            self.nodes[idx] = node;
            idx
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn set_value(&mut self, h: Handle, value: M::Weight) {
        self.splay(h);
        self.nodes[h].value = value;
        self.pull(h);
    }

    fn value(&self, h: Handle) -> M::Weight {
        self.nodes[h].value
    }

    fn root(&mut self, h: Handle) -> Handle {
        // Walk up without restructuring: the DynSequence contract requires two
        // calls on members of the same sequence to return the same handle, so
        // the root must be stable across read-only queries.
        let mut cur = h;
        while self.nodes[cur].parent != NIL {
            cur = self.nodes[cur].parent;
        }
        cur
    }

    fn position(&mut self, h: Handle) -> usize {
        self.splay(h);
        self.size_of(self.nodes[h].left)
    }

    fn seq_len(&mut self, h: Handle) -> usize {
        self.splay(h);
        self.nodes[h].size
    }

    fn split_before(&mut self, h: Handle) -> (Option<Handle>, Handle) {
        self.splay(h);
        let l = self.nodes[h].left;
        if l == NIL {
            return (None, h);
        }
        self.nodes[h].left = NIL;
        self.nodes[l].parent = NIL;
        self.pull(h);
        (Some(l), h)
    }

    fn split_after(&mut self, h: Handle) -> (Handle, Option<Handle>) {
        self.splay(h);
        let r = self.nodes[h].right;
        if r == NIL {
            return (h, None);
        }
        self.nodes[h].right = NIL;
        self.nodes[r].parent = NIL;
        self.pull(h);
        (h, Some(r))
    }

    fn join(&mut self, left: Option<Handle>, right: Option<Handle>) -> Option<Handle> {
        match (left, right) {
            (None, None) => None,
            (Some(a), None) => Some(self.root(a)),
            (None, Some(b)) => Some(self.root(b)),
            (Some(a), Some(b)) => {
                let ra = self.root(a);
                let last = self.rightmost(ra);
                self.splay(last);
                let rb = self.root(b);
                assert_ne!(last, rb, "joining a sequence with itself");
                debug_assert_eq!(self.nodes[last].right, NIL);
                self.nodes[last].right = rb;
                self.nodes[rb].parent = last;
                self.pull(last);
                Some(last)
            }
        }
    }

    fn aggregate(&mut self, h: Handle) -> Agg<M> {
        let r = self.root(h);
        self.nodes[r].agg
    }

    fn free(&mut self, h: Handle) {
        self.splay(h);
        assert_eq!(self.nodes[h].size, 1, "freeing a non-singleton node");
        self.live -= 1;
        self.free.push(h);
    }

    fn to_vec(&mut self, h: Handle) -> Vec<Handle> {
        let r = self.root(h);
        let mut out = Vec::with_capacity(self.nodes[r].size);
        self.collect(r, &mut out);
        out
    }

    fn memory_bytes(&self) -> usize {
        self.nodes.capacity() * std::mem::size_of::<Node<M>>()
            + self.free.capacity() * std::mem::size_of::<usize>()
    }

    fn live_nodes(&self) -> usize {
        self.live
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splay_positions_match_build_order() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..500).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        for (i, &h) in hs.iter().enumerate().step_by(37) {
            assert_eq!(s.position(h), i);
        }
        assert_eq!(s.aggregate(hs[0]).count, 500);
    }

    #[test]
    fn split_in_the_middle() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..20).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        let (l, r) = s.split_after(hs[9]);
        assert_eq!(s.aggregate(l).count, 10);
        assert_eq!(s.aggregate(r.unwrap()).count, 10);
        assert_eq!(s.position(hs[10]), 0);
    }

    #[test]
    fn interleaved_splits_and_joins_keep_order() {
        let mut s: SplaySequence = DynSequence::new();
        let hs: Vec<usize> = (0..64).map(|i| s.make(i, true)).collect();
        let mut root = None;
        for &h in &hs {
            root = s.join(root, Some(h));
        }
        // rotate the sequence left by 10: split before hs[10], swap halves
        let (l, r) = s.split_before(hs[10]);
        let joined = s.join(Some(r), l).unwrap();
        let order = s.to_vec(joined);
        assert_eq!(order[0], hs[10]);
        assert_eq!(order[63], hs[9]);
        assert_eq!(order.len(), 64);
    }
}
