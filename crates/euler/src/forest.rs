//! The Euler tour forest, generic over the sequence backend and the
//! aggregation monoid.

use dyntree_primitives::hash::FxHashMap;

use dyntree_seqs::{ActionOf, Agg, CommutativeMonoid, DynSequence, Handle, SumMinMax};

/// Narrows a vertex id or sequence handle to its stored `u32` form (the
/// in-tree sequence backends allocate slab ids well below `u32::MAX`).
#[inline]
fn narrow(x: usize) -> u32 {
    debug_assert!(x < u32::MAX as usize, "index {x} exceeds u32 storage");
    x as u32
}

/// An Euler tour forest over vertices `0..n` with vertex weights drawn from
/// the commutative monoid `M` (default: the `i64` sum/min/max aggregate).
///
/// Each tree's Euler tour is stored as a sequence containing one *vertex
/// occurrence* node per vertex (carrying the vertex weight) and two *arc*
/// nodes per edge.  Supported operations: `link`, `cut`, `connected`,
/// `reroot`, component aggregates and subtree aggregates — all answered as
/// [`Agg<M>`].  Path aggregates are *not* an ETT primitive (the paper
/// stresses this); [`path_aggregate`](Self::path_aggregate) is an honest
/// `O(component)` walk over the explicit adjacency lists kept alongside the
/// tour, provided so every forest answers the full shared query surface.
///
/// The arc registry and the forest adjacency are one flat structure
/// (DESIGN.md §12): per vertex, a `(neighbour, arc handle)` array sorted by
/// neighbour id.  This replaces the historical trio of two `(u, v)`-keyed
/// hash maps plus per-vertex neighbour lists — same information, one
/// cache-contiguous array per vertex, binary-searched lookups, zero hashing.
#[derive(Clone, Debug)]
pub struct EulerTourForest<S: DynSequence<M>, M: CommutativeMonoid = SumMinMax> {
    seq: S,
    vertex_node: Vec<Handle>,
    /// Per vertex: `(neighbour, handle of the outgoing arc u→neighbour)`,
    /// sorted by neighbour id.  Doubles as the arc registry (`cut`,
    /// `subtree_aggregate`) and the path-fallback adjacency.
    nbrs: Vec<Vec<(u32, u32)>>,
    /// Live edge count (`nbrs` stores two entries per edge).
    edges: usize,
    /// Weights live in the sequence nodes, not here (see [`Self::weight`]);
    /// the monoid only parameterizes `seq`'s node payloads.
    _monoid: std::marker::PhantomData<M>,
}

impl<S: DynSequence<M>, M: CommutativeMonoid> EulerTourForest<S, M> {
    /// Creates a forest of `n` isolated vertices with default weight.
    pub fn new(n: usize) -> Self {
        let mut seq = S::new();
        let vertex_node = (0..n)
            .map(|_| seq.make(M::Weight::default(), true))
            .collect();
        Self {
            seq,
            vertex_node,
            nbrs: vec![Vec::new(); n],
            edges: 0,
            _monoid: std::marker::PhantomData,
        }
    }

    /// Handle of the outgoing arc `u → v`, if the edge exists.
    fn arc(&self, u: usize, v: usize) -> Option<Handle> {
        let list = &self.nbrs[u];
        list.binary_search_by_key(&narrow(v), |&(n, _)| n)
            .ok()
            .map(|pos| list[pos].1 as usize)
    }

    fn adj_insert(&mut self, u: usize, v: usize, arc: Handle) {
        let (v, arc) = (narrow(v), narrow(arc));
        let pos = self.nbrs[u].partition_point(|&(n, _)| n < v);
        debug_assert!(self.nbrs[u].get(pos).map(|&(n, _)| n) != Some(v));
        self.nbrs[u].insert(pos, (v, arc));
    }

    fn adj_remove(&mut self, u: usize, v: usize) {
        let v = narrow(v);
        let pos = self.nbrs[u]
            .binary_search_by_key(&v, |&(n, _)| n)
            .expect("adjacency entry exists");
        self.nbrs[u].remove(pos);
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.vertex_node.len()
    }

    /// Appends isolated vertices (with default weight) until the forest has
    /// `n` of them.  Each new vertex becomes a singleton Euler tour; existing
    /// tours are untouched.  A smaller `n` is a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        while self.vertex_node.len() < n {
            let h = self.seq.make(M::Weight::default(), true);
            self.vertex_node.push(h);
            self.nbrs.push(Vec::new());
        }
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.vertex_node.is_empty()
    }

    /// Number of edges currently present.
    pub fn num_edges(&self) -> usize {
        self.edges
    }

    /// Whether edge `(u, v)` is present.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.arc(u, v).is_some()
    }

    /// Sets the weight of vertex `v`.
    pub fn set_weight(&mut self, v: usize, w: M::Weight) {
        self.seq.set_value(self.vertex_node[v], w);
    }

    /// Returns the weight of vertex `v`, read from its tour occurrence node.
    /// The sequence is the single source of truth — bulk actions applied via
    /// [`component_apply`](Self::component_apply) land there, so a separate
    /// weight mirror would silently diverge.
    pub fn weight(&self, v: usize) -> M::Weight {
        self.seq.value(self.vertex_node[v])
    }

    /// Applies `act` to every vertex of the component containing `v` and
    /// returns the number of vertices touched (≥ 1).  `O(1)` beyond finding
    /// the tour root: a single pending tag covers the whole tour, and arc
    /// (non-item) nodes are skipped by the sequence layer.
    pub fn component_apply(&mut self, v: usize, act: ActionOf<M>) -> u64 {
        let h = self.vertex_node[v];
        let count = self.seq.aggregate(h).count;
        self.seq.apply_seq(h, act);
        count
    }

    /// Re-roots the Euler tour of `v`'s tree so that it starts at `v`.
    pub fn reroot(&mut self, v: usize) {
        let h = self.vertex_node[v];
        let (left, right) = self.seq.split_before(h);
        if left.is_some() {
            self.seq.join(Some(right), left);
        }
    }

    /// Inserts edge `(u, v)`.  Returns `false` if it would create a cycle, if
    /// `u == v`, or if the edge already exists.
    pub fn link(&mut self, u: usize, v: usize) -> bool {
        if u == v || self.has_edge(u, v) || self.connected(u, v) {
            return false;
        }
        self.reroot(u);
        self.reroot(v);
        let uv = self.seq.make(M::Weight::default(), false);
        let vu = self.seq.make(M::Weight::default(), false);
        self.adj_insert(u, v, uv);
        self.adj_insert(v, u, vu);
        self.edges += 1;
        let tu = self.seq.root(self.vertex_node[u]);
        let tv = self.seq.root(self.vertex_node[v]);
        let t = self.seq.join(Some(tu), Some(uv));
        let t = self.seq.join(t, Some(tv));
        self.seq.join(t, Some(vu));
        true
    }

    /// Removes edge `(u, v)`.  Returns `false` if the edge is not present.
    pub fn cut(&mut self, u: usize, v: usize) -> bool {
        let (Some(a), Some(b)) = (self.arc(u, v), self.arc(v, u)) else {
            return false;
        };
        self.adj_remove(u, v);
        self.adj_remove(v, u);
        self.edges -= 1;
        let (first, second) = if self.seq.position(a) < self.seq.position(b) {
            (a, b)
        } else {
            (b, a)
        };
        // tour = A ++ [first] ++ inner ++ [second] ++ C
        let (prefix, _rest) = self.seq.split_before(first);
        let (_middle, suffix) = self.seq.split_after(second);
        let (_first_alone, inner_with_second) = self.seq.split_after(first);
        let inner_with_second =
            inner_with_second.expect("tour segment between arcs is never empty");
        let (_inner, _second_alone) = self.seq.split_before(second);
        let _ = inner_with_second;
        // One component keeps `inner` as its tour, the other is A ++ C.
        self.seq.join(prefix, suffix);
        self.seq.free(first);
        self.seq.free(second);
        true
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&mut self, u: usize, v: usize) -> bool {
        if u == v {
            return true;
        }
        self.seq.root(self.vertex_node[u]) == self.seq.root(self.vertex_node[v])
    }

    /// Aggregate over every vertex of the component containing `v`.
    pub fn component_aggregate(&mut self, v: usize) -> Agg<M> {
        self.seq.aggregate(self.vertex_node[v])
    }

    /// Number of vertices in the component containing `v`.
    pub fn component_size(&mut self, v: usize) -> usize {
        self.component_aggregate(v).count as usize
    }

    /// Aggregate over the subtree of `v` away from its neighbour `parent`,
    /// or `None` if `(v, parent)` is not an edge.
    pub fn subtree_aggregate(&mut self, v: usize, parent: usize) -> Option<Agg<M>> {
        if !self.has_edge(parent, v) {
            return None;
        }
        // Root the tour at `parent` so that arc (parent, v) precedes (v, parent);
        // the segment strictly between them is exactly v's subtree.
        self.reroot(parent);
        let a = self.arc(parent, v).expect("checked edge");
        let b = self.arc(v, parent).expect("checked edge");
        debug_assert!(self.seq.position(a) < self.seq.position(b));
        let (prefix, _rest) = self.seq.split_before(a);
        let (_middle, suffix) = self.seq.split_after(b);
        let (a_alone, _inner_part) = self.seq.split_after(a);
        let (inner, b_alone) = self.seq.split_before(b);
        let agg = inner
            .map(|i| self.seq.aggregate(i))
            .unwrap_or(Agg::IDENTITY);
        // stitch the tour back together: prefix ++ [a] ++ inner ++ [b] ++ suffix
        let t = self.seq.join(prefix, Some(a_alone));
        let t = self.seq.join(t, inner);
        let t = self.seq.join(t, Some(b_alone));
        self.seq.join(t, suffix);
        Some(agg)
    }

    /// Number of vertices in the subtree of `v` away from `parent`.
    pub fn subtree_size(&mut self, v: usize, parent: usize) -> Option<usize> {
        self.subtree_aggregate(v, parent).map(|a| a.count as usize)
    }

    /// Aggregate over the vertex weights on the `u`–`v` path (endpoints
    /// inclusive), or `None` if the vertices are disconnected.
    ///
    /// **Cost caveat:** Euler tours do not support path decomposition, so
    /// this is a BFS over the explicit forest adjacency — `O(k)` time and
    /// space for a component of `k` vertices, vs. the polylogarithmic path
    /// queries of UFO / link-cut trees.  Table 1's `weighted_aggregates`
    /// column records this asymmetry.
    pub fn path_aggregate(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        if u == v {
            return Some(Agg::vertex(self.weight(u)));
        }
        // predecessor map confined to the traversed component
        let mut pred: FxHashMap<usize, usize> = FxHashMap::default();
        pred.insert(u, u);
        let mut queue = std::collections::VecDeque::from([u]);
        'bfs: while let Some(x) = queue.pop_front() {
            for &(y, _) in &self.nbrs[x] {
                let y = y as usize;
                if let std::collections::hash_map::Entry::Vacant(e) = pred.entry(y) {
                    e.insert(x);
                    if y == v {
                        break 'bfs;
                    }
                    queue.push_back(y);
                }
            }
        }
        if !pred.contains_key(&v) {
            return None;
        }
        let mut agg = Agg::vertex(self.weight(v));
        let mut cur = v;
        while cur != u {
            cur = pred[&cur];
            agg = Agg::<M>::combine(agg, Agg::vertex(self.weight(cur))).cross_edge();
        }
        Some(agg)
    }

    /// Exact heap bytes owned by the structure (flat arrays throughout:
    /// every term is `capacity × entry size`).
    pub fn memory_bytes(&self) -> usize {
        let nbr_bytes: usize = self
            .nbrs
            .iter()
            .map(|a| a.capacity() * std::mem::size_of::<(u32, u32)>())
            .sum::<usize>()
            + self.nbrs.capacity() * std::mem::size_of::<Vec<(u32, u32)>>();
        self.seq.memory_bytes()
            + self.vertex_node.capacity() * std::mem::size_of::<Handle>()
            + nbr_bytes
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.
impl<S: DynSequence<SumMinMax>> EulerTourForest<S, SumMinMax> {
    /// Sum of vertex weights in the component containing `v`.
    pub fn component_sum(&mut self, v: usize) -> i64 {
        self.component_aggregate(v).sum
    }

    /// Sum of vertex weights in the subtree of `v` away from its neighbour
    /// `parent`, or `None` if `(v, parent)` is not an edge.
    pub fn subtree_sum(&mut self, v: usize, parent: usize) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.sum)
    }

    /// Maximum vertex weight in the subtree of `v` away from `parent`.
    pub fn subtree_max(&mut self, v: usize, parent: usize) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.max)
    }

    /// Sum of vertex weights on the `u`–`v` path (see the cost caveat on
    /// [`path_aggregate`](Self::path_aggregate)).
    pub fn path_sum(&mut self, u: usize, v: usize) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.sum)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyntree_seqs::{SplaySequence, TreapSequence};

    fn basic_ops<S: DynSequence>() {
        let mut f = EulerTourForest::<S>::new(8);
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(f.link(2, 3));
        assert!(f.link(5, 6));
        assert!(!f.link(0, 3), "cycle rejected");
        assert!(!f.link(0, 0), "self loop rejected");
        assert!(f.connected(0, 3));
        assert!(!f.connected(0, 5));
        assert_eq!(f.component_size(0), 4);
        assert_eq!(f.component_size(5), 2);
        assert_eq!(f.component_size(7), 1);
        assert!(f.cut(1, 2));
        assert!(!f.connected(0, 3));
        assert!(f.connected(2, 3));
        assert_eq!(f.component_size(0), 2);
        assert_eq!(f.component_size(3), 2);
        assert!(!f.cut(1, 2), "double cut rejected");
        assert_eq!(f.num_edges(), 3);
    }

    fn subtree_queries<S: DynSequence>() {
        let mut f = EulerTourForest::<S>::new(7);
        // 0 - 1, 1 - 2, 1 - 3, 0 - 4, 4 - 5; weights = vertex id
        for v in 0..7 {
            f.set_weight(v, v as i64);
        }
        for (u, v) in [(0, 1), (1, 2), (1, 3), (0, 4), (4, 5)] {
            assert!(f.link(u, v));
        }
        assert_eq!(f.subtree_sum(1, 0), Some(1 + 2 + 3));
        assert_eq!(f.subtree_size(1, 0), Some(3));
        assert_eq!(f.subtree_sum(0, 1), Some(4 + 5));
        assert_eq!(f.subtree_sum(4, 0), Some(9));
        assert_eq!(f.subtree_max(0, 1), Some(5));
        assert_eq!(f.subtree_sum(2, 0), None, "(2, 0) is not an edge");
        // after the query the structure still works
        assert!(f.connected(2, 5));
        assert!(f.cut(0, 1));
        assert_eq!(f.subtree_sum(4, 0), Some(9));
        assert!(!f.connected(2, 5));
    }

    fn weights_update<S: DynSequence>() {
        let mut f = EulerTourForest::<S>::new(4);
        f.link(0, 1);
        f.link(1, 2);
        f.link(2, 3);
        f.set_weight(2, 10);
        assert_eq!(f.component_sum(0), 10);
        assert_eq!(f.subtree_sum(2, 1), Some(10));
        f.set_weight(3, -4);
        assert_eq!(f.subtree_sum(2, 1), Some(6));
        assert_eq!(f.weight(3), -4);
    }

    fn path_fallback<S: DynSequence>() {
        let mut f = EulerTourForest::<S>::new(7);
        for v in 0..7 {
            f.set_weight(v, 10 * v as i64);
        }
        // path 0-1-2-3 plus a branch 1-4-5, isolated 6
        for (u, v) in [(0, 1), (1, 2), (2, 3), (1, 4), (4, 5)] {
            assert!(f.link(u, v));
        }
        let a = f.path_aggregate(0, 3).unwrap();
        assert_eq!(a.sum, 10 + 20 + 30);
        assert_eq!(a.edges, 3);
        assert_eq!(a.count, 4);
        let b = f.path_aggregate(3, 5).unwrap();
        assert_eq!(b.sum, 30 + 20 + 10 + 40 + 50);
        assert_eq!(b.max, 50);
        assert_eq!(f.path_sum(2, 2), Some(20));
        assert!(f.path_aggregate(0, 6).is_none(), "disconnected");
        // the walk must not disturb the tour
        assert!(f.cut(1, 2));
        assert!(f.path_aggregate(0, 3).is_none());
        assert_eq!(f.path_sum(0, 4), Some(10 + 40));
    }

    #[test]
    fn treap_basic() {
        basic_ops::<TreapSequence>();
    }

    #[test]
    fn splay_basic() {
        basic_ops::<SplaySequence>();
    }

    #[test]
    fn treap_subtree() {
        subtree_queries::<TreapSequence>();
    }

    #[test]
    fn splay_subtree() {
        subtree_queries::<SplaySequence>();
    }

    #[test]
    fn treap_weights() {
        weights_update::<TreapSequence>();
    }

    #[test]
    fn splay_weights() {
        weights_update::<SplaySequence>();
    }

    #[test]
    fn treap_path_fallback() {
        path_fallback::<TreapSequence>();
    }

    #[test]
    fn splay_path_fallback() {
        path_fallback::<SplaySequence>();
    }

    fn star_teardown_keeps_adjacency_consistent<S: DynSequence>() {
        // hub with many leaves: every cut must find and remove the hub's
        // adjacency entry by binary search on the sorted neighbour array,
        // and the path fallback must stay correct as entries shift
        let n = 64;
        let mut f = EulerTourForest::<S>::new(n);
        for v in 1..n {
            f.set_weight(v, v as i64);
            assert!(f.link(0, v));
        }
        assert_eq!(f.path_sum(5, 9), Some(5 + 9));
        for v in (1..n).step_by(2) {
            assert!(f.cut(0, v));
        }
        for v in (2..n).step_by(2) {
            assert!(f.connected(0, v));
            assert_eq!(f.path_sum(v, 0), Some(v as i64));
        }
        assert_eq!(f.path_sum(4, 6), Some(4 + 6));
        assert!(f.path_aggregate(0, 1).is_none(), "odd leaves detached");
        assert_eq!(f.num_edges(), (n - 1) / 2);
    }

    fn component_apply_shifts_one_component<S: DynSequence>() {
        use dyntree_primitives::algebra::AddConst;
        let mut f = EulerTourForest::<S>::new(8);
        for v in 0..8 {
            f.set_weight(v, v as i64);
        }
        // components {0,1,2,3}, {4,5}, {6}, {7}
        for (u, v) in [(0, 1), (1, 2), (2, 3), (4, 5)] {
            assert!(f.link(u, v));
        }
        assert_eq!(f.component_apply(2, AddConst(100)), 4);
        assert_eq!(f.component_sum(0), 100 + 101 + 102 + 103);
        assert_eq!(f.component_sum(4), 4 + 5, "other components untouched");
        assert_eq!(f.weight(1), 101, "weight reads through the tour");
        assert_eq!(f.weight(4), 4);
        // the singleton case: the tag lands on a lone occurrence node
        assert_eq!(f.component_apply(6, AddConst(-6)), 1);
        assert_eq!(f.weight(6), 0);
        // arc (non-item) nodes stay identity: cut after a bulk apply and
        // re-check both halves against the eager expectation
        assert!(f.cut(1, 2));
        assert_eq!(f.component_sum(0), 100 + 101);
        assert_eq!(f.component_sum(3), 102 + 103);
        assert_eq!(f.subtree_sum(1, 0), Some(101));
        // path fallback reads acted weights
        assert_eq!(f.path_sum(2, 3), Some(102 + 103));
    }

    #[test]
    fn treap_component_apply() {
        component_apply_shifts_one_component::<TreapSequence>();
    }

    #[test]
    fn splay_component_apply() {
        component_apply_shifts_one_component::<SplaySequence>();
    }

    #[test]
    fn treap_star_teardown() {
        star_teardown_keeps_adjacency_consistent::<TreapSequence>();
    }

    #[test]
    fn splay_star_teardown() {
        star_teardown_keeps_adjacency_consistent::<SplaySequence>();
    }

    #[test]
    fn memory_is_accounted() {
        let f = EulerTourForest::<TreapSequence>::new(100);
        assert!(f.memory_bytes() > 100 * 8);
        assert_eq!(f.len(), 100);
        assert!(!f.is_empty());
    }
}
