//! Batch front-end for Euler tour trees.
//!
//! The paper's parallel ETT [Tseng et al. 2019] processes a batch of links or
//! cuts with a phase-concurrent skip list.  This front-end keeps the batch
//! *interface* (deduplicated, validated batches of links and cuts) and
//! parallelises the batch preparation (deduplication, validity filtering via
//! a union-find pre-pass) — real pool threads once a batch passes the
//! `worth_parallel` grain, with byte-identical output at every thread count —
//! while the tour splicing itself runs sequentially over the prepared batch.  `DESIGN.md` §5 records this substitution; the
//! batch benchmarks measure both this front-end and the UFO batch updates the
//! same way (wall-clock per batch).

use dyntree_primitives::Dsu;
use dyntree_seqs::DynSequence;
use rayon::prelude::*;

use crate::EulerTourForest;

/// A batch-dynamic wrapper around [`EulerTourForest`].
#[derive(Clone, Debug)]
pub struct BatchEulerForest<S: DynSequence> {
    inner: EulerTourForest<S>,
}

impl<S: DynSequence> BatchEulerForest<S> {
    /// Creates a forest of `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            inner: EulerTourForest::new(n),
        }
    }

    /// Appends isolated vertices until the forest has `n` of them.
    pub fn ensure_vertices(&mut self, n: usize) {
        self.inner.ensure_vertices(n);
    }

    /// Shared access to the underlying forest.
    pub fn forest(&self) -> &EulerTourForest<S> {
        &self.inner
    }

    /// Mutable access to the underlying forest (for individual operations).
    pub fn forest_mut(&mut self) -> &mut EulerTourForest<S> {
        &mut self.inner
    }

    /// Applies a batch of edge insertions.  Edges that would create a cycle
    /// within the batch or with existing edges, duplicates and self-loops are
    /// skipped (the paper assumes batches are valid; we are defensive).
    /// Returns the number of edges actually inserted.
    pub fn batch_link(&mut self, edges: &[(usize, usize)]) -> usize {
        let cleaned = normalize_batch(edges);
        let mut applied = 0;
        for (u, v) in cleaned {
            if self.inner.link(u, v) {
                applied += 1;
            }
        }
        applied
    }

    /// Applies a batch of edge deletions.  Returns the number of edges
    /// actually removed.
    pub fn batch_cut(&mut self, edges: &[(usize, usize)]) -> usize {
        let cleaned = normalize_batch(edges);
        let mut applied = 0;
        for (u, v) in cleaned {
            if self.inner.cut(u, v) {
                applied += 1;
            }
        }
        applied
    }

    /// Answers a batch of connectivity queries.
    pub fn batch_connected(&mut self, queries: &[(usize, usize)]) -> Vec<bool> {
        queries
            .iter()
            .map(|&(u, v)| self.inner.connected(u, v))
            .collect()
    }

    /// Exact heap bytes owned by the structure.
    pub fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
}

/// Deduplicates a batch (in parallel for large batches) and canonicalises the
/// edge orientation.  Self loops are dropped.
fn normalize_batch(edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut cleaned: Vec<(usize, usize)> = if dyntree_primitives::worth_parallel(edges.len()) {
        edges
            .par_iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect()
    } else {
        edges
            .iter()
            .filter(|(u, v)| u != v)
            .map(|&(u, v)| (u.min(v), u.max(v)))
            .collect()
    };
    if dyntree_primitives::worth_parallel(cleaned.len()) {
        cleaned.par_sort_unstable();
    } else {
        cleaned.sort_unstable();
    }
    cleaned.dedup();
    cleaned
}

/// Filters a batch of candidate links down to a sub-batch that is acyclic with
/// respect to itself (utility shared with the benchmark harness so every
/// structure receives identical valid batches).
pub fn acyclic_sub_batch(n: usize, edges: &[(usize, usize)]) -> Vec<(usize, usize)> {
    let mut dsu = Dsu::new(n);
    edges
        .iter()
        .copied()
        .filter(|&(u, v)| u != v && dsu.union(u, v))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyntree_seqs::TreapSequence;

    #[test]
    fn batch_link_and_cut_roundtrip() {
        let n = 200;
        let mut f = BatchEulerForest::<TreapSequence>::new(n);
        let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
        assert_eq!(f.batch_link(&edges), n - 1);
        assert!(f.forest_mut().connected(0, n - 1));
        // delete every other edge
        let half: Vec<(usize, usize)> = edges.iter().copied().step_by(2).collect();
        assert_eq!(f.batch_cut(&half), half.len());
        assert!(!f.forest_mut().connected(0, n - 1));
        assert_eq!(f.forest().num_edges(), n - 1 - half.len());
    }

    #[test]
    fn batch_link_skips_duplicates_and_cycles() {
        let mut f = BatchEulerForest::<TreapSequence>::new(4);
        let applied = f.batch_link(&[(0, 1), (1, 0), (1, 2), (2, 0), (3, 3)]);
        // (1,0) duplicates (0,1); (2,0) closes a cycle; (3,3) is a self loop
        assert_eq!(applied, 2);
        assert_eq!(f.forest().num_edges(), 2);
    }

    #[test]
    fn batch_connectivity_queries() {
        let mut f = BatchEulerForest::<TreapSequence>::new(6);
        f.batch_link(&[(0, 1), (1, 2), (4, 5)]);
        let answers = f.batch_connected(&[(0, 2), (0, 4), (4, 5), (3, 3)]);
        assert_eq!(answers, vec![true, false, true, true]);
    }

    #[test]
    fn acyclic_sub_batch_filters_cycles() {
        let batch = vec![(0, 1), (1, 2), (2, 0), (3, 4)];
        let cleaned = acyclic_sub_batch(5, &batch);
        assert_eq!(cleaned, vec![(0, 1), (1, 2), (3, 4)]);
    }
}
