//! Euler tour trees (ETT) over a pluggable sequence backend.
//!
//! The Euler tour of each tree in the forest is stored in a
//! [`DynSequence`](dyntree_seqs::DynSequence); linking splices tours
//! together, cutting splits the tour
//! around the two arcs of the removed edge.  ETTs support connectivity and
//! subtree queries — but, as the paper stresses, not path queries — and are
//! the fastest parallel batch-dynamic baseline in the paper's evaluation.
//!
//! The backends mirror the paper's sequential ETT variants:
//! [`TreapEulerForest`] and [`SplayEulerForest`] (the treap variant doubles as
//! the stand-in for the skip-list variant; see `DESIGN.md` §5).

pub mod batch;
pub mod forest;

pub use batch::BatchEulerForest;
pub use forest::EulerTourForest;

use dyntree_seqs::{SplaySequence, TreapSequence};

/// Euler tour forest over a treap sequence ("ETT (Treap)" in the paper).
pub type TreapEulerForest = EulerTourForest<TreapSequence>;

/// Euler tour forest over a splay-tree sequence ("ETT (Splay Tree)").
pub type SplayEulerForest = EulerTourForest<SplaySequence>;
