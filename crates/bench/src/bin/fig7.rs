//! Figure 7: memory usage after building an n-vertex tree, per structure and
//! synthetic input family.
use dyntree_bench::{build_memory, default_n, Structure};
use dyntree_workloads::SyntheticTree;

fn main() {
    let n = default_n();
    println!(
        "Figure 7 — memory usage after build, n = {} (scale = {})\n",
        n,
        dyntree_bench::scale()
    );
    print!("{:<10}", "input");
    for s in Structure::ALL {
        print!(" {:>14?}", s);
    }
    println!();
    for family in SyntheticTree::ALL {
        let forest = family.generate(n, 7);
        print!("{:<10}", family.label());
        for s in Structure::ALL {
            let bytes = build_memory(s, &forest);
            print!(" {:>13.1}MB", bytes as f64 / (1024.0 * 1024.0));
        }
        println!();
    }
}
