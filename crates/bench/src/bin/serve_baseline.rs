//! Measures the serving layer — writer apply+publish throughput vs the bare
//! engine, and reader query throughput at 1/2/8 reader threads under
//! continuous churn — and emits the baseline JSON stored at
//! `crates/bench/baselines/serve_throughput.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin serve_baseline`
//!
//! On a single-CPU host the reader rows measure OS interleaving rather than
//! parallel speedup (see `EXPERIMENTS.md`); the gate's wide tolerance plus
//! the median absorb the extra scheduling noise.

use dyntree_bench::baseline::serve_throughput_rows;

fn main() {
    print!("{}", serve_throughput_rows().to_json());
}
