//! Figure 9: scaling UFO-tree batch builds to large inputs (laptop-scaled from
//! the paper's billion-edge experiment).
use dyntree_workloads::{binary_tree, kary_tree, path_tree, star_tree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;
use ufo_forest::UfoForest;

fn main() {
    let max_n = match dyntree_bench::scale() {
        "large" => 2_000_000,
        "medium" => 500_000,
        _ => 100_000,
    };
    let batch = 50_000;
    println!(
        "Figure 9 — UFO batch build+destroy scaling, batch size = {} (scale = {})\n",
        batch,
        dyntree_bench::scale()
    );
    println!("{:<10} {:>10} {:>12}", "input", "n", "time (s)");
    let mut n = max_n / 16;
    while n <= max_n {
        for (label, forest) in [
            ("Path", path_tree(n)),
            ("Binary", binary_tree(n)),
            ("64-ary", kary_tree(n, 64)),
            ("Star", star_tree(n.min(20_000))),
        ] {
            let mut rng = StdRng::seed_from_u64(3);
            let mut edges = forest.edges.clone();
            edges.shuffle(&mut rng);
            let mut f: UfoForest = UfoForest::new(forest.n);
            let start = Instant::now();
            for chunk in edges.chunks(batch) {
                f.batch_link(chunk);
            }
            for chunk in edges.chunks(batch) {
                f.batch_cut(chunk);
            }
            println!(
                "{:<10} {:>10} {:>12.3}",
                label,
                forest.n,
                start.elapsed().as_secs_f64()
            );
        }
        n *= 4;
    }
}
