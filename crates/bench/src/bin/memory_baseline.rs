//! Measures heap bytes per live edge at the peak-load point of the two
//! 64k-op scaling traces for every connectivity backend and emits the
//! baseline JSON stored at `crates/bench/baselines/memory_usage.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin memory_baseline`
//!
//! Unlike the throughput recorders this needs no repetitions or a warm
//! machine: `memory_breakdown()` is exact and the traces are deterministic,
//! so the recorded cells are bit-stable across runs and hosts of the same
//! pointer width.

use dyntree_bench::baseline::memory_usage_rows;

fn main() {
    print!("{}", memory_usage_rows().to_json());
}
