//! Measures `apply` throughput on the 64k-op insert/delete trace at
//! effective pool widths 1/2/4/8 and emits the baseline JSON stored at
//! `crates/bench/baselines/parallel_scaling.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin parallel_scaling_baseline`
//!
//! All widths share one 8-worker pool; the per-measurement cap comes from
//! `ParallelConfig::with_threads`, so the numbers isolate fan-out from pool
//! start-up.  Note that speedup beyond width 1 requires real cores: on a
//! single-CPU host every width records parity (see `EXPERIMENTS.md`).

use dyntree_bench::baseline::parallel_scaling_rows;

fn main() {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build_global();
    print!("{}", parallel_scaling_rows().to_json());
}
