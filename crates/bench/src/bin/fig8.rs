//! Figure 8: batch-dynamic update speed.  Every batch structure ingests the
//! same random batches of insertions followed by batches of deletions.
use dyntree_euler::BatchEulerForest;
use dyntree_seqs::TreapSequence;
use dyntree_workloads::{bfs_forest, power_law_graph, road_grid_graph, SyntheticTree};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;
use ufo_forest::{TopologyForest, UfoForest};

fn batch_time_ufo(n: usize, batches: &[Vec<(usize, usize)>]) -> f64 {
    let mut f: UfoForest = UfoForest::new(n);
    let start = Instant::now();
    for b in batches {
        f.batch_link(b);
    }
    for b in batches {
        f.batch_cut(b);
    }
    start.elapsed().as_secs_f64()
}

fn batch_time_ett(n: usize, batches: &[Vec<(usize, usize)>]) -> f64 {
    let mut f = BatchEulerForest::<TreapSequence>::new(n);
    let start = Instant::now();
    for b in batches {
        f.batch_link(b);
    }
    for b in batches {
        f.batch_cut(b);
    }
    start.elapsed().as_secs_f64()
}

fn batch_time_topology(n: usize, batches: &[Vec<(usize, usize)>]) -> f64 {
    let mut f: TopologyForest = TopologyForest::new(n);
    let start = Instant::now();
    for b in batches {
        for &(u, v) in b {
            f.link(u, v);
        }
    }
    for b in batches {
        for &(u, v) in b {
            f.cut(u, v);
        }
    }
    start.elapsed().as_secs_f64()
}

fn run(label: &str, n: usize, edges: &[(usize, usize)], batch_size: usize) {
    let mut rng = StdRng::seed_from_u64(17);
    let mut shuffled = edges.to_vec();
    shuffled.shuffle(&mut rng);
    let batches: Vec<Vec<(usize, usize)>> =
        shuffled.chunks(batch_size).map(|c| c.to_vec()).collect();
    println!(
        "{:<12} ETT(batch)={:>8.3}s  UFO(batch)={:>8.3}s  Topology={:>8.3}s",
        label,
        batch_time_ett(n, &batches),
        batch_time_ufo(n, &batches),
        batch_time_topology(n, &batches),
    );
}

fn main() {
    let n = dyntree_bench::default_n();
    let batch_size = (n / 10).max(1_000);
    println!(
        "Figure 8 — batch-dynamic update speed, n = {}, batch size = {} (scale = {})\n",
        n,
        batch_size,
        dyntree_bench::scale()
    );
    for family in SyntheticTree::ALL {
        let n_eff = match family {
            SyntheticTree::Star | SyntheticTree::Dandelion => n.min(20_000),
            _ => n,
        };
        let forest = family.generate(n_eff, 7);
        run(
            family.label(),
            forest.n,
            &forest.edges,
            batch_size.min(forest.edges.len().max(1)),
        );
    }
    println!("\n-- real-world stand-ins --");
    let side = (n as f64).sqrt() as usize;
    let road = road_grid_graph(side, 1);
    let web = power_law_graph(((n as f64).log2()) as u32, 8, 2);
    for g in [&road, &web] {
        let f = bfs_forest(g, 3);
        run(&format!("{}-BFS", g.name), f.n, &f.edges, batch_size);
    }
}
