//! Figure 16 (Appendix D.3): the diameter sweep for the batch-dynamic
//! structures.
use dyntree_euler::BatchEulerForest;
use dyntree_seqs::TreapSequence;
use dyntree_workloads::zipf_tree;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::Instant;
use ufo_forest::{TopologyForest, UfoForest};

fn main() {
    let n = dyntree_bench::default_n();
    let batch = (n / 10).max(1_000);
    println!(
        "Figure 16 — batch-dynamic diameter sweep, n = {}, batch = {} (scale = {})\n",
        n,
        batch,
        dyntree_bench::scale()
    );
    for alpha in [0.0, 1.0, 2.0, 3.0, 4.0] {
        let forest = zipf_tree(n, alpha, 11);
        let mut rng = StdRng::seed_from_u64(13);
        let mut edges = forest.edges.clone();
        edges.shuffle(&mut rng);
        let batches: Vec<Vec<(usize, usize)>> = edges.chunks(batch).map(|c| c.to_vec()).collect();

        let mut ufo: UfoForest = UfoForest::new(n);
        let t0 = Instant::now();
        for b in &batches {
            ufo.batch_link(b);
        }
        for b in &batches {
            ufo.batch_cut(b);
        }
        let ufo_t = t0.elapsed().as_secs_f64();

        let mut ett = BatchEulerForest::<TreapSequence>::new(n);
        let t1 = Instant::now();
        for b in &batches {
            ett.batch_link(b);
        }
        for b in &batches {
            ett.batch_cut(b);
        }
        let ett_t = t1.elapsed().as_secs_f64();

        let mut topo: TopologyForest = TopologyForest::new(n);
        let t2 = Instant::now();
        for b in &batches {
            for &(u, v) in b {
                topo.link(u, v);
            }
        }
        for b in &batches {
            for &(u, v) in b {
                topo.cut(u, v);
            }
        }
        let topo_t = t2.elapsed().as_secs_f64();

        println!(
            "alpha={:<4} D={:<8} ETT={:>8.3}s  UFO={:>8.3}s  Topology={:>8.3}s",
            alpha,
            forest.diameter(),
            ett_t,
            ufo_t,
            topo_t
        );
    }
}
