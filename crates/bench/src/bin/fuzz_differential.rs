//! Differential fuzz harness for the batch-dynamic connectivity engine.
//!
//! Replays [`FuzzTraceGen`] traces — adversarial star/chain/clique bursts,
//! mixed churn, delete-heavy teardown phases, and a small-universe
//! level-churn profile (dense cliques whose repeated tree deletions drive
//! HDT edge levels up between delete bursts), invalid ops included —
//! through `DynConnectivity::apply` on the ufo, link-cut, Euler-tour and
//! naive backends, and diffs the **full `BatchReport` renderings** between
//! all of them, against a one-op-at-a-time naive-oracle replay, and (for the
//! snapshot-capable ufo backend) between the sequential and a forced-wide
//! parallel configuration.  Every replay also asserts the engine's full
//! invariant set — the HDT level invariant included — after every batch
//! (strided for the singleton-batch oracle, which would otherwise check
//! quadratically), so structural damage is caught at the batch that caused
//! it even when no later op would have turned it into a divergent answer.
//! Any divergence prints the reproducing seed and the first differing
//! operation, then exits non-zero.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin fuzz_differential
//! -- [--seeds 32] [--ops 20000] [--start-seed 1] [--batch 1024]
//! [--vertices 96] [--telemetry] [--semantic]`
//!
//! Two comparison strengths back the engine's two determinism contracts:
//! byte-identical `BatchReport` renderings for the default configs, and a
//! **semantic** comparison — per-op outcome categories and split flags, the
//! final component partition, the live-edge registry, and the structural
//! counter family — for configs where byte-identity is not contracted.  The
//! rebuild-escape-hatch config (`with_rebuild_threshold`) rides every sweep
//! under the semantic contract; `--semantic` downgrades the whole sweep to
//! it (useful when bisecting a divergence to byte-level vs semantic).
//!
//! `--telemetry` (needs the `telemetry` cargo feature) attaches an enabled
//! telemetry handle to every replay and dumps each backend's counter
//! fingerprint when a seed diverges, so a failing seed ships its phase
//! fingerprint in the report.  The timing half of the snapshot is stripped
//! from the rendered `BatchReport`s either way — byte-comparability across
//! configs is the whole point of this harness.
//!
//! CI runs the default 32 seeds × 20 000 ops on every thread-matrix leg
//! (`DYNTREE_THREADS` ∈ {1, 2, 8}), so the whole scenario space is checked
//! at several pool widths per push.

use dyntree_connectivity::{DynConnectivity, SpanningBackend};
use dyntree_naive::NaiveForest;
use dyntree_primitives::algebra::SumMinMax;
use dyntree_primitives::ops::{GraphOp, OpOutcome};
use dyntree_primitives::{ParallelConfig, Telemetry};
use dyntree_seqs::TreapSequence;
use dyntree_workloads::FuzzTraceGen;

/// Everything one replay produces that another replay must reproduce.
struct Run {
    /// Full `BatchReport` Debug renderings, one per applied batch.
    reports: Vec<String>,
    /// Per-op outcomes, flattened across batches (comparable against the
    /// singleton oracle, whose batches are all of size one).
    outcomes: Vec<OpOutcome>,
    components: usize,
    edges: usize,
    /// Final vertex count.
    vertices: usize,
    /// Sorted live edge registry (every `(u, v)` with `u < v` still alive).
    live_edges: Vec<(usize, usize)>,
    /// Canonical component partition: the smallest member of each vertex's
    /// component, derived from `live_edges` with a scratch union-find.
    partition: Vec<usize>,
    invariant_error: Option<String>,
    /// Counter fingerprint of the replay (`--telemetry` + feature only).
    counters: Option<String>,
    /// The structural counter family contracted even under the relaxed
    /// canonical-outcome path: splits are a property of the live graph, not
    /// of which replacement edges a search happened to promote.
    component_splits: Option<u64>,
}

/// Canonical partition over `0..n` from a live edge set: each vertex maps
/// to the smallest vertex id in its component.
fn partition_of(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut parent: Vec<usize> = (0..n).collect();
    for &(u, v) in edges {
        let (a, b) = (find(&mut parent, u), find(&mut parent, v));
        if a != b {
            // union-by-min keeps the root the smallest member
            parent[a.max(b)] = a.min(b);
        }
    }
    (0..n).map(|v| find(&mut parent, v)).collect()
}

fn replay<B: SpanningBackend<Weights = SumMinMax>>(
    batches: &[Vec<GraphOp>],
    cfg: ParallelConfig,
    telemetry: bool,
) -> Run {
    let mut g: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(cfg);
    if telemetry {
        g.set_telemetry(Telemetry::enabled());
    }
    let mut reports = Vec::with_capacity(batches.len());
    let mut outcomes = Vec::new();
    let mut invariant_error = None;
    // The invariants — the HDT level invariant included — must hold after
    // *every* real batch, not just at trace end: a rebuild can leave damage
    // that only a later targeted delete turns into a wrong answer, and the
    // end-state comparison alone would miss it.  The oracle replays
    // singleton batches, where a per-batch check would make the sweep
    // quadratic — checking every `stride` batches bounds the replay at
    // ~256 invariant passes while still checking real batches one by one.
    let stride = batches.len().div_ceil(256);
    for (bi, batch) in batches.iter().enumerate() {
        let mut report = g.apply(batch);
        // strip the timing half before rendering: nanos are never
        // byte-comparable, and this harness diffs renderings
        report.telemetry = None;
        outcomes.extend(report.outcomes.iter().copied());
        reports.push(format!("{report:?}"));
        if invariant_error.is_none() && (bi % stride == 0 || bi + 1 == batches.len()) {
            if let Err(e) = g.check_invariants() {
                invariant_error = Some(format!("after batch {bi}: {e}"));
            }
        }
    }
    let n = g.len();
    let mut live_edges = Vec::new();
    for u in 0..n {
        for v in u + 1..n {
            if g.has_edge(u, v) {
                live_edges.push((u, v));
            }
        }
    }
    let partition = partition_of(n, &live_edges);
    Run {
        reports,
        outcomes,
        components: g.component_count(),
        edges: g.num_edges(),
        vertices: n,
        live_edges,
        partition,
        invariant_error,
        counters: g.telemetry_snapshot().map(|s| s.counters_fingerprint()),
        component_splits: g
            .telemetry_snapshot()
            .map(|s| s.counter("component_splits")),
    }
}

/// The ground truth: the naive backend fed one op at a time.
fn oracle(batches: &[Vec<GraphOp>], telemetry: bool) -> Run {
    let singletons: Vec<Vec<GraphOp>> = batches.iter().flatten().map(|&op| vec![op]).collect();
    replay::<NaiveForest>(&singletons, ParallelConfig::sequential(), telemetry)
}

/// Reports the first divergence between two runs; `true` when they agree.
/// `reports_comparable` is false against the oracle, whose batch boundaries
/// (all singletons) legitimately differ.
fn diff(
    seed: u64,
    name: &str,
    reference: &str,
    a: &Run,
    b: &Run,
    reports_comparable: bool,
) -> bool {
    let mut ok = true;
    if let Some(err) = &a.invariant_error {
        println!("seed {seed}: [{name}] invariant violation: {err}");
        ok = false;
    }
    if a.outcomes != b.outcomes {
        let at = a
            .outcomes
            .iter()
            .zip(&b.outcomes)
            .position(|(x, y)| x != y)
            .unwrap_or(a.outcomes.len().min(b.outcomes.len()));
        println!(
            "seed {seed}: [{name}] outcome diverges from [{reference}] at op {at}: {:?} vs {:?}",
            a.outcomes.get(at),
            b.outcomes.get(at),
        );
        ok = false;
    }
    if reports_comparable && a.reports != b.reports {
        let at = a
            .reports
            .iter()
            .zip(&b.reports)
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        println!(
            "seed {seed}: [{name}] BatchReport rendering diverges from [{reference}] at batch {at}:\n  {}\n  {}",
            a.reports.get(at).map_or("<none>", |s| s.as_str()),
            b.reports.get(at).map_or("<none>", |s| s.as_str()),
        );
        ok = false;
    }
    if (a.components, a.edges) != (b.components, b.edges) {
        println!(
            "seed {seed}: [{name}] final state ({} components, {} edges) != [{reference}] ({}, {})",
            a.components, a.edges, b.components, b.edges
        );
        ok = false;
    }
    ok
}

/// The relaxed canonical-outcome comparison, for configs where byte-identity
/// is **not** contracted (the rebuild escape hatch, or everything under
/// `--semantic`): per-op outcome *categories* and split flags, the final
/// component partition, the live-edge registry, and the structural counter
/// family must agree; replacement choices (edge kinds, probe/bump counters)
/// may differ.
fn semantic_diff(seed: u64, name: &str, reference: &str, a: &Run, b: &Run) -> bool {
    let mut ok = true;
    if let Some(err) = &a.invariant_error {
        println!("seed {seed}: [{name}] invariant violation: {err}");
        ok = false;
    }
    let category_eq = |x: &OpOutcome, y: &OpOutcome| match (x, y) {
        // kinds are forest-relative: after a rebuild the runs keep
        // different (equally valid) spanning forests.  Splits are not —
        // a bridge is a tree edge in every spanning forest.
        (OpOutcome::EdgeDeleted { split: sa, .. }, OpOutcome::EdgeDeleted { split: sb, .. }) => {
            sa == sb
        }
        _ => x == y,
    };
    if a.outcomes.len() != b.outcomes.len()
        || !a
            .outcomes
            .iter()
            .zip(&b.outcomes)
            .all(|(x, y)| category_eq(x, y))
    {
        let at = a
            .outcomes
            .iter()
            .zip(&b.outcomes)
            .position(|(x, y)| !category_eq(x, y))
            .unwrap_or(a.outcomes.len().min(b.outcomes.len()));
        println!(
            "seed {seed}: [{name}] outcome category diverges from [{reference}] at op {at}: \
             {:?} vs {:?}",
            a.outcomes.get(at),
            b.outcomes.get(at),
        );
        ok = false;
    }
    if (a.vertices, a.components, a.edges) != (b.vertices, b.components, b.edges) {
        println!(
            "seed {seed}: [{name}] final state ({} vertices, {} components, {} edges) != \
             [{reference}] ({}, {}, {})",
            a.vertices, a.components, a.edges, b.vertices, b.components, b.edges
        );
        ok = false;
    }
    if a.live_edges != b.live_edges {
        let at = a
            .live_edges
            .iter()
            .zip(&b.live_edges)
            .position(|(x, y)| x != y)
            .unwrap_or(a.live_edges.len().min(b.live_edges.len()));
        println!(
            "seed {seed}: [{name}] live-edge registry diverges from [{reference}] at entry \
             {at}: {:?} vs {:?}",
            a.live_edges.get(at),
            b.live_edges.get(at),
        );
        ok = false;
    }
    if a.partition != b.partition {
        let at = a
            .partition
            .iter()
            .zip(&b.partition)
            .position(|(x, y)| x != y)
            .unwrap_or(0);
        println!(
            "seed {seed}: [{name}] component partition diverges from [{reference}] at vertex \
             {at}: rep {:?} vs {:?}",
            a.partition.get(at),
            b.partition.get(at),
        );
        ok = false;
    }
    if let (Some(x), Some(y)) = (a.component_splits, b.component_splits) {
        if x != y {
            println!("seed {seed}: [{name}] component_splits counter {x} != [{reference}] {y}");
            ok = false;
        }
    }
    ok
}

/// Structural-only agreement: a backend that *declines* bulk weight ops
/// must still keep the identical graph (bulk ops never touch structure).
/// Outcomes are not compared — the whole point is that they differ
/// (`Rejected(UnsupportedQuery)` vs `PathApplied`/`ComponentApplied`).
fn structural_diff(seed: u64, name: &str, reference: &str, a: &Run, b: &Run) -> bool {
    let mut ok = true;
    if let Some(err) = &a.invariant_error {
        println!("seed {seed}: [{name}] invariant violation: {err}");
        ok = false;
    }
    if (a.vertices, a.components, a.edges) != (b.vertices, b.components, b.edges) {
        println!(
            "seed {seed}: [{name}] final state ({} vertices, {} components, {} edges) != \
             [{reference}] ({}, {}, {})",
            a.vertices, a.components, a.edges, b.vertices, b.components, b.edges
        );
        ok = false;
    }
    if a.live_edges != b.live_edges || a.partition != b.partition {
        println!(
            "seed {seed}: [{name}] live-edge registry / partition diverges from [{reference}]"
        );
        ok = false;
    }
    ok
}

/// The lazy-action differential: traces seeded with bulk weight ops,
/// checked against the one-op-at-a-time naive replay (an *eager* re-fold
/// oracle — it rewrites every touched weight at apply time, while the lazy
/// backends park a pending action and push it down on access).
///
/// Three traces per seed, because backends differ in what they support:
///
/// * **path trace** (`PathApply` only): link-cut — the lazy path backend —
///   at three parallel configs plus batched naive, all byte-identical and
///   outcome-identical to the oracle.  `PathApplied { count }` is
///   comparable across backends because the *engine* owns every tree/non-
///   tree decision, so all backends maintain the same spanning forest.
/// * **component trace** (`ComponentApply` only): Euler-tour (lazy subtree
///   tags) plus batched naive against the oracle.
/// * **mixed trace** (both): batched naive vs the oracle — pins that bulk
///   outcomes are independent of batch boundaries.
///
/// The ufo backend replays the path and component traces too, held to the
/// structural contract only: it declines every bulk op yet must end with
/// the identical graph.  Always byte-strict, even under `--semantic` —
/// bulk ops are applied sequentially in op order, so there is no config
/// where byte-identity is not contracted.
fn bulk_leg(
    seed: u64,
    ops: usize,
    batch: usize,
    vertices: usize,
    telemetry: bool,
    wide: ParallelConfig,
) -> bool {
    let mut ok = true;

    let path_batches = FuzzTraceGen::new(seed ^ 0xB117C)
        .with_ops(ops)
        .with_vertices(vertices)
        .with_bulk_applies(0.04, 0.0)
        .batches(batch);
    let truth = oracle(&path_batches, telemetry);
    if let Some(err) = &truth.invariant_error {
        println!("seed {seed}: [bulk-path oracle] invariant violation: {err}");
        ok = false;
    }
    let runs = [
        (
            "bulk-path linkcut",
            replay::<dyntree_linkcut::LinkCutForest>(
                &path_batches,
                ParallelConfig::default(),
                telemetry,
            ),
        ),
        (
            "bulk-path linkcut-seq",
            replay::<dyntree_linkcut::LinkCutForest>(
                &path_batches,
                ParallelConfig::sequential(),
                telemetry,
            ),
        ),
        (
            "bulk-path linkcut-wide",
            replay::<dyntree_linkcut::LinkCutForest>(&path_batches, wide, telemetry),
        ),
        (
            "bulk-path naive",
            replay::<NaiveForest>(&path_batches, ParallelConfig::default(), telemetry),
        ),
    ];
    for (name, run) in &runs {
        ok &= diff(seed, name, runs[0].0, run, &runs[0].1, true);
        ok &= diff(seed, name, "oracle", run, &truth, false);
    }
    let ufo = replay::<ufo_forest::UfoForest>(&path_batches, ParallelConfig::default(), telemetry);
    ok &= structural_diff(seed, "bulk-path ufo", "oracle", &ufo, &truth);

    let comp_batches = FuzzTraceGen::new(seed ^ 0xC03B47)
        .with_ops(ops)
        .with_vertices(vertices)
        .with_bulk_applies(0.0, 0.03)
        .batches(batch);
    let truth = oracle(&comp_batches, telemetry);
    if let Some(err) = &truth.invariant_error {
        println!("seed {seed}: [bulk-comp oracle] invariant violation: {err}");
        ok = false;
    }
    let runs = [
        (
            "bulk-comp euler-treap",
            replay::<dyntree_euler::EulerTourForest<TreapSequence>>(
                &comp_batches,
                ParallelConfig::default(),
                telemetry,
            ),
        ),
        (
            "bulk-comp euler-treap-wide",
            replay::<dyntree_euler::EulerTourForest<TreapSequence>>(&comp_batches, wide, telemetry),
        ),
        (
            "bulk-comp naive",
            replay::<NaiveForest>(&comp_batches, ParallelConfig::default(), telemetry),
        ),
    ];
    for (name, run) in &runs {
        ok &= diff(seed, name, runs[0].0, run, &runs[0].1, true);
        ok &= diff(seed, name, "oracle", run, &truth, false);
    }
    let ufo = replay::<ufo_forest::UfoForest>(&comp_batches, ParallelConfig::default(), telemetry);
    ok &= structural_diff(seed, "bulk-comp ufo", "oracle", &ufo, &truth);

    let mixed_batches = FuzzTraceGen::new(seed ^ 0x3D1F05)
        .with_ops(ops)
        .with_vertices(vertices)
        .with_bulk_applies(0.02, 0.02)
        .batches(batch);
    let truth = oracle(&mixed_batches, telemetry);
    let naive = replay::<NaiveForest>(&mixed_batches, ParallelConfig::default(), telemetry);
    ok &= diff(seed, "bulk-mixed naive", "oracle", &naive, &truth, false);

    ok
}

fn main() {
    let mut seeds = 32u64;
    let mut ops = 20_000usize;
    let mut start_seed = 1u64;
    let mut batch = 1_024usize;
    let mut vertices = 96usize;
    let mut telemetry = false;
    let mut semantic = false;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = grab("--seeds").parse().expect("--seeds: u64"),
            "--ops" => ops = grab("--ops").parse().expect("--ops: usize"),
            "--start-seed" => start_seed = grab("--start-seed").parse().expect("--start-seed: u64"),
            "--batch" => batch = grab("--batch").parse().expect("--batch: usize"),
            "--vertices" => vertices = grab("--vertices").parse().expect("--vertices: usize"),
            "--telemetry" => telemetry = true,
            "--semantic" => semantic = true,
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: fuzz_differential [--seeds N] [--ops N] \
                     [--start-seed S] [--batch B] [--vertices V] [--telemetry] [--semantic]"
                );
                std::process::exit(2);
            }
        }
    }
    if telemetry && !Telemetry::enabled().is_enabled() {
        eprintln!(
            "warning: --telemetry requested but the `telemetry` cargo feature is not \
             compiled in; counter fingerprints will be absent"
        );
    }

    // A forced-wide config: the chunked delete/insert pre-passes engage on
    // every real batch regardless of pool width (chunks run inline on a
    // 1-thread pool, byte-identical by construction).
    let wide = ParallelConfig {
        threads: 8,
        batch_grain: 64,
        chunk_grain: 16,
        delete_grain: 32,
        ..ParallelConfig::default()
    };
    // The rebuild escape hatch armed at the recorded bench threshold (5 %)
    // over a *fine* delete grain: a grain of 32 would require 32 consecutive
    // deletes before the bulk path even engages, which interleaved traces
    // essentially never produce — the hatch would ride the sweep without
    // firing once.  This config trades byte-identity for the relaxed
    // canonical-outcome contract, so it is *always* compared semantically,
    // never byte-for-byte.
    let rebuild = ParallelConfig {
        delete_grain: 8,
        ..wide
    }
    .with_rebuild_threshold(5);

    println!(
        "fuzz_differential: {seeds} seeds x {ops} ops (start seed {start_seed}, batch {batch}, \
         {vertices} vertices, pool of {})",
        rayon::current_num_threads()
    );
    let mut divergences = 0usize;
    for seed in start_seed..start_seed + seeds {
        // alternating profiles: odd seeds delete-heavy, seeds ≡ 2 (mod 4)
        // level-churn (dense cliques over a 24-vertex universe, so repeated
        // tree deletions drive HDT levels up before the rebuild batches —
        // the composition that exposes level-invariant bugs in the hatch),
        // remaining seeds mixed churn
        let mut gen = FuzzTraceGen::new(seed)
            .with_ops(ops)
            .with_vertices(vertices);
        if seed % 2 == 1 {
            gen = gen.delete_heavy();
        } else if seed % 4 == 2 {
            gen = gen.with_vertices(24).with_max_vertices(24).level_churn();
        }
        let batches = gen.batches(batch);
        let truth = oracle(&batches, telemetry);
        let mut seed_ok = true;
        // the ground truth itself must be internally consistent, or every
        // comparison below is vacuous
        if let Some(err) = &truth.invariant_error {
            println!("seed {seed}: [oracle] invariant violation: {err}");
            seed_ok = false;
        }

        let runs = [
            (
                "ufo",
                replay::<ufo_forest::UfoForest>(&batches, ParallelConfig::default(), telemetry),
            ),
            (
                "ufo-seq",
                replay::<ufo_forest::UfoForest>(&batches, ParallelConfig::sequential(), telemetry),
            ),
            (
                "ufo-wide",
                replay::<ufo_forest::UfoForest>(&batches, wide, telemetry),
            ),
            (
                "linkcut",
                replay::<dyntree_linkcut::LinkCutForest>(
                    &batches,
                    ParallelConfig::default(),
                    telemetry,
                ),
            ),
            (
                "euler-treap",
                replay::<dyntree_euler::EulerTourForest<TreapSequence>>(
                    &batches,
                    ParallelConfig::default(),
                    telemetry,
                ),
            ),
            (
                "naive",
                replay::<NaiveForest>(&batches, ParallelConfig::default(), telemetry),
            ),
        ];
        for (name, run) in &runs {
            if semantic {
                // relaxed mode: categories + partition + registries only
                seed_ok &= semantic_diff(seed, name, "oracle", run, &truth);
                continue;
            }
            // identical batching across backends/configs: full BatchReport
            // renderings must be byte-identical to the first run's …
            seed_ok &= diff(seed, name, runs[0].0, run, &runs[0].1, true);
            // … and per-op outcomes + final state must match the oracle
            seed_ok &= diff(seed, name, "oracle", run, &truth, false);
        }
        // the rebuild-enabled config rides every sweep, held only to the
        // relaxed canonical-outcome contract
        let hatch = replay::<ufo_forest::UfoForest>(&batches, rebuild, telemetry);
        seed_ok &= semantic_diff(seed, "ufo-rebuild", "oracle", &hatch, &truth);
        // the lazy-action differential rides every sweep (byte-strict; see
        // `bulk_leg` for why `--semantic` does not relax it)
        seed_ok &= bulk_leg(seed, ops, batch, vertices, telemetry, wide);
        if seed_ok {
            println!(
                "seed {seed}: ok ({} ops, {} components, {} edges)",
                truth.outcomes.len(),
                truth.components,
                truth.edges
            );
        } else {
            divergences += 1;
            // a failing seed ships its counter fingerprints: which backend
            // drained/promoted/probed differently is usually the lead
            for (name, run) in &runs {
                if let Some(counters) = &run.counters {
                    println!("seed {seed}: [{name}] counters: {counters}");
                }
            }
            if let Some(counters) = &truth.counters {
                println!("seed {seed}: [oracle] counters: {counters}");
            }
            println!("seed {seed}: DIVERGED (reproduce with --start-seed {seed} --seeds 1)");
        }
    }
    if divergences > 0 {
        println!("fuzz_differential: FAILED — {divergences} diverging seed(s)");
        std::process::exit(1);
    }
    println!("fuzz_differential: zero divergences over {seeds} seeds x {ops} ops");
}
