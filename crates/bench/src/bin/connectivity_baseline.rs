//! Measures the connectivity subsystem's edge-stream throughput per backend
//! and emits the baseline JSON stored at
//! `crates/bench/baselines/connectivity_stream.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin connectivity_baseline`

use dyntree_bench::{
    connectivity_bench_streams, stream_batch_replay_time, stream_replay_time, ConnBackend,
};

fn main() {
    let streams = connectivity_bench_streams();

    println!("{{");
    println!("  \"workload\": \"connectivity_stream\",");
    println!("  \"unit\": \"ops_per_second\",");
    println!("  \"results\": [");
    let mut rows = Vec::new();
    for stream in &streams {
        let ops = stream.len() as f64;
        for backend in ConnBackend::ALL {
            // best of 3 to damp scheduler noise
            let seq = (0..3)
                .map(|_| stream_replay_time(backend, stream).0)
                .fold(f64::INFINITY, f64::min);
            let batch = (0..3)
                .map(|_| stream_batch_replay_time(backend, stream, 64).0)
                .fold(f64::INFINITY, f64::min);
            rows.push(format!(
                "    {{\"stream\": \"{}\", \"ops\": {}, \"backend\": \"{}\", \"seq_ops_per_s\": {:.0}, \"batch64_ops_per_s\": {:.0}}}",
                stream.name,
                stream.len(),
                backend.name(),
                ops / seq,
                ops / batch,
            ));
        }
    }
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
