//! Measures the connectivity subsystem's edge-stream throughput per backend
//! and emits the baseline JSON stored at
//! `crates/bench/baselines/connectivity_stream.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin connectivity_baseline`
//!
//! The row computation lives in [`dyntree_bench::baseline`], shared with the
//! `bench_gate` binary so the gate re-measures exactly what was recorded.

use dyntree_bench::baseline::connectivity_stream_rows;

fn main() {
    print!("{}", connectivity_stream_rows().to_json());
}
