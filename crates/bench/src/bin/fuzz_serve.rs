//! Linearizability-style differential for the serving layer.
//!
//! Per seed, a [`ServeMixGen`] workload runs live — one writer applying
//! batches through a `ServingEngine` while reader threads drain their query
//! streams concurrently, recording every `(epoch, query, answer)` triple —
//! and is then checked against a deterministic oracle: the writer trace
//! replayed batch-by-batch on a plain edge set + weight array, with one
//! frozen partition/size/aggregate table per epoch.  A read stamped epoch E
//! must equal the oracle replayed to exactly batch E, regardless of when
//! the scheduler actually ran it; the check is therefore timing-independent
//! even though the run itself is genuinely concurrent.
//!
//! After the concurrent phase, each seed also checks the final snapshot's
//! component partition against the oracle's (label↔representative
//! bijection), the pinned-reader contract at the oldest retained epoch, and
//! that evicted epochs surface as typed `EpochRetired` errors.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin fuzz_serve --
//! [--seeds 16] [--ops 20000] [--start-seed 1] [--batch 64] [--readers N]`
//!
//! Without `--readers`, every seed runs at reader counts 1, 2 and 8 — the
//! acceptance matrix.  Any divergence prints the reproducing seed and exits
//! non-zero.

use std::collections::{HashMap, HashSet};

use dyntree_primitives::algebra::{Agg, SumMinMax};
use dyntree_primitives::ops::GraphOp;
use dyntree_primitives::Dsu;
use dyntree_serve::{NaiveServingEngine, UfoServingEngine};
use dyntree_workloads::{ServeMixGen, ServeQuery};

/// Writer-trace replay on plain containers, mirroring the engine's
/// validation rules (independent of the serving crate's labels machinery).
///
/// `bulk` mirrors whether the backend under test supports `ComponentApply`
/// (ufo: no — the op is rejected and weights stay put; naive: yes).
/// `PathApply` never appears in serve traces: its touched set depends on
/// the engine's forest shape, which an edge-set replay cannot know.
#[derive(Default)]
struct Oracle {
    len: usize,
    edges: HashSet<(usize, usize)>,
    weights: Vec<i64>,
    bulk: bool,
}

/// Frozen per-epoch answers.
struct OracleEpoch {
    len: usize,
    rep: Vec<usize>,
    size: HashMap<usize, u64>,
    agg: HashMap<usize, Agg<SumMinMax>>,
}

impl Oracle {
    fn apply(&mut self, ops: &[GraphOp]) {
        for op in ops {
            match *op {
                GraphOp::AddVertices(c) => {
                    if let Some(t) = self.len.checked_add(c) {
                        self.len = t;
                        self.weights.resize(t, 0);
                    }
                }
                GraphOp::InsertEdge(u, v) => {
                    if u != v && u < self.len && v < self.len {
                        self.edges.insert((u.min(v), u.max(v)));
                    }
                }
                GraphOp::DeleteEdge(u, v) => {
                    if u != v && u < self.len && v < self.len {
                        self.edges.remove(&(u.min(v), u.max(v)));
                    }
                }
                GraphOp::SetWeight(v, w) => {
                    if v < self.len {
                        self.weights[v] = w;
                    }
                }
                GraphOp::ComponentApply(v, delta) => {
                    if self.bulk && v < self.len {
                        for x in self.component_of(v) {
                            self.weights[x] = self.weights[x].saturating_add(delta);
                        }
                    }
                }
                GraphOp::PathApply(..) => {}
            }
        }
    }

    /// BFS over the edge set: all vertices in `v`'s component.
    fn component_of(&self, v: usize) -> Vec<usize> {
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen = HashSet::from([v]);
        let mut queue = vec![v];
        let mut out = vec![v];
        while let Some(x) = queue.pop() {
            for &y in adj.get(&x).map_or(&[][..], |n| n) {
                if seen.insert(y) {
                    out.push(y);
                    queue.push(y);
                }
            }
        }
        out
    }

    fn freeze(&self) -> OracleEpoch {
        let mut dsu = Dsu::new(self.len);
        for &(u, v) in &self.edges {
            dsu.union(u, v);
        }
        let rep: Vec<usize> = (0..self.len).map(|v| dsu.find(v)).collect();
        let mut size: HashMap<usize, u64> = HashMap::new();
        let mut agg: HashMap<usize, Agg<SumMinMax>> = HashMap::new();
        for (v, &r) in rep.iter().enumerate() {
            *size.entry(r).or_insert(0) += 1;
            let slot = agg.entry(r).or_insert(Agg::IDENTITY);
            *slot = Agg::combine(*slot, Agg::vertex(self.weights[v]));
        }
        OracleEpoch {
            len: self.len,
            rep,
            size,
            agg,
        }
    }
}

impl OracleEpoch {
    fn connected(&self, u: usize, v: usize) -> bool {
        u < self.len && v < self.len && (u == v || self.rep[u] == self.rep[v])
    }
    fn component_size(&self, v: usize) -> u64 {
        if v < self.len {
            self.size[&self.rep[v]]
        } else {
            0
        }
    }
    fn component_agg(&self, v: usize) -> Option<Agg<SumMinMax>> {
        if v < self.len {
            Some(self.agg[&self.rep[v]])
        } else {
            None
        }
    }
}

/// One recorded reader answer.
enum Recorded {
    Bool(ServeQuery, u64, bool),
    Size(ServeQuery, u64, u64),
    Agg(ServeQuery, u64, Option<Agg<SumMinMax>>),
}

/// Validates a recorded answer against the oracle at its epoch; returns a
/// divergence description if they disagree.
fn check(epochs: &[OracleEpoch], rec: &Recorded) -> Option<String> {
    match *rec {
        Recorded::Bool(ServeQuery::Connected(u, v), e, got) => {
            let want = epochs[e as usize].connected(u, v);
            (got != want).then(|| format!("connected({u},{v}) @ epoch {e}: {got} vs {want}"))
        }
        Recorded::Size(ServeQuery::ComponentSize(v), e, got) => {
            let want = epochs[e as usize].component_size(v);
            (got != want).then(|| format!("component_size({v}) @ epoch {e}: {got} vs {want}"))
        }
        Recorded::Agg(ServeQuery::ComponentAgg(v), e, got) => {
            let want = epochs[e as usize].component_agg(v);
            (got != want).then(|| format!("component_agg({v}) @ epoch {e}: {got:?} vs {want:?}"))
        }
        _ => Some("recorded answer does not match its query kind".into()),
    }
}

/// Runs one seed at one reader count; returns divergence descriptions
/// (empty = the seed passed at this reader count).
fn run_seed(seed: u64, ops: usize, batch: usize, readers: usize) -> Vec<String> {
    let mix = ServeMixGen::new(seed)
        .with_ops(ops)
        .with_batch_size(batch)
        .with_readers(readers)
        .with_queries_per_reader(2_500)
        .with_component_applies(0.015)
        .generate();

    // the deterministic oracle: one frozen table per epoch.  The ufo
    // backend declines ComponentApply (typed rejection, weights untouched),
    // so the oracle replays with bulk=false.
    let mut oracle = Oracle::default();
    let mut epochs = vec![oracle.freeze()];
    for b in &mix.writer_batches {
        oracle.apply(b);
        epochs.push(oracle.freeze());
    }

    // the live run: writer + concurrent readers recording stamped answers
    let mut serving = UfoServingEngine::new(0);
    let handle = serving.reader();
    let mut shadow_drift = Vec::new();
    let recorded: Vec<Vec<Recorded>> = std::thread::scope(|scope| {
        let joins: Vec<_> = mix
            .reader_queries
            .iter()
            .map(|stream| {
                let mut reader = handle.clone();
                scope.spawn(move || {
                    stream
                        .iter()
                        .map(|&q| match q {
                            ServeQuery::Connected(u, v) => {
                                let a = reader.connected(u, v);
                                Recorded::Bool(q, a.epoch, a.value)
                            }
                            ServeQuery::ComponentSize(v) => {
                                let a = reader.component_size(v);
                                Recorded::Size(q, a.epoch, a.value)
                            }
                            ServeQuery::ComponentAgg(v) => {
                                let a = reader.component_agg(v);
                                Recorded::Agg(q, a.epoch, a.value)
                            }
                        })
                        .collect::<Vec<Recorded>>()
                })
            })
            .collect();
        for (i, b) in mix.writer_batches.iter().enumerate() {
            serving.apply(b);
            // release-mode counterpart of apply's debug cross-check: the
            // shadow weight table must match the backend after every batch
            if let Err(e) = serving.verify_shadow_weights() {
                shadow_drift.push(format!("after batch {i}: {e}"));
            }
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    let mut diverged = shadow_drift;
    for (r, stream) in recorded.iter().enumerate() {
        let mut last_epoch = 0u64;
        for rec in stream {
            if let Some(d) = check(&epochs, rec) {
                diverged.push(format!("reader {r}: {d}"));
                if diverged.len() > 4 {
                    return diverged; // enough to diagnose; stop flooding
                }
            }
            let e = match rec {
                Recorded::Bool(_, e, _) | Recorded::Size(_, e, _) | Recorded::Agg(_, e, _) => *e,
            };
            if e < last_epoch {
                diverged.push(format!("reader {r}: epoch regressed {last_epoch} -> {e}"));
            }
            last_epoch = e;
        }
    }

    // final snapshot: its labels must induce exactly the oracle's partition
    let final_epoch = serving.latest_epoch();
    if final_epoch != mix.writer_batches.len() as u64 {
        diverged.push(format!(
            "final epoch {final_epoch} != {} batches applied",
            mix.writer_batches.len()
        ));
        return diverged;
    }
    let mut reader = serving.reader();
    let snap = reader.snapshot();
    let truth = &epochs[final_epoch as usize];
    if snap.vertices != truth.len {
        diverged.push(format!(
            "final vertices {} vs oracle {}",
            snap.vertices, truth.len
        ));
    }
    let mut label_to_rep: HashMap<u32, usize> = HashMap::new();
    let mut rep_to_label: HashMap<usize, u32> = HashMap::new();
    for v in 0..truth.len {
        let Some(label) = snap.component_label(v) else {
            diverged.push(format!("final snapshot has no label for vertex {v}"));
            break;
        };
        let ok_a = *label_to_rep.entry(label).or_insert(truth.rep[v]) == truth.rep[v];
        let ok_b = *rep_to_label.entry(truth.rep[v]).or_insert(label) == label;
        if !(ok_a && ok_b) {
            diverged.push(format!(
                "final partition: vertex {v} label {label} breaks the label<->rep bijection"
            ));
            break;
        }
        if snap.component_size(v) != truth.component_size(v) {
            diverged.push(format!(
                "final component_size({v}): {} vs {}",
                snap.component_size(v),
                truth.component_size(v)
            ));
            break;
        }
    }

    // retention contract: the oldest retained epoch pins and answers its own
    // epoch's table; anything older is a typed refusal
    let oldest = serving.ring().oldest_retained();
    match reader.at(oldest) {
        Ok(pin) => {
            let t = &epochs[oldest as usize];
            for v in [0usize, 1, 7, t.len.saturating_sub(1)] {
                let got = pin.component_size(v).value;
                if got != t.component_size(v) {
                    diverged.push(format!(
                        "pinned @ {oldest}: component_size({v}) {got} vs {}",
                        t.component_size(v)
                    ));
                }
            }
        }
        Err(e) => diverged.push(format!("oldest retained epoch {oldest} refused: {e}")),
    }
    if oldest > 0 {
        if let Ok(pin) = reader.at(oldest - 1) {
            diverged.push(format!(
                "evicted epoch {} served (as epoch {})",
                oldest - 1,
                pin.epoch()
            ));
        }
    }
    if reader.at(final_epoch + 1).is_ok() {
        diverged.push("future epoch served".into());
    }
    diverged
}

/// Sequential differential over the naive backend, which *supports*
/// `ComponentApply` — so unlike the ufo leg, the batches actually mutate
/// weights in bulk and the serving layer's shadow-table refresh path runs
/// for real.  Replays the same writer trace batch-by-batch, verifying the
/// shadow table against the backend and the published epoch against the
/// bulk-aware oracle after every batch.
fn run_seed_naive_shadow(seed: u64, ops: usize, batch: usize) -> Vec<String> {
    let mix = ServeMixGen::new(seed)
        .with_ops(ops)
        .with_batch_size(batch)
        .with_component_applies(0.015)
        .generate();

    let mut oracle = Oracle {
        bulk: true,
        ..Oracle::default()
    };
    let mut serving = NaiveServingEngine::new(0);
    let mut reader = serving.reader();
    let mut diverged = Vec::new();
    for (i, b) in mix.writer_batches.iter().enumerate() {
        serving.apply(b);
        oracle.apply(b);
        if let Err(e) = serving.verify_shadow_weights() {
            diverged.push(format!("naive leg, after batch {i}: {e}"));
            return diverged;
        }
        let truth = oracle.freeze();
        let snap = reader.snapshot();
        if snap.vertices != truth.len {
            diverged.push(format!(
                "naive leg, epoch {}: vertices {} vs oracle {}",
                i + 1,
                snap.vertices,
                truth.len
            ));
            return diverged;
        }
        // spot-check a spread of vertices per epoch (full sweep would make
        // the leg quadratic in trace length)
        for v in [0usize, 3, 17, truth.len / 2, truth.len.saturating_sub(1)] {
            if v >= truth.len {
                continue;
            }
            let got = snap.component_agg(v);
            let want = truth.component_agg(v);
            if got != want {
                diverged.push(format!(
                    "naive leg, epoch {}: component_agg({v}) {got:?} vs {want:?}",
                    i + 1
                ));
                return diverged;
            }
            if snap.component_size(v) != truth.component_size(v) {
                diverged.push(format!(
                    "naive leg, epoch {}: component_size({v}) {} vs {}",
                    i + 1,
                    snap.component_size(v),
                    truth.component_size(v)
                ));
                return diverged;
            }
        }
    }
    diverged
}

fn main() {
    let mut seeds = 16u64;
    let mut ops = 20_000usize;
    let mut start_seed = 1u64;
    let mut batch = 64usize;
    let mut readers: Option<usize> = None;
    let mut args = std::env::args().skip(1);
    while let Some(flag) = args.next() {
        let mut grab = |what: &str| -> String {
            args.next()
                .unwrap_or_else(|| panic!("{what} needs a value"))
        };
        match flag.as_str() {
            "--seeds" => seeds = grab("--seeds").parse().expect("--seeds: u64"),
            "--ops" => ops = grab("--ops").parse().expect("--ops: usize"),
            "--start-seed" => start_seed = grab("--start-seed").parse().expect("--start-seed: u64"),
            "--batch" => batch = grab("--batch").parse().expect("--batch: usize"),
            "--readers" => readers = Some(grab("--readers").parse().expect("--readers: usize")),
            other => {
                eprintln!(
                    "unknown flag {other}\nusage: fuzz_serve [--seeds N] [--ops N] \
                     [--start-seed S] [--batch B] [--readers R]"
                );
                std::process::exit(2);
            }
        }
    }
    let reader_counts: Vec<usize> = readers.map_or_else(|| vec![1, 2, 8], |r| vec![r]);
    println!(
        "fuzz_serve: {seeds} seeds x {ops} ops (start seed {start_seed}, batch {batch}, \
         readers {reader_counts:?})"
    );
    let mut divergences = 0usize;
    for seed in start_seed..start_seed + seeds {
        let mut seed_ok = true;
        for &r in &reader_counts {
            let diverged = run_seed(seed, ops, batch, r);
            for d in &diverged {
                println!("seed {seed} ({r} readers): {d}");
            }
            seed_ok &= diverged.is_empty();
        }
        let naive_diverged = run_seed_naive_shadow(seed, ops, batch);
        for d in &naive_diverged {
            println!("seed {seed} (naive shadow leg): {d}");
        }
        seed_ok &= naive_diverged.is_empty();
        if seed_ok {
            println!("seed {seed}: ok ({ops} ops, readers {reader_counts:?})");
        } else {
            divergences += 1;
            println!("seed {seed}: DIVERGED (reproduce with --start-seed {seed} --seeds 1)");
        }
    }
    if divergences > 0 {
        println!("fuzz_serve: FAILED — {divergences} diverging seed(s)");
        std::process::exit(1);
    }
    println!(
        "fuzz_serve: zero divergences over {seeds} seeds x {ops} ops x {} reader count(s)",
        reader_counts.len()
    );
}
