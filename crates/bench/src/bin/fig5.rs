//! Figure 5: sequential update speed (insert all edges then delete all edges,
//! both in random order) across synthetic trees and real-world-like spanning
//! forests, for every sequential structure.
use dyntree_bench::{build_destroy_time, default_n, Structure};
use dyntree_workloads::{bfs_forest, power_law_graph, ris_forest, road_grid_graph, SyntheticTree};

fn main() {
    let n = default_n();
    println!(
        "Figure 5 — sequential update speed, n = {} (scale = {})\n",
        n,
        dyntree_bench::scale()
    );
    println!("-- synthetic trees --");
    for family in SyntheticTree::ALL {
        // star-like inputs are scaled down: without the paper's rank-tree
        // optimisation, bulk deletions at very high fan-out are quadratic
        // (see EXPERIMENTS.md).
        let n_eff = match family {
            SyntheticTree::Star | SyntheticTree::Dandelion => n.min(20_000),
            _ => n,
        };
        let forest = family.generate(n_eff, 7);
        let cells: Vec<(String, f64)> = Structure::ALL
            .iter()
            .map(|s| {
                let t = build_destroy_time(*s, &forest, 13);
                (format!("{:?}", s), t)
            })
            .collect();
        dyntree_bench::print_row(family.label(), &cells);
    }
    println!("\n-- real-world stand-ins (BFS and RIS spanning forests) --");
    let side = (n as f64).sqrt() as usize;
    let graphs = vec![
        road_grid_graph(side, 1),
        power_law_graph(14.min(((n as f64).log2()) as u32), 8, 2),
    ];
    for g in &graphs {
        for (label, forest) in [
            (format!("{}-BFS", g.name), bfs_forest(g, 3)),
            (format!("{}-RIS", g.name), ris_forest(g, 3)),
        ] {
            let cells: Vec<(String, f64)> = Structure::ALL
                .iter()
                .map(|s| (format!("{:?}", s), build_destroy_time(*s, &forest, 13)))
                .collect();
            dyntree_bench::print_row(&label, &cells);
        }
    }
}
