//! Table 2: the (synthetic stand-in) graph datasets used by the real-world
//! experiments, with their sizes and the diameters of their BFS forests.
use dyntree_workloads::{
    bfs_forest, power_law_graph, road_grid_graph, social_rmat_graph, temporal_graph,
};

fn main() {
    let scale = dyntree_bench::scale();
    let (side, pl_scale, soc_scale, temporal_n) = match scale {
        "large" => (600, 17, 17, 300_000),
        "medium" => (300, 15, 15, 120_000),
        _ => (120, 13, 13, 40_000),
    };
    println!("Table 2 — real-world graph stand-ins (scale = {scale}); see DESIGN.md §5 for the substitution\n");
    println!(
        "{:<8} {:<10} {:>10} {:>12} {:>14}",
        "Name", "Type", "|V|", "|E|", "BFS diameter"
    );
    let graphs = vec![
        (road_grid_graph(side, 1), "Road"),
        (power_law_graph(pl_scale, 10, 2), "Web"),
        (temporal_graph(temporal_n, 4, 3), "Temporal"),
        (social_rmat_graph(soc_scale, 14, 4), "Social"),
    ];
    for (g, kind) in graphs {
        let f = bfs_forest(&g, 9);
        println!(
            "{:<8} {:<10} {:>10} {:>12} {:>14}",
            g.name,
            kind,
            g.n,
            g.edges.len(),
            f.diameter()
        );
    }
}
