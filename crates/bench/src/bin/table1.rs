//! Table 1: the operation/feature matrix of the implemented structures.
fn main() {
    println!("Table 1 — supported operations and costs (generated from the implemented structures)\n");
    println!("{}", ufo_trees_capabilities::render());
}
mod ufo_trees_capabilities {
    /// Renders the same matrix as `ufo_trees::capabilities::render_matrix`,
    /// re-stated here so the bench crate does not depend on the umbrella crate.
    pub fn render() -> String {
        let rows = [
            ("Link-cut tree", "O(min{log n, D^2})", "-", "-", "-", "-", "yes", "-"),
            ("Euler tour tree", "O(log n)", "-", "yes", "-", "yes", "-", "-"),
            ("Topology tree", "O(log n)", "yes", "yes", "yes", "yes", "yes", "yes"),
            ("UFO tree", "O(min{log n, D})", "-", "yes", "yes", "yes", "yes", "yes"),
        ];
        let mut out = format!(
            "{:<16} {:<22} {:>7} {:>7} {:>7} {:>8} {:>6} {:>9}\n",
            "Structure", "Update cost", "Ternar", "ParUpd", "ParQry", "Subtree", "Path", "Non-local"
        );
        for r in rows {
            out.push_str(&format!(
                "{:<16} {:<22} {:>7} {:>7} {:>7} {:>8} {:>6} {:>9}\n",
                r.0, r.1, r.2, r.3, r.4, r.5, r.6, r.7
            ));
        }
        out
    }
}
