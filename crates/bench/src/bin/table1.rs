//! Table 1: the operation/feature matrix of the implemented structures,
//! rendered from the single source of truth in `ufo_trees::capabilities`.
fn main() {
    println!(
        "Table 1 — supported operations and costs (generated from the implemented structures)\n"
    );
    println!("{}", ufo_trees::capabilities::render_matrix());
}
