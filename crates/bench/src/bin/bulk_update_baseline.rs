//! Measures lazy bulk re-weighting (`PathApply`/`ComponentApply`) against
//! the eager per-vertex `set_weight` loop it replaces and emits the baseline
//! JSON stored at `crates/bench/baselines/bulk_update.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin bulk_update_baseline`
//!
//! The row computation lives in [`dyntree_bench::baseline`], shared with the
//! `bench_gate` binary so the gate re-measures exactly what was recorded.

use dyntree_bench::baseline::bulk_update_rows;

fn main() {
    print!("{}", bulk_update_rows().to_json());
}
