//! Measures the `GraphOp` transaction surface — `apply` at two transaction
//! sizes against the looped single-op baseline, at effective pool widths 1
//! and 4 — and emits the baseline JSON stored at
//! `crates/bench/baselines/batch_ops.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin batch_ops_baseline`
//!
//! The row computation lives in [`dyntree_bench::baseline`], shared with the
//! `bench_gate` binary so the gate re-measures exactly what was recorded.

use dyntree_bench::baseline::batch_ops_rows;

fn main() {
    // The threads=4 rows need pool headroom regardless of the host's
    // DYNTREE_THREADS; capping happens per-measurement via ParallelConfig.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build_global();
    print!("{}", batch_ops_rows().to_json());
}
