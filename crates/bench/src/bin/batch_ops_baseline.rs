//! Measures the `GraphOp` transaction surface — `apply` at two transaction
//! sizes against the looped single-op baseline — and emits the baseline JSON
//! stored at `crates/bench/baselines/batch_ops.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin batch_ops_baseline`

use dyntree_bench::{batch_ops_apply_time, batch_ops_single_time, batch_ops_traces, ConnBackend};

fn main() {
    let traces = batch_ops_traces();

    println!("{{");
    println!("  \"workload\": \"batch_ops\",");
    println!("  \"unit\": \"ops_per_second\",");
    println!("  \"results\": [");
    let mut rows = Vec::new();
    for (name, ops) in &traces {
        let total = ops.len() as f64;
        for backend in ConnBackend::ALL {
            // best of 3 to damp scheduler noise
            let single = (0..3)
                .map(|_| batch_ops_single_time(backend, ops).0)
                .fold(f64::INFINITY, f64::min);
            let apply64 = (0..3)
                .map(|_| batch_ops_apply_time(backend, ops, 64).0)
                .fold(f64::INFINITY, f64::min);
            let apply1024 = (0..3)
                .map(|_| batch_ops_apply_time(backend, ops, 1024).0)
                .fold(f64::INFINITY, f64::min);
            rows.push(format!(
                "    {{\"trace\": \"{}\", \"ops\": {}, \"backend\": \"{}\", \"single_ops_per_s\": {:.0}, \"apply64_ops_per_s\": {:.0}, \"apply1024_ops_per_s\": {:.0}}}",
                name,
                ops.len(),
                backend.name(),
                total / single,
                total / apply64,
                total / apply1024,
            ));
        }
    }
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
