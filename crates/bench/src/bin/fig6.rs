//! Figure 6: the diameter sweep.  Zipf(alpha) trees with decreasing diameter;
//! reports total update time, connectivity-query time and path-query time for
//! every sequential structure.
use dyntree_bench::{build_destroy_time, query_time, Structure};
use dyntree_workloads::zipf_tree;

fn main() {
    let n = dyntree_bench::default_n();
    let q = (n / 2).max(1_000);
    println!(
        "Figure 6 — diameter sweep, n = {}, q = {} (scale = {})\n",
        n,
        q,
        dyntree_bench::scale()
    );
    for alpha in [0.0, 0.5, 1.0, 1.5, 2.0] {
        let forest = zipf_tree(n, alpha, 11);
        let label = format!("alpha={:.1} D={}", alpha, forest.diameter());
        println!("== {} ==", label);
        for s in Structure::ALL {
            let upd = build_destroy_time(s, &forest, 5);
            let conn = query_time(s, &forest, q, false, 5);
            let path = if s.build(4).supports_path_queries() {
                query_time(s, &forest, q, true, 5)
            } else {
                f64::NAN
            };
            println!(
                "  {:>10?}  updates={:>8.3}s  connectivity={:>8.3}s  path={:>8.3}s",
                s, upd, conn, path
            );
        }
    }
}
