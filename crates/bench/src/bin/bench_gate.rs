//! Bench-regression gate: re-runs every recorded workload and fails (exit 1)
//! when median throughput regresses more than the tolerance against the
//! JSON baselines under `crates/bench/baselines/`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin bench_gate`
//!
//! Per workload, every `*_per_s` metric of every baseline row is re-measured
//! (same row-computation code the `*_baseline` binaries use) and turned into
//! a `measured / recorded` ratio; the **median** ratio is compared against
//! `1 - tolerance`, so a single noisy cell cannot flip the verdict while a
//! real across-the-board regression still does.  Rows that vanish from the
//! fresh measurement always fail.
//!
//! The `memory_usage` workload is special: its `bytes_per_edge` cells are
//! deterministic for a fixed trace (no timing is involved), so instead of
//! the median rule **every cell** must stay within the (much tighter)
//! memory tolerance, and the ratio is inverted — memory improves downwards.
//!
//! Environment knobs:
//! * `BENCH_GATE_TOLERANCE` — allowed median throughput drop, default
//!   `0.25`.  CI runners are slower and noisier than the machine that
//!   recorded a baseline; the median plus a wide tolerance absorbs that,
//!   and the baselines should be re-recorded (`*_baseline` binaries)
//!   whenever a deliberate perf-relevant change lands.
//! * `MEM_GATE_TOLERANCE` — allowed per-cell bytes-per-edge growth,
//!   default `0.15`.
//! * `DYNTREE_BENCH_REPS` — best-of repetitions per cell, default 2 here
//!   (the recorders default to 3).

use dyntree_bench::baseline::{
    baselines_dir, batch_ops_rows, bulk_update_rows, compare, connectivity_stream_rows,
    memory_usage_rows, parallel_scaling_rows, serve_throughput_rows, weighted_path_query_rows,
    Baseline,
};

/// How a workload's ratios are judged.
#[derive(Clone, Copy, PartialEq)]
enum Rule {
    /// Median ratio within `BENCH_GATE_TOLERANCE` (noisy timing metrics).
    Median,
    /// Every cell within `MEM_GATE_TOLERANCE` (deterministic memory metrics).
    EveryCell,
}

/// A baseline file name paired with its re-measurement function and rule.
type Workload = (&'static str, fn() -> Baseline, Rule);

fn main() {
    // The threads=4/8 rows need pool headroom; per-measurement caps come
    // from ParallelConfig.
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build_global();
    if std::env::var("DYNTREE_BENCH_REPS").is_err() {
        std::env::set_var("DYNTREE_BENCH_REPS", "2");
    }
    let tolerance: f64 = std::env::var("BENCH_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.25);
    let mem_tolerance: f64 = std::env::var("MEM_GATE_TOLERANCE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.15);

    let workloads: [Workload; 7] = [
        (
            "connectivity_stream.json",
            connectivity_stream_rows,
            Rule::Median,
        ),
        ("batch_ops.json", batch_ops_rows, Rule::Median),
        (
            "weighted_path_queries.json",
            weighted_path_query_rows,
            Rule::Median,
        ),
        ("bulk_update.json", bulk_update_rows, Rule::Median),
        ("parallel_scaling.json", parallel_scaling_rows, Rule::Median),
        ("serve_throughput.json", serve_throughput_rows, Rule::Median),
        ("memory_usage.json", memory_usage_rows, Rule::EveryCell),
    ];

    let mut failed = false;
    println!(
        "bench gate: tolerance {:.0}% median throughput drop, {:.0}% per-cell memory growth",
        tolerance * 100.0,
        mem_tolerance * 100.0
    );
    for (file, measure, rule) in workloads {
        let path = baselines_dir().join(file);
        let recorded = match std::fs::read_to_string(&path) {
            Ok(text) => match Baseline::parse(&text) {
                Ok(b) => b,
                Err(e) => {
                    println!("FAIL {file}: unparsable baseline: {e}");
                    failed = true;
                    continue;
                }
            },
            Err(e) => {
                println!(
                    "FAIL {file}: unreadable baseline at {}: {e}",
                    path.display()
                );
                failed = true;
                continue;
            }
        };
        let report = compare(&recorded, &measure());
        let ok = match rule {
            Rule::Median => report.passes(tolerance),
            Rule::EveryCell => report.passes_every_cell(mem_tolerance),
        };
        let verdict = if ok { "ok  " } else { "FAIL" };
        let mut worst = report.ratios.clone();
        worst.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap());
        let spread = match (worst.first(), worst.last()) {
            (Some((_, lo)), Some((_, hi))) => format!(" (min {lo:.3}, max {hi:.3})"),
            _ => String::new(),
        };
        println!(
            "{verdict} {:<24} median ratio {:.3} over {} metrics{spread}",
            report.workload,
            report.median_ratio,
            report.ratios.len()
        );
        for missing in &report.missing {
            println!("     missing row: {missing}");
        }
        // the worst cells are what a human (or trajectory review) reads
        // first, so print them on success too
        let show = if ok { 3 } else { 5 };
        for (label, ratio) in worst.iter().take(show) {
            println!("     {ratio:.3}x  {label}");
        }
        if !ok {
            failed = true;
        }
    }
    if failed {
        println!("bench gate: FAILED");
        println!(
            "     A *uniform* drop across workloads usually means this host is \
             simply slower than the one that recorded the baselines — re-record \
             them there (`*_baseline` binaries) or raise BENCH_GATE_TOLERANCE; \
             a drop concentrated in one workload is a real regression."
        );
        std::process::exit(1);
    }
    println!("bench gate: passed");
}
