//! `profile` — replay a SCALE or fuzz trace with telemetry enabled and print
//! a per-phase, per-backend breakdown (plus machine-readable JSON).
//!
//! Requires the `telemetry` cargo feature:
//!
//! ```text
//! cargo run --release --features telemetry -p dyntree_bench --bin profile -- \
//!     --trace SCALE-DEL-64k --check
//! ```
//!
//! Flags: `--trace SCALE-64k|SCALE-DEL-64k|fuzz`, `--backends a,b,...`,
//! `--batch N` (transaction size, default 8192), `--threads N`,
//! `--rebuild-threshold P` (arms the rebuild escape hatch at P percent),
//! `--seed/--ops/--vertices/--delete-heavy` (fuzz traces only), and
//! `--check`, which verifies the snapshot JSON round-trips, the delete-walk
//! sub-phases (`search_fan_out`, `rebuild`) parse with the right parent,
//! phase times nest (children ≤ parent, apply ≤ wall) and — for
//! delete-heavy traces — that ≥ 90% of wall time is attributed to named
//! phases; any violation exits 1.

#[cfg(not(feature = "telemetry"))]
fn main() {
    eprintln!(
        "profile requires the `telemetry` feature:\n  cargo run --release --features telemetry -p dyntree_bench --bin profile"
    );
    std::process::exit(2);
}

#[cfg(feature = "telemetry")]
fn main() {
    telemetry_main::run();
}

#[cfg(feature = "telemetry")]
mod telemetry_main {
    use std::time::Instant;

    use dyntree_bench::{parallel_scaling_delete_trace, parallel_scaling_trace, ConnBackend};
    use dyntree_connectivity::{DynConnectivity, MemoryBreakdown, SpanningBackend};
    use dyntree_euler::EulerTourForest;
    use dyntree_linkcut::LinkCutForest;
    use dyntree_primitives::algebra::SumMinMax;
    use dyntree_primitives::telemetry::{Telemetry, TelemetrySnapshot};
    use dyntree_primitives::{GraphOp, ParallelConfig};
    use dyntree_seqs::{SplaySequence, TreapSequence};
    use dyntree_workloads::FuzzTraceGen;
    use ufo_forest::UfoForest;

    struct Args {
        trace: String,
        backends: Vec<ConnBackend>,
        batch: usize,
        threads: Option<usize>,
        seed: u64,
        ops: usize,
        vertices: usize,
        delete_heavy: bool,
        rebuild_threshold: usize,
        check: bool,
    }

    fn parse_args() -> Args {
        let mut out = Args {
            trace: "SCALE-DEL-64k".to_string(),
            backends: ConnBackend::ALL.to_vec(),
            batch: 8192,
            threads: None,
            seed: 1,
            ops: 60_000,
            vertices: 2048,
            delete_heavy: false,
            rebuild_threshold: 0,
            check: false,
        };
        let mut args = std::env::args().skip(1);
        while let Some(flag) = args.next() {
            let mut grab = || {
                args.next()
                    .unwrap_or_else(|| panic!("flag {flag} needs a value"))
            };
            match flag.as_str() {
                "--trace" => out.trace = grab(),
                "--backends" => {
                    let list = grab();
                    out.backends = list
                        .split(',')
                        .map(|name| {
                            ConnBackend::ALL
                                .into_iter()
                                .find(|b| b.name() == name.trim())
                                .unwrap_or_else(|| panic!("unknown backend {name:?}"))
                        })
                        .collect();
                }
                "--batch" => out.batch = grab().parse().expect("--batch takes a number"),
                "--threads" => {
                    out.threads = Some(grab().parse().expect("--threads takes a number"));
                }
                "--seed" => out.seed = grab().parse().expect("--seed takes a number"),
                "--ops" => out.ops = grab().parse().expect("--ops takes a number"),
                "--vertices" => {
                    out.vertices = grab().parse().expect("--vertices takes a number");
                }
                "--delete-heavy" => out.delete_heavy = true,
                "--rebuild-threshold" => {
                    out.rebuild_threshold =
                        grab().parse().expect("--rebuild-threshold takes a percent");
                }
                "--check" => out.check = true,
                other => panic!("unknown flag {other:?} (see the module docs)"),
            }
        }
        out
    }

    struct Run {
        backend: &'static str,
        wall_nanos: u64,
        applied: u64,
        snapshot: TelemetrySnapshot,
        memory: MemoryBreakdown,
    }

    fn profile_backend<B: SpanningBackend<Weights = SumMinMax>>(
        name: &'static str,
        ops: &[GraphOp],
        batch: usize,
        cfg: ParallelConfig,
    ) -> Run {
        let mut engine: DynConnectivity<B> = DynConnectivity::new(0)
            .with_parallel_config(cfg)
            .with_telemetry(Telemetry::enabled());
        let mut applied = 0u64;
        let start = Instant::now();
        for chunk in ops.chunks(batch.max(1)) {
            applied += engine.apply(chunk).applied as u64;
        }
        let wall_nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        Run {
            backend: name,
            wall_nanos,
            applied: std::hint::black_box(applied),
            snapshot: engine.telemetry_snapshot().expect("telemetry enabled"),
            memory: engine.memory_breakdown(),
        }
    }

    fn dispatch(backend: ConnBackend, ops: &[GraphOp], batch: usize, cfg: ParallelConfig) -> Run {
        match backend {
            ConnBackend::Ufo => profile_backend::<UfoForest>("ufo", ops, batch, cfg),
            ConnBackend::LinkCut => profile_backend::<LinkCutForest>("linkcut", ops, batch, cfg),
            ConnBackend::EulerTreap => {
                profile_backend::<EulerTourForest<TreapSequence>>("euler-treap", ops, batch, cfg)
            }
            ConnBackend::EulerSplay => {
                profile_backend::<EulerTourForest<SplaySequence>>("euler-splay", ops, batch, cfg)
            }
        }
    }

    fn ms(nanos: u64) -> f64 {
        nanos as f64 / 1e6
    }

    /// Share of wall time attributed to `apply`'s direct children (the named
    /// top-level phases).
    fn attributed_fraction(run: &Run) -> f64 {
        let children: u64 = run
            .snapshot
            .phases
            .iter()
            .filter(|p| p.parent == Some("apply"))
            .map(|p| p.nanos)
            .sum();
        children as f64 / run.wall_nanos.max(1) as f64
    }

    fn print_run(run: &Run) {
        println!("\n== {} ==", run.backend);
        println!(
            "wall {:>10.2} ms   applied {}   attributed to named phases {:.1}%",
            ms(run.wall_nanos),
            run.applied,
            100.0 * attributed_fraction(run)
        );
        println!(
            "{:<28} {:>12} {:>7} {:>10}",
            "phase", "ms", "%wall", "enters"
        );
        for p in &run.snapshot.phases {
            let depth = {
                let mut d = 0;
                let mut cur = p.parent;
                while let Some(parent) = cur {
                    d += 1;
                    cur = run.snapshot.phase(parent).and_then(|q| q.parent);
                }
                d
            };
            println!(
                "{:<28} {:>12.2} {:>6.1}% {:>10}",
                format!("{}{}", "  ".repeat(depth), p.phase),
                ms(p.nanos),
                100.0 * p.nanos as f64 / run.wall_nanos.max(1) as f64,
                p.enters
            );
        }
        println!("{:<42} {:>12}", "counter", "value");
        for &(name, v) in &run.snapshot.counters {
            println!("{name:<42} {v:>12}");
        }
        println!("memory: {}", run.memory);
    }

    /// Self-checks on one run; returns human-readable violations.
    fn check_run(run: &Run, require_attribution: bool) -> Vec<String> {
        let mut bad = Vec::new();
        // 1. the JSON export round-trips
        match TelemetrySnapshot::parse(&run.snapshot.to_json()) {
            Ok(back) => {
                if back != run.snapshot {
                    bad.push(format!("{}: JSON round-trip mismatch", run.backend));
                }
            }
            Err(e) => bad.push(format!("{}: JSON does not parse: {e}", run.backend)),
        }
        // 1b. the schema carries the delete-walk sub-phases end to end: the
        //     fan-out and rebuild phases must survive the JSON round-trip
        //     (they are zero-entered on hatch-off runs, but never absent)
        for phase in ["search_fan_out", "rebuild"] {
            let round_tripped = TelemetrySnapshot::parse(&run.snapshot.to_json())
                .ok()
                .and_then(|s| s.phase(phase).map(|p| p.parent == Some("delete_walk")));
            if round_tripped != Some(true) {
                bad.push(format!(
                    "{}: phase {phase} missing or misparented after JSON round-trip",
                    run.backend
                ));
            }
        }
        // 2. phase times nest: children sum to ≤ the parent (5% slack for
        //    timer overhead), and the root phase fits inside the wall time
        for parent in &run.snapshot.phases {
            let children: u64 = run
                .snapshot
                .phases
                .iter()
                .filter(|p| p.parent == Some(parent.phase))
                .map(|p| p.nanos)
                .sum();
            if children as f64 > parent.nanos as f64 * 1.05 + 1e6 {
                bad.push(format!(
                    "{}: children of {} sum to {} ns > parent {} ns",
                    run.backend, parent.phase, children, parent.nanos
                ));
            }
        }
        let apply = run.snapshot.phase("apply").expect("apply phase exists");
        if apply.nanos > run.wall_nanos {
            bad.push(format!(
                "{}: apply {} ns exceeds wall {} ns",
                run.backend, apply.nanos, run.wall_nanos
            ));
        }
        // 3. the named phases account for the wall time (delete traces)
        if require_attribution && attributed_fraction(run) < 0.90 {
            bad.push(format!(
                "{}: only {:.1}% of wall time attributed to named phases",
                run.backend,
                100.0 * attributed_fraction(run)
            ));
        }
        bad
    }

    pub fn run() {
        let args = parse_args();
        let (trace_name, ops): (String, Vec<GraphOp>) = match args.trace.as_str() {
            "SCALE-64k" => parallel_scaling_trace(),
            "SCALE-DEL-64k" => parallel_scaling_delete_trace(),
            "fuzz" => {
                let mut gen = FuzzTraceGen::new(args.seed)
                    .with_ops(args.ops)
                    .with_vertices(args.vertices);
                if args.delete_heavy {
                    gen = gen.delete_heavy();
                }
                (
                    format!(
                        "fuzz(seed={}, ops={}, vertices={}{})",
                        args.seed,
                        args.ops,
                        args.vertices,
                        if args.delete_heavy {
                            ", delete-heavy"
                        } else {
                            ""
                        }
                    ),
                    gen.generate(),
                )
            }
            other => panic!("unknown trace {other:?} (SCALE-64k | SCALE-DEL-64k | fuzz)"),
        };
        let cfg = match args.threads {
            Some(t) => ParallelConfig::with_threads(t),
            None => ParallelConfig::default(),
        }
        .with_rebuild_threshold(args.rebuild_threshold);
        println!(
            "trace {trace_name}: {} ops in transactions of {}, {} pool threads",
            ops.len(),
            args.batch,
            rayon::current_num_threads()
        );

        let mut runs = Vec::new();
        for backend in &args.backends {
            rayon::reset_global_pool_metrics();
            let run = dispatch(*backend, &ops, args.batch, cfg);
            let pool = rayon::global_pool_metrics();
            print_run(&run);
            println!(
                "pool: {} jobs ({} helper steals), queue depth hwm {}, busy per slot {:?} ms",
                pool.jobs_executed,
                pool.helper_jobs,
                pool.queue_depth_hwm,
                pool.busy_nanos
                    .iter()
                    .map(|&n| (ms(n) * 10.0).round() / 10.0)
                    .collect::<Vec<_>>()
            );
            runs.push(run);
        }

        // machine-readable epilogue: one self-contained JSON document per
        // backend (each parses with TelemetrySnapshot::parse)
        println!("\n--- JSON ---");
        for run in &runs {
            println!(
                "{{\"trace\": \"{trace_name}\", \"backend\": \"{}\", \"batch\": {}, \"wall_nanos\": {}, \"applied\": {}, \"memory_bytes\": {}, \"snapshot\":",
                run.backend,
                args.batch,
                run.wall_nanos,
                run.applied,
                run.memory.total()
            );
            print!("{}", run.snapshot.to_json());
            println!("}}");
        }

        if args.check {
            // the attribution bound is part of the acceptance criteria for
            // the delete-heavy SCALE trace (where the engine, not trace
            // generation or report plumbing, dominates)
            let require_attribution = args.trace == "SCALE-DEL-64k";
            let violations: Vec<String> = runs
                .iter()
                .flat_map(|r| check_run(r, require_attribution))
                .collect();
            if violations.is_empty() {
                println!("\ncheck: OK ({} backends)", runs.len());
            } else {
                eprintln!("\ncheck: FAILED");
                for v in &violations {
                    eprintln!("  {v}");
                }
                std::process::exit(1);
            }
        }
    }
}
