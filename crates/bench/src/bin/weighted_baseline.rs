//! Measures weighted path-aggregate throughput through the connectivity
//! engine per backend and emits the baseline JSON stored at
//! `crates/bench/baselines/weighted_path_queries.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin weighted_baseline`
//!
//! The row computation lives in [`dyntree_bench::baseline`], shared with the
//! `bench_gate` binary so the gate re-measures exactly what was recorded.

use dyntree_bench::baseline::weighted_path_query_rows;

fn main() {
    print!("{}", weighted_path_query_rows().to_json());
}
