//! Measures weighted path-aggregate throughput through the connectivity
//! engine per backend and emits the baseline JSON stored at
//! `crates/bench/baselines/weighted_path_queries.json`.
//!
//! Run with: `cargo run --release -p dyntree_bench --bin weighted_baseline`

use dyntree_bench::{weighted_bench_forests, weighted_path_query_time, WeightedBackend};

fn main() {
    let forests = weighted_bench_forests();
    let queries = 1_000usize;

    println!("{{");
    println!("  \"workload\": \"weighted_path_queries\",");
    println!("  \"unit\": \"ops_per_second\",");
    println!("  \"results\": [");
    let mut rows = Vec::new();
    for (name, forest) in &forests {
        for backend in WeightedBackend::ALL {
            // best of 3 to damp scheduler noise
            let secs = (0..3)
                .map(|_| weighted_path_query_time(backend, forest, queries, 23).0)
                .fold(f64::INFINITY, f64::min);
            rows.push(format!(
                "    {{\"forest\": \"{}\", \"ops\": {}, \"backend\": \"{}\", \"ops_per_s\": {:.0}}}",
                name,
                queries,
                backend.name(),
                queries as f64 / secs,
            ));
        }
    }
    println!("{}", rows.join(",\n"));
    println!("  ]");
    println!("}}");
}
