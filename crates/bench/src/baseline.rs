//! Recorded-baseline plumbing shared by the `*_baseline` binaries (which
//! *write* `crates/bench/baselines/*.json`) and the `bench_gate` binary
//! (which re-runs the same workloads and *compares* against those files).
//!
//! The JSON schema is deliberately tiny — one flat object per measurement
//! row, identity fields as strings/integers plus `*_per_s` throughput
//! metrics — so this module can round-trip it with a ~50-line parser instead
//! of a serde dependency the offline container does not have.  Writer and
//! parser only ever meet files this module itself produced.

use crate::{
    batch_ops_apply_time_with, batch_ops_single_time, batch_ops_traces, bulk_component_update_time,
    bulk_path_update_time, connectivity_bench_streams, memory_peak_of_trace,
    parallel_scaling_apply_time, parallel_scaling_apply_time_rebuild,
    parallel_scaling_delete_trace, parallel_scaling_trace, serve_apply_time, serve_bench_mix,
    serve_plain_apply_time, serve_reader_query_time, stream_batch_replay_time, stream_replay_time,
    weighted_bench_forests, weighted_path_query_time, ConnBackend, WeightedBackend,
    REBUILD_BENCH_THRESHOLD,
};
use dyntree_primitives::ParallelConfig;

/// Whether a metric improves downwards (memory) instead of upwards
/// (throughput).  The gate inverts such ratios so "ratio ≥ 1 − tolerance"
/// keeps meaning "no worse than recorded" for every metric kind.
pub fn lower_is_better(metric: &str) -> bool {
    metric.ends_with("_per_edge") || metric.ends_with("_bytes")
}

/// One measurement row: identity fields (trace, backend, threads, …) plus
/// named metrics (`*_per_s` throughputs, `*_per_edge` / `*_bytes` memory).
#[derive(Clone, Debug, PartialEq)]
pub struct BaselineRow {
    /// Identity key/value pairs, in emission order.
    pub id: Vec<(String, String)>,
    /// Throughput metrics in ops/second.
    pub metrics: Vec<(String, f64)>,
}

impl BaselineRow {
    /// Canonical identity string (`trace=TEMP backend=ufo threads=4`).
    pub fn id_string(&self) -> String {
        self.id
            .iter()
            .map(|(k, v)| format!("{k}={v}"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

/// A whole recorded baseline: the workload name and its rows.
#[derive(Clone, Debug, PartialEq)]
pub struct Baseline {
    /// Workload identifier (matches the file stem).
    pub workload: String,
    /// Rows, one per (input, contender, …) combination.
    pub results: Vec<BaselineRow>,
}

impl Baseline {
    /// Serialises to the JSON layout stored under `crates/bench/baselines/`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"workload\": \"{}\",\n", self.workload));
        let memory_only = !self.results.is_empty()
            && self
                .results
                .iter()
                .all(|r| r.metrics.iter().all(|(k, _)| lower_is_better(k)));
        if memory_only {
            out.push_str("  \"unit\": \"bytes\",\n");
        } else {
            out.push_str("  \"unit\": \"ops_per_second\",\n");
        }
        out.push_str("  \"results\": [\n");
        let rows: Vec<String> = self
            .results
            .iter()
            .map(|row| {
                let mut fields: Vec<String> = row
                    .id
                    .iter()
                    .map(|(k, v)| {
                        if v.parse::<i64>().is_ok() {
                            format!("\"{k}\": {v}")
                        } else {
                            format!("\"{k}\": \"{v}\"")
                        }
                    })
                    .collect();
                fields.extend(row.metrics.iter().map(|(k, v)| format!("\"{k}\": {v:.0}")));
                format!("    {{{}}}", fields.join(", "))
            })
            .collect();
        out.push_str(&rows.join(",\n"));
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parses a file produced by [`to_json`](Self::to_json).
    pub fn parse(text: &str) -> Result<Baseline, String> {
        let workload = scalar_field(text, "workload")
            .ok_or_else(|| "missing \"workload\" field".to_string())?;
        let results_at = text
            .find("\"results\"")
            .ok_or_else(|| "missing \"results\" field".to_string())?;
        let mut results = Vec::new();
        let mut rest = &text[results_at..];
        while let Some(open) = rest.find('{') {
            let close = rest[open..]
                .find('}')
                .ok_or_else(|| "unterminated row object".to_string())?;
            let body = &rest[open + 1..open + close];
            results.push(parse_row(body)?);
            rest = &rest[open + close + 1..];
        }
        Ok(Baseline { workload, results })
    }
}

fn scalar_field(text: &str, key: &str) -> Option<String> {
    let at = text.find(&format!("\"{key}\""))?;
    let rest = &text[at..];
    let colon = rest.find(':')?;
    let value = rest[colon + 1..].trim_start();
    let value = value.strip_prefix('"')?;
    Some(value[..value.find('"')?].to_string())
}

fn parse_row(body: &str) -> Result<BaselineRow, String> {
    let mut row = BaselineRow {
        id: Vec::new(),
        metrics: Vec::new(),
    };
    for field in body.split(',') {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let (key, value) = field
            .split_once(':')
            .ok_or_else(|| format!("malformed field {field:?}"))?;
        let key = key.trim().trim_matches('"').to_string();
        let value = value.trim();
        if let Some(stripped) = value.strip_prefix('"') {
            row.id
                .push((key, stripped.trim_end_matches('"').to_string()));
        } else if key.ends_with("_per_s") || lower_is_better(&key) {
            let v: f64 = value
                .parse()
                .map_err(|_| format!("bad metric value {value:?} for {key}"))?;
            row.metrics.push((key, v));
        } else {
            row.id.push((key, value.to_string()));
        }
    }
    Ok(row)
}

// ---------------------------------------------------------------------------
// Workload measurement (shared by the baseline recorders and the gate)
// ---------------------------------------------------------------------------

/// Repetitions per measurement (best-of); `DYNTREE_BENCH_REPS` overrides the
/// default of 3 (the gate uses fewer to keep CI fast).
pub fn bench_reps() -> usize {
    std::env::var("DYNTREE_BENCH_REPS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(3)
}

fn best_of(reps: usize, mut f: impl FnMut() -> f64) -> f64 {
    (0..reps).map(|_| f()).fold(f64::INFINITY, f64::min)
}

/// Measures the `connectivity_stream` workload (per-stream, per-backend
/// sequential and batch-64 replay throughput).
pub fn connectivity_stream_rows() -> Baseline {
    let reps = bench_reps();
    let mut results = Vec::new();
    for stream in &connectivity_bench_streams() {
        let ops = stream.len() as f64;
        for backend in ConnBackend::ALL {
            let seq = best_of(reps, || stream_replay_time(backend, stream).0);
            let batch = best_of(reps, || stream_batch_replay_time(backend, stream, 64).0);
            results.push(BaselineRow {
                id: vec![
                    ("stream".into(), stream.name.clone()),
                    ("ops".into(), stream.len().to_string()),
                    ("backend".into(), backend.name().into()),
                ],
                metrics: vec![
                    ("seq_ops_per_s".into(), ops / seq),
                    ("batch64_ops_per_s".into(), ops / batch),
                ],
            });
        }
    }
    Baseline {
        workload: "connectivity_stream".into(),
        results,
    }
}

/// Measures the `batch_ops` workload: `apply` in 64- and 1024-op
/// transactions at an effective width of 1 and 4 threads, plus the
/// looped-singles reference on the 1-thread rows.
pub fn batch_ops_rows() -> Baseline {
    let reps = bench_reps();
    let mut results = Vec::new();
    for (name, ops) in &batch_ops_traces() {
        let n = ops.len() as f64;
        for backend in ConnBackend::ALL {
            for threads in [1usize, 4] {
                let cfg = ParallelConfig::with_threads(threads);
                let mut metrics = Vec::new();
                if threads == 1 {
                    let single = best_of(reps, || batch_ops_single_time(backend, ops).0);
                    metrics.push(("single_ops_per_s".into(), n / single));
                }
                for batch in [64usize, 1024] {
                    let t = best_of(reps, || {
                        batch_ops_apply_time_with(backend, ops, batch, cfg).0
                    });
                    metrics.push((format!("apply{batch}_ops_per_s"), n / t));
                }
                results.push(BaselineRow {
                    id: vec![
                        ("trace".into(), name.clone()),
                        ("ops".into(), ops.len().to_string()),
                        ("backend".into(), backend.name().into()),
                        ("threads".into(), threads.to_string()),
                    ],
                    metrics,
                });
            }
        }
    }
    Baseline {
        workload: "batch_ops".into(),
        results,
    }
}

/// Measures the `weighted_path_queries` workload (thread-independent: pure
/// query/update stream through the aggregation layer).
pub fn weighted_path_query_rows() -> Baseline {
    let reps = bench_reps();
    let queries = 1000usize;
    let mut results = Vec::new();
    for (label, forest) in &weighted_bench_forests() {
        for backend in WeightedBackend::ALL {
            let t = best_of(reps, || {
                weighted_path_query_time(backend, forest, queries, 23).0
            });
            results.push(BaselineRow {
                id: vec![
                    ("forest".into(), (*label).into()),
                    ("ops".into(), queries.to_string()),
                    ("backend".into(), backend.name().into()),
                ],
                metrics: vec![("ops_per_s".into(), queries as f64 / t)],
            });
        }
    }
    Baseline {
        workload: "weighted_path_queries".into(),
        results,
    }
}

/// Measures the `bulk_update` workload: lazy `PathApply`/`ComponentApply`
/// throughput next to the eager per-vertex `set_weight` loop each one
/// replaces (DESIGN.md §13).  The legs are measured at different round
/// counts — the lazy ops are several orders of magnitude faster and need
/// more rounds for a clean clock — but both metrics are per-bulk-update, so
/// the gap between `lazy_updates_per_s` and `eager_updates_per_s` in one
/// row *is* the speedup the lazy-action layer buys.  The path rows run on
/// the 2048-vertex path (where the eager leg can enumerate the corridor
/// without engine help); the component rows re-weight a whole spanning
/// tree per update.
pub fn bulk_update_rows() -> Baseline {
    let reps = bench_reps();
    let (lazy_rounds, eager_rounds) = (20_000usize, 200usize);
    let mut results = Vec::new();

    let lazy = best_of(reps, || {
        bulk_path_update_time(false, 2_048, lazy_rounds, 17).0
    });
    let eager = best_of(reps, || {
        bulk_path_update_time(true, 2_048, eager_rounds, 17).0
    });
    results.push(BaselineRow {
        id: vec![
            ("forest".into(), "PATH-2048".into()),
            ("ops".into(), lazy_rounds.to_string()),
            ("backend".into(), "linkcut".into()),
            ("op".into(), "path_apply".into()),
        ],
        metrics: vec![
            ("lazy_updates_per_s".into(), lazy_rounds as f64 / lazy),
            ("eager_updates_per_s".into(), eager_rounds as f64 / eager),
        ],
    });

    for (label, forest) in &weighted_bench_forests() {
        let lazy = best_of(reps, || {
            bulk_component_update_time(false, forest, lazy_rounds, 23).0
        });
        let eager = best_of(reps, || {
            bulk_component_update_time(true, forest, eager_rounds, 23).0
        });
        results.push(BaselineRow {
            id: vec![
                ("forest".into(), (*label).into()),
                ("ops".into(), lazy_rounds.to_string()),
                ("backend".into(), "euler-treap".into()),
                ("op".into(), "component_apply".into()),
            ],
            metrics: vec![
                ("lazy_updates_per_s".into(), lazy_rounds as f64 / lazy),
                ("eager_updates_per_s".into(), eager_rounds as f64 / eager),
            ],
        });
    }
    Baseline {
        workload: "bulk_update".into(),
        results,
    }
}

/// Measures the `parallel_scaling` workload: `apply` throughput over the
/// insert-heavy and the delete-heavy 64k-op traces at effective widths
/// 1/2/4/8 on one shared pool, plus the delete-heavy trace re-run under the
/// rebuild-enabled config (`config=rebuild5` rows).
pub fn parallel_scaling_rows() -> Baseline {
    let reps = bench_reps();
    let mut results = Vec::new();
    for (name, ops) in [parallel_scaling_trace(), parallel_scaling_delete_trace()] {
        let n = ops.len() as f64;
        for backend in [ConnBackend::Ufo, ConnBackend::LinkCut] {
            for threads in [1usize, 2, 4, 8] {
                let t = best_of(reps, || {
                    parallel_scaling_apply_time(backend, &ops, threads).0
                });
                results.push(BaselineRow {
                    id: vec![
                        ("trace".into(), name.clone()),
                        ("ops".into(), ops.len().to_string()),
                        ("backend".into(), backend.name().into()),
                        ("threads".into(), threads.to_string()),
                    ],
                    metrics: vec![("apply_ops_per_s".into(), n / t)],
                });
            }
        }
    }
    // the delete-heavy gate leg: SCALE-DEL-64k again with the rebuild
    // escape hatch armed (ufo only — the hatch needs a snapshot-capable
    // backend), so a regression in the relaxed canonical-outcome path
    // fails the gate like any other row
    let (name, ops) = parallel_scaling_delete_trace();
    let n = ops.len() as f64;
    for threads in [1usize, 2, 4, 8] {
        let t = best_of(reps, || {
            parallel_scaling_apply_time_rebuild(ConnBackend::Ufo, &ops, threads).0
        });
        results.push(BaselineRow {
            id: vec![
                ("trace".into(), name.clone()),
                ("ops".into(), ops.len().to_string()),
                ("backend".into(), "ufo".into()),
                ("threads".into(), threads.to_string()),
                ("config".into(), format!("rebuild{REBUILD_BENCH_THRESHOLD}")),
            ],
            metrics: vec![("apply_ops_per_s".into(), n / t)],
        });
    }
    Baseline {
        workload: "parallel_scaling".into(),
        results,
    }
}

/// Measures the `serve_throughput` workload: the writer's apply+publish
/// throughput next to the bare engine's (their gap is the snapshot-build
/// cost `EXPERIMENTS.md` reports as a percentage of apply wall), and reader
/// query throughput at 1/2/8 reader threads under continuous writer churn.
/// On a single-CPU host the reader rows measure interleaving, not
/// parallelism — same caveat as `parallel_scaling`.
pub fn serve_throughput_rows() -> Baseline {
    let reps = bench_reps();
    let (trace, mix) = serve_bench_mix();
    let ops: usize = mix.writer_batches.iter().map(Vec::len).sum();
    let mut results = Vec::new();

    // writer row (readers=0): publish-per-batch vs bare apply
    let serve_t = best_of(reps, || serve_apply_time(&mix).0);
    let plain_t = best_of(reps, || serve_plain_apply_time(&mix).0);
    results.push(BaselineRow {
        id: vec![
            ("trace".into(), trace.clone()),
            ("ops".into(), ops.to_string()),
            ("backend".into(), "ufo".into()),
            ("readers".into(), "0".into()),
        ],
        metrics: vec![
            ("apply_publish_ops_per_s".into(), ops as f64 / serve_t),
            ("apply_plain_ops_per_s".into(), ops as f64 / plain_t),
        ],
    });

    // reader rows: fixed query streams drained under live churn
    for readers in [1usize, 2, 8] {
        let queries = (readers * mix.reader_queries[0].len()) as f64;
        let t = best_of(reps, || serve_reader_query_time(&mix, readers).0);
        results.push(BaselineRow {
            id: vec![
                ("trace".into(), trace.clone()),
                ("ops".into(), ops.to_string()),
                ("backend".into(), "ufo".into()),
                ("readers".into(), readers.to_string()),
            ],
            metrics: vec![("reader_query_ops_per_s".into(), queries / t)],
        });
    }
    Baseline {
        workload: "serve_throughput".into(),
        results,
    }
}

/// Measures the `memory_usage` workload: the engine's exact heap bytes per
/// live edge at the peak-load point of the two 64k-op scaling traces
/// (sampled at transaction boundaries), one row per backend.  No timing is
/// involved — the numbers are deterministic for a fixed trace — so the gate
/// compares these rows cell-by-cell at a tight tolerance
/// (`MEM_GATE_TOLERANCE`, default 15%) instead of by median.
pub fn memory_usage_rows() -> Baseline {
    let mut results = Vec::new();
    for (name, ops) in [parallel_scaling_trace(), parallel_scaling_delete_trace()] {
        for backend in ConnBackend::ALL {
            let (bytes, edges) = memory_peak_of_trace(backend, &ops);
            results.push(BaselineRow {
                id: vec![
                    ("trace".into(), name.clone()),
                    ("ops".into(), ops.len().to_string()),
                    ("backend".into(), backend.name().into()),
                    ("edges".into(), edges.to_string()),
                ],
                metrics: vec![("bytes_per_edge".into(), bytes as f64 / edges.max(1) as f64)],
            });
        }
    }
    Baseline {
        workload: "memory_usage".into(),
        results,
    }
}

// ---------------------------------------------------------------------------
// Gate comparison
// ---------------------------------------------------------------------------

/// Outcome of re-measuring one workload against its recorded baseline.
#[derive(Clone, Debug)]
pub struct GateReport {
    /// Workload name.
    pub workload: String,
    /// Improvement ratio per metric, labelled `row-id metric`:
    /// `measured / recorded` for throughputs, `recorded / measured` for
    /// lower-is-better memory metrics — ≥ 1.0 always means "no worse".
    pub ratios: Vec<(String, f64)>,
    /// Median of [`ratios`](Self::ratios) (1.0 when empty).
    pub median_ratio: f64,
    /// Minimum of [`ratios`](Self::ratios) (1.0 when empty).
    pub min_ratio: f64,
    /// Baseline rows the fresh measurement did not reproduce at all.
    pub missing: Vec<String>,
}

impl GateReport {
    /// Whether the workload passes at `tolerance` (a median throughput drop
    /// of more than `tolerance` — e.g. 0.25 — fails, as do missing rows).
    pub fn passes(&self, tolerance: f64) -> bool {
        self.missing.is_empty() && self.median_ratio >= 1.0 - tolerance
    }

    /// Strict variant for deterministic metrics (memory): every single cell
    /// must stay within `tolerance`, not just the median.
    pub fn passes_every_cell(&self, tolerance: f64) -> bool {
        self.missing.is_empty() && self.min_ratio >= 1.0 - tolerance
    }
}

/// Compares a fresh measurement against the recorded baseline, matching
/// rows by identity fields **except** `ops` and `edges` (trace sizes and
/// the derived live-edge counts may legitimately drift when workloads are
/// retuned; the metrics are already size-normalised).
pub fn compare(recorded: &Baseline, measured: &Baseline) -> GateReport {
    let key = |row: &BaselineRow| -> Vec<(String, String)> {
        row.id
            .iter()
            .filter(|(k, _)| k != "ops" && k != "edges")
            .cloned()
            .collect()
    };
    let mut ratios = Vec::new();
    let mut missing = Vec::new();
    for old in &recorded.results {
        let Some(new) = measured.results.iter().find(|r| key(r) == key(old)) else {
            missing.push(old.id_string());
            continue;
        };
        for (metric, old_v) in &old.metrics {
            let Some((_, new_v)) = new.metrics.iter().find(|(k, _)| k == metric) else {
                missing.push(format!("{} {metric}", old.id_string()));
                continue;
            };
            if *old_v > 0.0 && *new_v > 0.0 {
                let ratio = if lower_is_better(metric) {
                    old_v / new_v
                } else {
                    new_v / old_v
                };
                ratios.push((format!("{} {metric}", old.id_string()), ratio));
            }
        }
    }
    let median_ratio = median(ratios.iter().map(|(_, r)| *r));
    let min_ratio = ratios.iter().map(|(_, r)| *r).fold(f64::INFINITY, f64::min);
    GateReport {
        workload: recorded.workload.clone(),
        ratios,
        median_ratio,
        min_ratio: if min_ratio.is_finite() {
            min_ratio
        } else {
            1.0
        },
        missing,
    }
}

fn median(values: impl Iterator<Item = f64>) -> f64 {
    let mut v: Vec<f64> = values.collect();
    if v.is_empty() {
        return 1.0;
    }
    v.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let mid = v.len() / 2;
    if v.len() % 2 == 1 {
        v[mid]
    } else {
        (v[mid - 1] + v[mid]) / 2.0
    }
}

/// Directory holding the recorded baseline JSON files.
pub fn baselines_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("baselines")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Baseline {
        Baseline {
            workload: "demo".into(),
            results: vec![
                BaselineRow {
                    id: vec![
                        ("trace".into(), "T-1".into()),
                        ("ops".into(), "100".into()),
                        ("threads".into(), "4".into()),
                    ],
                    metrics: vec![("apply_ops_per_s".into(), 1234.0)],
                },
                BaselineRow {
                    id: vec![("trace".into(), "T-2".into()), ("ops".into(), "7".into())],
                    metrics: vec![
                        ("seq_ops_per_s".into(), 10.0),
                        ("batch64_ops_per_s".into(), 20.0),
                    ],
                },
            ],
        }
    }

    #[test]
    fn json_round_trips() {
        let b = sample();
        let parsed = Baseline::parse(&b.to_json()).unwrap();
        assert_eq!(parsed, b);
    }

    #[test]
    fn parses_the_preexisting_schema() {
        // the shape PR 1–3 recorded (numeric ops, no threads field)
        let text = r#"{
  "workload": "connectivity_stream",
  "unit": "ops_per_second",
  "results": [
    {"stream": "TEMP", "ops": 25021, "backend": "ufo", "seq_ops_per_s": 61581, "batch64_ops_per_s": 65614}
  ]
}"#;
        let b = Baseline::parse(text).unwrap();
        assert_eq!(b.workload, "connectivity_stream");
        assert_eq!(b.results.len(), 1);
        assert_eq!(b.results[0].id.len(), 3);
        assert_eq!(b.results[0].metrics.len(), 2);
    }

    #[test]
    fn gate_math_flags_regressions_and_missing_rows() {
        let recorded = sample();
        let mut measured = sample();
        // 50% regression on one metric, the rest unchanged → median sits at
        // the unchanged 1.0 and the gate passes at 25%
        measured.results[0].metrics[0].1 = 617.0;
        let report = compare(&recorded, &measured);
        assert!(report.passes(0.25));
        // regress everything → fail
        for row in &mut measured.results {
            for m in &mut row.metrics {
                m.1 *= 0.5;
            }
        }
        let report = compare(&recorded, &measured);
        assert!(!report.passes(0.25));
        assert!((report.median_ratio - 0.5).abs() < 1e-9);
        // a vanished row is always a failure
        measured.results.pop();
        let report = compare(&recorded, &measured);
        assert!(!report.missing.is_empty());
        assert!(!report.passes(0.25));
    }

    #[test]
    fn memory_metrics_round_trip_and_gate_inverts_them() {
        let mem = Baseline {
            workload: "memory_usage".into(),
            results: vec![BaselineRow {
                id: vec![
                    ("trace".into(), "SCALE-64k".into()),
                    ("ops".into(), "65536".into()),
                    ("backend".into(), "ufo".into()),
                    ("edges".into(), "40000".into()),
                ],
                metrics: vec![("bytes_per_edge".into(), 512.0)],
            }],
        };
        // `bytes_per_edge` must parse back as a metric, not an id field
        let parsed = Baseline::parse(&mem.to_json()).unwrap();
        assert_eq!(parsed.results[0].metrics.len(), 1);
        assert_eq!(parsed.results[0].metrics[0].0, "bytes_per_edge");

        // 10% *more* bytes per edge: passes at 15%, fails at 5% —
        // every-cell rule, inverted ratio (lower is better)
        let mut measured = mem.clone();
        measured.results[0].metrics[0].1 = 563.2;
        let report = compare(&mem, &measured);
        assert!(report.min_ratio < 1.0, "growth must read as a regression");
        assert!(report.passes_every_cell(0.15));
        assert!(!report.passes_every_cell(0.05));

        // fewer bytes per edge is an improvement, never a failure
        measured.results[0].metrics[0].1 = 256.0;
        let report = compare(&mem, &measured);
        assert!(report.min_ratio > 1.0);
        assert!(report.passes_every_cell(0.0));

        // the derived edge count may drift without un-matching the row
        measured.results[0].id[3].1 = "41234".into();
        let report = compare(&mem, &measured);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn every_cell_rule_is_stricter_than_the_median() {
        let recorded = sample();
        let mut measured = sample();
        // one metric regresses 50%, the rest hold: median passes, strict fails
        measured.results[0].metrics[0].1 = 617.0;
        let report = compare(&recorded, &measured);
        assert!(report.passes(0.25));
        assert!(!report.passes_every_cell(0.25));
    }

    #[test]
    fn ops_field_is_ignored_when_matching_rows() {
        let recorded = sample();
        let mut measured = sample();
        measured.results[0].id[1].1 = "999".into(); // ops drifted
        let report = compare(&recorded, &measured);
        assert!(report.missing.is_empty());
    }

    #[test]
    fn scaling_trace_has_the_advertised_shape() {
        let (name, ops) = crate::parallel_scaling_trace();
        assert_eq!(name, "SCALE-64k");
        assert_eq!(ops.len(), 65_536);
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, dyntree_primitives::GraphOp::InsertEdge(..)))
            .count();
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, dyntree_primitives::GraphOp::DeleteEdge(..)))
            .count();
        assert!(inserts > 50_000, "insert-heavy: {inserts}");
        assert!(deletes > 5_000, "with real deletes: {deletes}");
    }

    #[test]
    fn delete_scaling_trace_has_the_advertised_shape() {
        let (name, ops) = crate::parallel_scaling_delete_trace();
        assert_eq!(name, "SCALE-DEL-64k");
        assert_eq!(ops.len(), 65_536);
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, dyntree_primitives::GraphOp::DeleteEdge(..)))
            .count();
        // deletions dominate the churn half of the trace …
        assert!(deletes > 25_000, "delete-heavy: {deletes}");
        // … in long consecutive runs past the default delete grain
        let mut longest = 0usize;
        let mut run = 0usize;
        for op in &ops {
            if matches!(op, dyntree_primitives::GraphOp::DeleteEdge(..)) {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        assert!(
            longest >= dyntree_primitives::DELETE_GRAIN,
            "longest delete run {longest} below the delete grain"
        );
        // every delete targets a then-live edge (drain certificates fire)
        let mut live = std::collections::HashSet::new();
        for op in &ops {
            match *op {
                dyntree_primitives::GraphOp::InsertEdge(u, v) if u != v => {
                    live.insert((u.min(v), u.max(v)));
                }
                dyntree_primitives::GraphOp::DeleteEdge(u, v) => {
                    assert!(live.remove(&(u.min(v), u.max(v))), "dead delete ({u},{v})");
                }
                _ => {}
            }
        }
    }
}
