//! Benchmark harness shared by the figure/table binaries and the criterion
//! benches.
//!
//! Every structure is driven through the [`DynTree`] adapter so that each
//! experiment applies *exactly* the same operation stream to every contender.
//! The binaries print one row per (structure, input) pair in the same layout
//! as the corresponding figure of the paper; `EXPERIMENTS.md` records the
//! paper-reported shape next to the numbers measured here.

use std::time::Instant;

use dyntree_euler::EulerTourForest;
use dyntree_linkcut::LinkCutForest;
use dyntree_seqs::{DynSequence, SplaySequence, TreapSequence};
use dyntree_workloads::Forest;
use ufo_forest::{TopologyForest, UfoForest};

/// Uniform adapter over every dynamic-tree structure in the workspace.
pub trait DynTree {
    /// Human-readable name (matches the paper's legends).
    fn name(&self) -> &'static str;
    /// Insert an edge (must not create a cycle).
    fn link(&mut self, u: usize, v: usize);
    /// Delete an edge.
    fn cut(&mut self, u: usize, v: usize);
    /// Connectivity query.
    fn connected(&mut self, u: usize, v: usize) -> bool;
    /// Vertex-weight path sum, if the structure supports path queries.
    fn path_sum(&mut self, u: usize, v: usize) -> Option<i64>;
    /// Set a vertex weight.
    fn set_weight(&mut self, v: usize, w: i64);
    /// Heap bytes owned by the structure.
    fn memory_bytes(&self) -> usize;
    /// Whether path queries are supported.
    fn supports_path_queries(&self) -> bool {
        true
    }
}

/// The contenders available to the sequential experiments.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Structure {
    /// Link-cut tree.
    LinkCut,
    /// UFO tree.
    Ufo,
    /// Topology tree (with dynamic ternarization).
    Topology,
    /// Euler tour tree over a treap.
    EttTreap,
    /// Euler tour tree over a splay tree.
    EttSplay,
}

impl Structure {
    /// All sequential contenders, in the paper's legend order.
    pub const ALL: [Structure; 5] = [
        Structure::LinkCut,
        Structure::Ufo,
        Structure::EttTreap,
        Structure::EttSplay,
        Structure::Topology,
    ];

    /// Instantiates the structure over `n` vertices.
    pub fn build(&self, n: usize) -> Box<dyn DynTree> {
        match self {
            Structure::LinkCut => Box::new(LinkCutAdapter(LinkCutForest::new(n))),
            Structure::Ufo => Box::new(UfoAdapter(UfoForest::new(n))),
            Structure::Topology => Box::new(TopologyAdapter(TopologyForest::new(n))),
            Structure::EttTreap => Box::new(EttAdapter::<TreapSequence>::new(n, "ETT (Treap)")),
            Structure::EttSplay => Box::new(EttAdapter::<SplaySequence>::new(n, "ETT (Splay)")),
        }
    }
}

struct LinkCutAdapter(LinkCutForest);
struct UfoAdapter(UfoForest);
struct TopologyAdapter(TopologyForest);
struct EttAdapter<S: DynSequence> {
    inner: EulerTourForest<S>,
    name: &'static str,
}

impl<S: DynSequence> EttAdapter<S> {
    fn new(n: usize, name: &'static str) -> Self {
        Self {
            inner: EulerTourForest::new(n),
            name,
        }
    }
}

impl DynTree for LinkCutAdapter {
    fn name(&self) -> &'static str {
        "Link-Cut Tree"
    }
    fn link(&mut self, u: usize, v: usize) {
        self.0.link(u, v);
    }
    fn cut(&mut self, u: usize, v: usize) {
        self.0.cut(u, v);
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        self.0.connected(u, v)
    }
    fn path_sum(&mut self, u: usize, v: usize) -> Option<i64> {
        self.0.path_sum(u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        self.0.set_weight(v, w);
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

impl DynTree for UfoAdapter {
    fn name(&self) -> &'static str {
        "UFO Tree"
    }
    fn link(&mut self, u: usize, v: usize) {
        self.0.link(u, v);
    }
    fn cut(&mut self, u: usize, v: usize) {
        self.0.cut(u, v);
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        UfoForest::connected(&self.0, u, v)
    }
    fn path_sum(&mut self, u: usize, v: usize) -> Option<i64> {
        UfoForest::path_sum(&self.0, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        self.0.set_weight(v, w);
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

impl DynTree for TopologyAdapter {
    fn name(&self) -> &'static str {
        "Topology Tree"
    }
    fn link(&mut self, u: usize, v: usize) {
        self.0.link(u, v);
    }
    fn cut(&mut self, u: usize, v: usize) {
        self.0.cut(u, v);
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::connected(&self.0, u, v)
    }
    fn path_sum(&mut self, u: usize, v: usize) -> Option<i64> {
        TopologyForest::path_sum(&self.0, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        self.0.set_weight(v, w);
    }
    fn memory_bytes(&self) -> usize {
        self.0.memory_bytes()
    }
}

impl<S: DynSequence> DynTree for EttAdapter<S> {
    fn name(&self) -> &'static str {
        self.name
    }
    fn link(&mut self, u: usize, v: usize) {
        self.inner.link(u, v);
    }
    fn cut(&mut self, u: usize, v: usize) {
        self.inner.cut(u, v);
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        self.inner.connected(u, v)
    }
    fn path_sum(&mut self, _u: usize, _v: usize) -> Option<i64> {
        None
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        self.inner.set_weight(v, w);
    }
    fn memory_bytes(&self) -> usize {
        self.inner.memory_bytes()
    }
    fn supports_path_queries(&self) -> bool {
        false
    }
}

/// Reads the benchmark scale factor from the `BENCH_SCALE` environment
/// variable (`small`, `medium`, `large`); defaults to `small` so the harness
/// completes quickly on a laptop.
pub fn scale() -> &'static str {
    match std::env::var("BENCH_SCALE").as_deref() {
        Ok("large") => "large",
        Ok("medium") => "medium",
        _ => "small",
    }
}

/// Default vertex count for the sequential experiments at the current scale.
pub fn default_n() -> usize {
    match scale() {
        "large" => 500_000,
        "medium" => 100_000,
        _ => 20_000,
    }
}

/// The "insert every edge then delete every edge, both in random order"
/// workload of Figure 5 / Figure 8, returning the elapsed seconds.
pub fn build_destroy_time(structure: Structure, forest: &Forest, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::seq::SliceRandom;
    use rand::SeedableRng;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut insert_order = forest.edges.clone();
    insert_order.shuffle(&mut rng);
    let mut delete_order = forest.edges.clone();
    delete_order.shuffle(&mut rng);

    let mut tree = structure.build(forest.n);
    let start = Instant::now();
    for &(u, v) in &insert_order {
        tree.link(u, v);
    }
    for &(u, v) in &delete_order {
        tree.cut(u, v);
    }
    start.elapsed().as_secs_f64()
}

/// Memory used by `structure` after inserting all edges of `forest`.
pub fn build_memory(structure: Structure, forest: &Forest) -> usize {
    let mut tree = structure.build(forest.n);
    for &(u, v) in &forest.edges {
        tree.link(u, v);
    }
    tree.memory_bytes()
}

/// Times `q` random connectivity (or path) queries on a fully built tree.
pub fn query_time(structure: Structure, forest: &Forest, q: usize, paths: bool, seed: u64) -> f64 {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut tree = structure.build(forest.n);
    for &(u, v) in &forest.edges {
        tree.link(u, v);
    }
    for v in 0..forest.n {
        tree.set_weight(v, (v % 97) as i64);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let queries: Vec<(usize, usize)> = (0..q)
        .map(|_| (rng.random_range(0..forest.n), rng.random_range(0..forest.n)))
        .collect();
    let start = Instant::now();
    let mut sink = 0i64;
    for &(a, b) in &queries {
        if paths {
            sink ^= tree.path_sum(a, b).unwrap_or(0);
        } else {
            sink ^= tree.connected(a, b) as i64;
        }
    }
    std::hint::black_box(sink);
    start.elapsed().as_secs_f64()
}

// ------------------------------------------------------------------
// Dynamic-connectivity stream harness
// ------------------------------------------------------------------

use dyntree_connectivity::{DynConnectivity, SpanningBackend};
use dyntree_workloads::{EdgeStream, StreamOp};

/// The two canonical edge streams of the connectivity benchmarks — the
/// single source of truth shared by `benches/connectivity_stream.rs` and the
/// `connectivity_baseline` binary, so the recorded baseline JSON always
/// measures exactly the workload the criterion bench measures.
pub fn connectivity_bench_streams() -> Vec<EdgeStream> {
    use dyntree_workloads::{churn_stream, road_grid_graph, sliding_window_stream, temporal_graph};
    let temporal = temporal_graph(4_000, 3, 17);
    let road = road_grid_graph(40, 17);
    vec![
        sliding_window_stream(&temporal, 2_048, 0.1, 23),
        churn_stream(&road, 6_000, 0.9, 0.1, 23),
    ]
}

/// The spanning-forest backends raced by the connectivity benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConnBackend {
    /// UFO forest backend.
    Ufo,
    /// Link-cut forest backend.
    LinkCut,
    /// Euler tour forest (treap) backend.
    EulerTreap,
    /// Euler tour forest (splay) backend.
    EulerSplay,
}

impl ConnBackend {
    /// All raced backends, in legend order.
    pub const ALL: [ConnBackend; 4] = [
        ConnBackend::Ufo,
        ConnBackend::LinkCut,
        ConnBackend::EulerTreap,
        ConnBackend::EulerSplay,
    ];

    /// Short name used in benchmark ids and the baseline JSON.
    pub fn name(&self) -> &'static str {
        match self {
            ConnBackend::Ufo => "ufo",
            ConnBackend::LinkCut => "linkcut",
            ConnBackend::EulerTreap => "euler-treap",
            ConnBackend::EulerSplay => "euler-splay",
        }
    }
}

fn replay<B: SpanningBackend>(stream: &EdgeStream) -> (f64, u64) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(stream.n);
    let mut checksum = 0u64;
    let start = Instant::now();
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                engine.insert_edge(u, v);
            }
            StreamOp::Delete(u, v) => {
                engine.delete_edge(u, v);
            }
            StreamOp::Query(a, b) => {
                checksum = checksum.wrapping_add(engine.connected(a, b) as u64)
            }
        }
    }
    checksum = checksum.wrapping_add(engine.component_count() as u64);
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(checksum),
    )
}

fn replay_batched<B: SpanningBackend>(stream: &EdgeStream, batch: usize) -> (f64, u64) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(stream.n);
    // Batch *runs* of same-kind operations so the replay is semantically
    // identical to the sequential one (an insert/delete of the same edge
    // must not be reordered across a flush boundary).
    let mut pending: Vec<(usize, usize)> = Vec::with_capacity(batch);
    let mut pending_kind: Option<bool> = None; // Some(true) = inserts
    let mut checksum = 0u64;
    let start = Instant::now();
    let flush = |engine: &mut DynConnectivity<B>,
                 pending: &mut Vec<(usize, usize)>,
                 kind: &mut Option<bool>| {
        match kind.take() {
            Some(true) => {
                engine.batch_insert(pending);
            }
            Some(false) => {
                engine.batch_delete(pending);
            }
            None => {}
        }
        pending.clear();
    };
    for op in &stream.ops {
        match *op {
            StreamOp::Insert(u, v) => {
                if pending_kind != Some(true) {
                    flush(&mut engine, &mut pending, &mut pending_kind);
                    pending_kind = Some(true);
                }
                pending.push((u, v));
            }
            StreamOp::Delete(u, v) => {
                if pending_kind != Some(false) {
                    flush(&mut engine, &mut pending, &mut pending_kind);
                    pending_kind = Some(false);
                }
                pending.push((u, v));
            }
            StreamOp::Query(a, b) => {
                // queries see a consistent state: flush the pending batch
                flush(&mut engine, &mut pending, &mut pending_kind);
                checksum = checksum.wrapping_add(engine.connected(a, b) as u64);
            }
        }
        if pending.len() >= batch {
            flush(&mut engine, &mut pending, &mut pending_kind);
        }
    }
    flush(&mut engine, &mut pending, &mut pending_kind);
    checksum = checksum.wrapping_add(engine.component_count() as u64);
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(checksum),
    )
}

/// Replays `stream` one operation at a time on `backend`; returns elapsed
/// seconds and a checksum of the query answers.
pub fn stream_replay_time(backend: ConnBackend, stream: &EdgeStream) -> (f64, u64) {
    match backend {
        ConnBackend::Ufo => replay::<UfoForest>(stream),
        ConnBackend::LinkCut => replay::<LinkCutForest>(stream),
        ConnBackend::EulerTreap => replay::<EulerTourForest<TreapSequence>>(stream),
        ConnBackend::EulerSplay => replay::<EulerTourForest<SplaySequence>>(stream),
    }
}

/// Replays `stream` through the batch interface with the given batch size.
pub fn stream_batch_replay_time(
    backend: ConnBackend,
    stream: &EdgeStream,
    batch: usize,
) -> (f64, u64) {
    match backend {
        ConnBackend::Ufo => replay_batched::<UfoForest>(stream, batch),
        ConnBackend::LinkCut => replay_batched::<LinkCutForest>(stream, batch),
        ConnBackend::EulerTreap => replay_batched::<EulerTourForest<TreapSequence>>(stream, batch),
        ConnBackend::EulerSplay => replay_batched::<EulerTourForest<SplaySequence>>(stream, batch),
    }
}

// ------------------------------------------------------------------
// GraphOp transaction harness (apply vs looped single ops)
// ------------------------------------------------------------------

use dyntree_primitives::ops::GraphOp;
use dyntree_primitives::ParallelConfig;

pub mod baseline;

/// The benchmark streams' mutation traces as `GraphOp` transactions (the
/// `AddVertices` bootstrap included — the engines start **empty**), labelled
/// with the source stream's name.
pub fn batch_ops_traces() -> Vec<(String, Vec<GraphOp>)> {
    connectivity_bench_streams()
        .iter()
        .map(|s| (s.name.clone(), s.to_graph_ops()))
        .collect()
}

fn apply_ops<B: SpanningBackend<Weights = dyntree_primitives::algebra::SumMinMax>>(
    ops: &[GraphOp],
    batch: usize,
    cfg: ParallelConfig,
) -> (f64, u64) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(0).with_parallel_config(cfg);
    let mut applied = 0u64;
    let start = Instant::now();
    for chunk in ops.chunks(batch.max(1)) {
        applied += engine.apply(chunk).applied as u64;
    }
    applied = applied.wrapping_add(engine.component_count() as u64);
    (start.elapsed().as_secs_f64(), std::hint::black_box(applied))
}

fn single_ops<B: SpanningBackend<Weights = dyntree_primitives::algebra::SumMinMax>>(
    ops: &[GraphOp],
) -> (f64, u64) {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(0);
    let mut applied = 0u64;
    let start = Instant::now();
    for &op in ops {
        let ok = match op {
            GraphOp::AddVertices(k) => {
                let first = engine.len();
                engine.ensure_vertices(first + k);
                true
            }
            GraphOp::InsertEdge(u, v) => engine.try_insert_edge(u, v).is_ok(),
            GraphOp::DeleteEdge(u, v) => engine.try_delete_edge(u, v).is_ok(),
            GraphOp::SetWeight(v, w) => engine.try_set_weight(v, w).is_ok(),
            GraphOp::PathApply(u, v, d) => {
                matches!(engine.try_path_apply(u, v, d), Ok(Some(_)))
            }
            GraphOp::ComponentApply(v, d) => engine.try_component_apply(v, d).is_ok(),
        };
        applied += ok as u64;
    }
    applied = applied.wrapping_add(engine.component_count() as u64);
    (start.elapsed().as_secs_f64(), std::hint::black_box(applied))
}

/// Applies `ops` in transactions of `batch` ops through `apply`; returns
/// elapsed seconds and a checksum (applied count + final components).
pub fn batch_ops_apply_time(backend: ConnBackend, ops: &[GraphOp], batch: usize) -> (f64, u64) {
    batch_ops_apply_time_with(backend, ops, batch, ParallelConfig::default())
}

/// [`batch_ops_apply_time`] with explicit [`ParallelConfig`] tunables — the
/// thread-scaling benchmarks sweep `cfg.threads` over one shared pool, so a
/// single process can measure the same workload at several effective widths.
pub fn batch_ops_apply_time_with(
    backend: ConnBackend,
    ops: &[GraphOp],
    batch: usize,
    cfg: ParallelConfig,
) -> (f64, u64) {
    match backend {
        ConnBackend::Ufo => apply_ops::<UfoForest>(ops, batch, cfg),
        ConnBackend::LinkCut => apply_ops::<LinkCutForest>(ops, batch, cfg),
        ConnBackend::EulerTreap => apply_ops::<EulerTourForest<TreapSequence>>(ops, batch, cfg),
        ConnBackend::EulerSplay => apply_ops::<EulerTourForest<SplaySequence>>(ops, batch, cfg),
    }
}

// ------------------------------------------------------------------
// Parallel-scaling harness (one pool, several effective widths)
// ------------------------------------------------------------------

/// The 64k-op insert/delete trace of the `parallel_scaling` benchmark: a
/// spanning chain over 8192 vertices followed by rounds of one 4096-edge
/// insert burst (mostly cycle edges once the chain exists — exactly the
/// shape the parallel pre-pass classifies without live probes) and one
/// 1024-edge delete burst over the live edge set.  Bursts are longer than
/// the default `batch_grain`, so applying the trace in 8192-op transactions
/// drives the chunked pre-pass on every insert run.
pub fn parallel_scaling_trace() -> (String, Vec<GraphOp>) {
    const N: usize = 8192;
    const TOTAL: usize = 65_536;
    let mut ops: Vec<GraphOp> = Vec::with_capacity(TOTAL);
    ops.push(GraphOp::AddVertices(N));
    let mut live: Vec<(usize, usize)> = Vec::new();
    for i in 0..N - 1 {
        ops.push(GraphOp::InsertEdge(i, i + 1));
        live.push((i, i + 1));
    }
    let mut x = 0x9e3779b97f4a7c15u64;
    let mut rand = move |m: usize| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % m
    };
    while ops.len() < TOTAL {
        for _ in 0..4096 {
            if ops.len() >= TOTAL {
                break;
            }
            let u = rand(N);
            let v = rand(N);
            ops.push(GraphOp::InsertEdge(u, v));
            if u != v {
                live.push((u, v));
            }
        }
        for _ in 0..1024 {
            if ops.len() >= TOTAL || live.is_empty() {
                break;
            }
            let (u, v) = live.swap_remove(rand(live.len()));
            ops.push(GraphOp::DeleteEdge(u, v));
        }
    }
    ("SCALE-64k".to_string(), ops)
}

/// The delete-heavy companion to [`parallel_scaling_trace`]: after the same
/// spanning chain over 8192 vertices, a dense 12k-edge insert phase seeds a
/// large non-tree population, and the remaining ops alternate one 1024-edge
/// insert burst with one 3072-edge delete burst over the live edge set — so
/// deletions dominate the churn and every 8192-op transaction contains
/// consecutive delete runs far past the default `delete_grain`, driving the
/// classification pre-pass and the parallel non-tree drain.
pub fn parallel_scaling_delete_trace() -> (String, Vec<GraphOp>) {
    const N: usize = 8192;
    const TOTAL: usize = 65_536;
    let mut ops: Vec<GraphOp> = Vec::with_capacity(TOTAL);
    ops.push(GraphOp::AddVertices(N));
    // `live` tracks canonically-oriented distinct edges, so every delete the
    // trace emits targets a then-live edge (the drain path, not the
    // missing-edge skip, is what this trace measures).
    let mut live: Vec<(usize, usize)> = Vec::new();
    let mut live_set: std::collections::HashSet<(usize, usize)> = std::collections::HashSet::new();
    let mut x = 0x00D1_E5CA_1E64_B17E_u64;
    let mut rand = move |m: usize| {
        x = x
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        ((x >> 33) as usize) % m
    };
    for i in 0..N - 1 {
        ops.push(GraphOp::InsertEdge(i, i + 1));
        live.push((i, i + 1));
        live_set.insert((i, i + 1));
    }
    let insert = |ops: &mut Vec<GraphOp>,
                  live: &mut Vec<(usize, usize)>,
                  live_set: &mut std::collections::HashSet<(usize, usize)>,
                  u: usize,
                  v: usize| {
        ops.push(GraphOp::InsertEdge(u, v));
        if u != v && live_set.insert((u.min(v), u.max(v))) {
            live.push((u.min(v), u.max(v)));
        }
    };
    for _ in 0..12_288 {
        let (u, v) = (rand(N), rand(N));
        insert(&mut ops, &mut live, &mut live_set, u, v);
    }
    while ops.len() < TOTAL {
        for _ in 0..1024 {
            if ops.len() >= TOTAL {
                break;
            }
            let (u, v) = (rand(N), rand(N));
            insert(&mut ops, &mut live, &mut live_set, u, v);
        }
        for _ in 0..3072 {
            if ops.len() >= TOTAL || live.is_empty() {
                break;
            }
            let (u, v) = live.swap_remove(rand(live.len()));
            live_set.remove(&(u, v));
            ops.push(GraphOp::DeleteEdge(u, v));
        }
    }
    ("SCALE-DEL-64k".to_string(), ops)
}

/// Applies the scaling trace in 8192-op transactions with the fan-out
/// capped at `threads`; returns elapsed seconds and a checksum.  The
/// checksum is thread-count-invariant — the determinism tests rely on it.
pub fn parallel_scaling_apply_time(
    backend: ConnBackend,
    ops: &[GraphOp],
    threads: usize,
) -> (f64, u64) {
    batch_ops_apply_time_with(backend, ops, 8192, ParallelConfig::with_threads(threads))
}

/// The rebuild-threshold percent the delete-heavy gate leg and the recorded
/// baselines arm the escape hatch at.
pub const REBUILD_BENCH_THRESHOLD: usize = 5;

/// Like [`parallel_scaling_apply_time`], with the rebuild escape hatch armed
/// at [`REBUILD_BENCH_THRESHOLD`] percent — the relaxed canonical-outcome
/// config, so the checksum is *not* comparable against the hatch-off runs.
pub fn parallel_scaling_apply_time_rebuild(
    backend: ConnBackend,
    ops: &[GraphOp],
    threads: usize,
) -> (f64, u64) {
    batch_ops_apply_time_with(
        backend,
        ops,
        8192,
        ParallelConfig::with_threads(threads).with_rebuild_threshold(REBUILD_BENCH_THRESHOLD),
    )
}

/// Applies the whole trace in 8192-op transactions, sampling the engine's
/// exact heap footprint (`memory_breakdown().total()`) at every transaction
/// boundary, and reports the sample taken where the live-edge count peaks:
/// `(heap bytes, live edges)` at maximum load.  The gate divides one by the
/// other; end-state would be useless on the delete-heavy trace, which
/// finishes almost empty while the slabs retain their peak capacity.
/// Memory, unlike throughput, is deterministic for a fixed trace, so the
/// gate can hold these rows to a much tighter tolerance.
pub fn memory_peak_of_trace(backend: ConnBackend, ops: &[GraphOp]) -> (usize, usize) {
    fn run<B: SpanningBackend<Weights = dyntree_primitives::algebra::SumMinMax>>(
        ops: &[GraphOp],
    ) -> (usize, usize) {
        let mut engine: DynConnectivity<B> = DynConnectivity::new(0);
        let (mut peak_bytes, mut peak_edges) = (0usize, 0usize);
        for chunk in ops.chunks(8192) {
            engine.apply(chunk);
            let edges = engine.num_edges();
            if edges >= peak_edges {
                peak_edges = edges;
                peak_bytes = engine.memory_breakdown().total();
            }
        }
        (peak_bytes, peak_edges)
    }
    match backend {
        ConnBackend::Ufo => run::<UfoForest>(ops),
        ConnBackend::LinkCut => run::<LinkCutForest>(ops),
        ConnBackend::EulerTreap => run::<EulerTourForest<TreapSequence>>(ops),
        ConnBackend::EulerSplay => run::<EulerTourForest<SplaySequence>>(ops),
    }
}

/// Applies `ops` one `try_*` call at a time (the looped-singles baseline the
/// `batch_ops` bench compares `apply` against).
pub fn batch_ops_single_time(backend: ConnBackend, ops: &[GraphOp]) -> (f64, u64) {
    match backend {
        ConnBackend::Ufo => single_ops::<UfoForest>(ops),
        ConnBackend::LinkCut => single_ops::<LinkCutForest>(ops),
        ConnBackend::EulerTreap => single_ops::<EulerTourForest<TreapSequence>>(ops),
        ConnBackend::EulerSplay => single_ops::<EulerTourForest<SplaySequence>>(ops),
    }
}

// ------------------------------------------------------------------
// Weighted path-query harness (the algebra layer through the engine)
// ------------------------------------------------------------------

use dyntree_naive::NaiveForest;
use dyntree_workloads::{path_tree, random_tree};

/// The forests raced by the weighted path-query benchmark: a random tree
/// (typical case) and a path (maximum tree-path length), labelled for the
/// benchmark ids and the baseline JSON.
pub fn weighted_bench_forests() -> Vec<(&'static str, Forest)> {
    vec![
        ("RND-2048", random_tree(2_048, 99)),
        ("PATH-2048", path_tree(2_048)),
    ]
}

/// The spanning-forest backends raced on weighted path aggregates.  The
/// topology backend is absent by design: it declines engine path aggregates
/// (ternarized answers would be inexact); the Euler backend is included to
/// expose the cost of its O(component) fallback next to the polylog
/// structures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WeightedBackend {
    /// UFO forest backend.
    Ufo,
    /// Link-cut forest backend.
    LinkCut,
    /// Euler tour forest (treap) backend — O(component) path fallback.
    EulerTreap,
    /// Naive oracle backend (small inputs only).
    Naive,
}

impl WeightedBackend {
    /// The backends raced by default, in legend order.
    pub const ALL: [WeightedBackend; 3] = [
        WeightedBackend::Ufo,
        WeightedBackend::LinkCut,
        WeightedBackend::EulerTreap,
    ];

    /// Short name used in benchmark ids and the baseline JSON.
    pub fn name(&self) -> &'static str {
        match self {
            WeightedBackend::Ufo => "ufo",
            WeightedBackend::LinkCut => "linkcut",
            WeightedBackend::EulerTreap => "euler-treap",
            WeightedBackend::Naive => "naive",
        }
    }
}

fn weighted_replay<B>(forest: &Forest, queries: usize, seed: u64) -> (f64, u64)
where
    B: SpanningBackend<Weights = ufo_forest::SumMinMax>,
{
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut engine: DynConnectivity<B> = DynConnectivity::new(forest.n);
    for &(u, v) in &forest.edges {
        engine.insert_edge(u, v);
    }
    for v in 0..forest.n {
        engine.set_weight(v, ((v * 37) % 1001) as i64 - 500);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut checksum = 0u64;
    let start = Instant::now();
    for i in 0..queries {
        let u = rng.random_range(0..forest.n);
        let v = rng.random_range(0..forest.n);
        if i % 5 == 4 {
            // 20% weight churn keeps the aggregates hot
            engine.set_weight(u, rng.random_range(-500..=500));
        } else if let Some(a) = engine.path_agg(u, v) {
            checksum = checksum
                .wrapping_add(a.sum as u64)
                .wrapping_add(a.edges)
                .wrapping_add(a.max as u64);
        }
    }
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(checksum),
    )
}

/// Replays a mixed 80/20 path-aggregate / set-weight workload over a fully
/// built tree; returns elapsed seconds and a checksum of the answers.
pub fn weighted_path_query_time(
    backend: WeightedBackend,
    forest: &Forest,
    queries: usize,
    seed: u64,
) -> (f64, u64) {
    match backend {
        WeightedBackend::Ufo => weighted_replay::<UfoForest>(forest, queries, seed),
        WeightedBackend::LinkCut => weighted_replay::<LinkCutForest>(forest, queries, seed),
        WeightedBackend::EulerTreap => {
            weighted_replay::<EulerTourForest<TreapSequence>>(forest, queries, seed)
        }
        WeightedBackend::Naive => weighted_replay::<NaiveForest>(forest, queries, seed),
    }
}

// ------------------------------------------------------------------
// Serving-layer harness (epoch snapshots under a writing engine)
// ------------------------------------------------------------------

use dyntree_serve::UfoServingEngine;
use dyntree_workloads::{ServeMix, ServeMixGen, ServeQuery};

/// The mixed readers+writer trace the serving benchmark and its baseline
/// replay: a 16k-op writer trace in batches of 64 over a 256→512-vertex
/// graph, with 8 pre-generated reader streams of 100k queries each (the
/// baseline rows use the first 1, 2, and 8 of them).
pub fn serve_bench_mix() -> (String, ServeMix) {
    (
        "SERVE-16k".to_string(),
        ServeMixGen::new(4242)
            .with_ops(16_384)
            .with_batch_size(64)
            .with_readers(8)
            .with_queries_per_reader(100_000)
            .with_vertices(256)
            .with_max_vertices(512)
            .generate(),
    )
}

/// Replays the writer trace through a [`UfoServingEngine`] — every batch
/// publishes a snapshot — and returns elapsed seconds plus the final epoch.
pub fn serve_apply_time(mix: &ServeMix) -> (f64, u64) {
    let mut serving = UfoServingEngine::new(0);
    let start = Instant::now();
    for batch in &mix.writer_batches {
        serving.apply(batch);
    }
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(serving.latest_epoch()),
    )
}

/// The same writer trace through the bare engine (no snapshot publication):
/// the reference the writer-row metrics compare against, so the recorded
/// baseline captures snapshot-build cost as the gap between the two.
pub fn serve_plain_apply_time(mix: &ServeMix) -> (f64, u64) {
    let mut engine: DynConnectivity<UfoForest> = DynConnectivity::new(0);
    let start = Instant::now();
    for batch in &mix.writer_batches {
        engine.apply(batch);
    }
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(engine.version()),
    )
}

/// Runs the first `readers` query streams of `mix` on their own threads
/// against a live [`UfoServingEngine`] while the writer keeps publishing —
/// first the real trace, then (if the readers outlast it) a small
/// insert/delete flip so churn never stops.  Returns elapsed seconds (start
/// of churn to last reader done) and an answer checksum; the caller derives
/// throughput from `readers × queries_per_reader`.
pub fn serve_reader_query_time(mix: &ServeMix, readers: usize) -> (f64, u64) {
    use std::sync::atomic::{AtomicUsize, Ordering};
    assert!(
        readers >= 1 && readers <= mix.reader_queries.len(),
        "mix has {} reader streams",
        mix.reader_queries.len()
    );
    let mut serving = UfoServingEngine::new(0);
    // bootstrap the vertex universe so readers query a populated graph
    serving.apply(&mix.writer_batches[0]);
    let handle = serving.reader();
    let done = AtomicUsize::new(0);
    let start = Instant::now();
    let checksum = std::thread::scope(|scope| {
        let joins: Vec<_> = mix.reader_queries[..readers]
            .iter()
            .map(|stream| {
                let mut reader = handle.clone();
                let done = &done;
                scope.spawn(move || {
                    let mut acc = 0u64;
                    for &q in stream {
                        acc = acc.wrapping_add(match q {
                            ServeQuery::Connected(u, v) => reader.connected(u, v).value as u64,
                            ServeQuery::ComponentSize(v) => reader.component_size(v).value,
                            ServeQuery::ComponentAgg(v) => {
                                reader.component_agg(v).value.map_or(0, |a| a.count)
                            }
                        });
                    }
                    done.fetch_add(1, Ordering::Relaxed);
                    acc
                })
            })
            .collect();
        for batch in &mix.writer_batches[1..] {
            serving.apply(batch);
            if done.load(Ordering::Relaxed) == readers {
                break;
            }
        }
        // trace exhausted with readers still running: keep epochs coming
        // without growing the graph
        while done.load(Ordering::Relaxed) < readers {
            serving.apply(&[GraphOp::InsertEdge(0, 1)]);
            serving.apply(&[GraphOp::DeleteEdge(0, 1)]);
        }
        joins
            .into_iter()
            .fold(0u64, |acc, j| acc.wrapping_add(j.join().unwrap()))
    });
    (
        start.elapsed().as_secs_f64(),
        std::hint::black_box(checksum),
    )
}

// ------------------------------------------------------------------
// Bulk-update harness (lazy actions vs the eager SetWeight loop)
// ------------------------------------------------------------------

/// Builds a weighted engine over `forest` carrying the deterministic
/// initial weight table the weighted benches use.
fn bulk_engine<B: SpanningBackend<Weights = ufo_forest::SumMinMax>>(
    forest: &Forest,
) -> DynConnectivity<B> {
    let mut engine: DynConnectivity<B> = DynConnectivity::new(forest.n);
    for &(u, v) in &forest.edges {
        engine.insert_edge(u, v);
    }
    for v in 0..forest.n {
        engine.set_weight(v, ((v * 37) % 1001) as i64 - 500);
    }
    engine
}

/// Reads the full weight table back out of the engine and folds it into a
/// checksum.  The lazy and the eager leg of a bulk-update measurement draw
/// identical corridors from identical seeds, so their final tables — and
/// therefore these checksums — must agree; the readback also forces every
/// pending lazy tag down, so the lazy leg cannot cheat by leaving work
/// undone in the tags.
fn weight_table_checksum<B: SpanningBackend<Weights = ufo_forest::SumMinMax>>(
    engine: &mut DynConnectivity<B>,
) -> u64 {
    (0..engine.len()).fold(0u64, |acc, v| {
        acc.wrapping_add(engine.vertex_weight(v).unwrap_or(0) as u64)
    })
}

/// Performs `rounds` corridor re-weightings over an `n`-vertex path through
/// a link-cut engine; returns elapsed seconds and the final weight-table
/// checksum.  `eager == false` is the lazy-action leg: one `try_path_apply`
/// per corridor (an O(log n) pending tag, DESIGN.md §13).  `eager == true`
/// replays the pre-action alternative it replaces: one `vertex_weight` +
/// `set_weight` round trip per corridor vertex.  The topology is a path
/// precisely so the eager leg knows the corridor (`min..=max`) without any
/// engine support — on a general tree only the engine knows the path, which
/// is the asymmetry the lazy op exists to close.
pub fn bulk_path_update_time(eager: bool, n: usize, rounds: usize, seed: u64) -> (f64, u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let forest = path_tree(n);
    let mut engine: DynConnectivity<LinkCutForest> = bulk_engine(&forest);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut touched = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        let delta = rng.random_range(-50i64..=50);
        if eager {
            for x in u.min(v)..=u.max(v) {
                let w = engine.vertex_weight(x).expect("in-range weighted vertex");
                engine.set_weight(x, w + delta);
                touched += 1;
            }
        } else {
            touched += engine
                .try_path_apply(u, v, delta)
                .expect("valid endpoints on a path-apply backend")
                .expect("one tree: always connected");
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(touched);
    (elapsed, weight_table_checksum(&mut engine))
}

/// Component counterpart of [`bulk_path_update_time`], over the euler-treap
/// backend (the engine's `SUPPORTS_COMPONENT_APPLY` structure).  `forest`
/// spans all of its vertices, so every round re-weights the whole table:
/// one `try_component_apply` on the lazy leg versus `forest.n` read+write
/// round trips on the eager leg.
pub fn bulk_component_update_time(
    eager: bool,
    forest: &Forest,
    rounds: usize,
    seed: u64,
) -> (f64, u64) {
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};
    let mut engine: DynConnectivity<EulerTourForest<TreapSequence>> = bulk_engine(forest);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut touched = 0u64;
    let start = Instant::now();
    for _ in 0..rounds {
        let anchor = rng.random_range(0..forest.n);
        let delta = rng.random_range(-50i64..=50);
        if eager {
            for x in 0..forest.n {
                let w = engine.vertex_weight(x).expect("in-range weighted vertex");
                engine.set_weight(x, w + delta);
                touched += 1;
            }
        } else {
            touched += engine
                .try_component_apply(anchor, delta)
                .expect("valid anchor on a component-apply backend");
        }
    }
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(touched);
    (elapsed, weight_table_checksum(&mut engine))
}

/// Formats a result row for the figure binaries.
pub fn print_row(label: &str, cells: &[(String, f64)]) {
    print!("{:<14}", label);
    for (name, value) in cells {
        print!(" {:>14}={:>9.3}s", name, value);
    }
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyntree_workloads::{path_tree, sliding_window_stream, temporal_graph};

    #[test]
    fn every_backend_replays_the_same_stream_identically() {
        let graph = temporal_graph(300, 3, 5);
        let stream = sliding_window_stream(&graph, 128, 0.3, 7);
        let checksums: Vec<u64> = ConnBackend::ALL
            .iter()
            .map(|&b| stream_replay_time(b, &stream).1)
            .collect();
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "backends disagree on query answers: {checksums:?}"
        );
        let (_, batched) = stream_batch_replay_time(ConnBackend::Ufo, &stream, 32);
        assert_eq!(batched, checksums[0], "batched replay must agree");
    }

    #[test]
    fn every_structure_runs_the_harness_workload() {
        let forest = path_tree(200);
        for s in Structure::ALL {
            let t = build_destroy_time(s, &forest, 1);
            assert!(t >= 0.0);
            let m = build_memory(s, &forest);
            assert!(m > 0, "{:?} reported zero memory", s);
        }
    }

    #[test]
    fn weighted_backends_agree_on_the_query_stream() {
        let forest = path_tree(96);
        let checksums: Vec<u64> = [
            WeightedBackend::Ufo,
            WeightedBackend::LinkCut,
            WeightedBackend::EulerTreap,
            WeightedBackend::Naive,
        ]
        .iter()
        .map(|&b| weighted_path_query_time(b, &forest, 200, 5).1)
        .collect();
        assert!(
            checksums.windows(2).all(|w| w[0] == w[1]),
            "weighted backends disagree: {checksums:?}"
        );
    }

    #[test]
    fn bulk_update_legs_agree_on_the_final_weight_table() {
        // same seed → same corridors; one lazy tag per corridor must leave
        // exactly the table the per-vertex loop leaves (and the checksum
        // readback flushes every pending tag, so nothing hides in them)
        let (_, lazy) = bulk_path_update_time(false, 96, 40, 9);
        let (_, eager) = bulk_path_update_time(true, 96, 40, 9);
        assert_eq!(lazy, eager, "path legs diverge");
        let forest = random_tree(96, 3);
        let (_, lazy) = bulk_component_update_time(false, &forest, 40, 9);
        let (_, eager) = bulk_component_update_time(true, &forest, 40, 9);
        assert_eq!(lazy, eager, "component legs diverge");
    }

    #[test]
    fn query_harness_runs_for_connectivity_and_paths() {
        let forest = path_tree(200);
        let c = query_time(Structure::Ufo, &forest, 100, false, 2);
        let p = query_time(Structure::Ufo, &forest, 100, true, 2);
        assert!(c >= 0.0 && p >= 0.0);
    }
}
