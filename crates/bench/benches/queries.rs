//! Criterion bench behind Figure 6(b)/(c): connectivity and path query
//! throughput on a built tree.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{query_time, Structure};
use dyntree_workloads::zipf_tree;

fn bench_queries(c: &mut Criterion) {
    let n = 5_000;
    let q = 2_000;
    let mut group = c.benchmark_group("fig6_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for alpha in [0.0f64, 2.0] {
        let forest = zipf_tree(n, alpha, 11);
        for s in [Structure::LinkCut, Structure::Ufo, Structure::Topology] {
            group.bench_with_input(
                BenchmarkId::new(format!("connectivity_{:?}", s), format!("alpha{alpha:.1}")),
                &forest,
                |b, forest| b.iter(|| query_time(s, forest, q, false, 5)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("path_{:?}", s), format!("alpha{alpha:.1}")),
                &forest,
                |b, forest| b.iter(|| query_time(s, forest, q, true, 5)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_queries);
criterion_main!(benches);
