//! Criterion bench behind Figures 8/9: batch-dynamic build+destroy.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_euler::BatchEulerForest;
use dyntree_seqs::TreapSequence;
use dyntree_workloads::{kary_tree, path_tree};
use ufo_forest::UfoForest;

fn bench_batch(c: &mut Criterion) {
    let n = 10_000;
    let batch = 2_000;
    let mut group = c.benchmark_group("fig8_batch_updates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (label, forest) in [("path", path_tree(n)), ("64ary", kary_tree(n, 64))] {
        group.bench_with_input(BenchmarkId::new("ufo_batch", label), &forest, |b, f| {
            b.iter(|| {
                let mut t: UfoForest = UfoForest::new(f.n);
                for chunk in f.edges.chunks(batch) {
                    t.batch_link(chunk);
                }
                for chunk in f.edges.chunks(batch) {
                    t.batch_cut(chunk);
                }
                t.num_edges()
            })
        });
        group.bench_with_input(BenchmarkId::new("ett_batch", label), &forest, |b, f| {
            b.iter(|| {
                let mut t = BatchEulerForest::<TreapSequence>::new(f.n);
                for chunk in f.edges.chunks(batch) {
                    t.batch_link(chunk);
                }
                for chunk in f.edges.chunks(batch) {
                    t.batch_cut(chunk);
                }
                t.forest().num_edges()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batch);
criterion_main!(benches);
