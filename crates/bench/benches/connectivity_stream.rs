//! Criterion bench for the connectivity subsystem: sequential and batched
//! edge-stream replay throughput per spanning-forest backend, on a temporal
//! graph's sliding-window trace (every edge inserted and deleted once) and a
//! road grid's churn trace.  A JSON baseline recorded from this workload
//! lives at `crates/bench/baselines/connectivity_stream.json` (regenerate
//! with `cargo run --release -p dyntree_bench --bin connectivity_baseline`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{
    connectivity_bench_streams, stream_batch_replay_time, stream_replay_time, ConnBackend,
};

fn bench_connectivity_stream(c: &mut Criterion) {
    let streams = connectivity_bench_streams();

    let mut group = c.benchmark_group("connectivity_stream");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for stream in &streams {
        for backend in ConnBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("seq/{}", backend.name()), &stream.name),
                stream,
                |b, s| b.iter(|| stream_replay_time(backend, s)),
            );
            group.bench_with_input(
                BenchmarkId::new(format!("batch64/{}", backend.name()), &stream.name),
                stream,
                |b, s| b.iter(|| stream_batch_replay_time(backend, s, 64)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_connectivity_stream);
criterion_main!(benches);
