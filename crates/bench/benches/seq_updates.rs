//! Criterion bench behind Figure 5: sequential insert+delete throughput.
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{build_destroy_time, Structure};
use dyntree_workloads::SyntheticTree;

fn bench_seq_updates(c: &mut Criterion) {
    let n = 5_000;
    let mut group = c.benchmark_group("fig5_seq_updates");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for family in [
        SyntheticTree::Path,
        SyntheticTree::KAry64,
        SyntheticTree::Random,
    ] {
        let forest = family.generate(n, 7);
        for s in Structure::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", s), family.label()),
                &forest,
                |b, forest| b.iter(|| build_destroy_time(s, forest, 13)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_seq_updates);
criterion_main!(benches);
