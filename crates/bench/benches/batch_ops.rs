//! Criterion bench for the `GraphOp` transaction surface: the benchmark
//! streams' mutation traces replayed through `apply(&[GraphOp])` at two
//! transaction sizes versus the looped single-op `try_*` baseline, per
//! spanning-forest backend.  A JSON baseline recorded from this workload
//! lives at `crates/bench/baselines/batch_ops.json` (regenerate with
//! `cargo run --release -p dyntree_bench --bin batch_ops_baseline`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{batch_ops_apply_time, batch_ops_single_time, batch_ops_traces, ConnBackend};

fn bench_batch_ops(c: &mut Criterion) {
    let traces = batch_ops_traces();

    let mut group = c.benchmark_group("batch_ops");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, ops) in &traces {
        for backend in ConnBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(format!("single/{}", backend.name()), name),
                ops,
                |b, ops| b.iter(|| batch_ops_single_time(backend, ops)),
            );
            for batch in [64usize, 1024] {
                group.bench_with_input(
                    BenchmarkId::new(format!("apply{}/{}", batch, backend.name()), name),
                    ops,
                    |b, ops| b.iter(|| batch_ops_apply_time(backend, ops, batch)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_batch_ops);
criterion_main!(benches);
