//! Criterion bench for the algebra layer through the connectivity engine:
//! mixed path-aggregate / set-weight throughput per spanning-forest backend
//! on a random tree and on a path (the longest-tree-path adversary).  The
//! Euler backend's O(component) path fallback is raced on purpose, to keep
//! its cost visible next to the polylog structures.  A JSON baseline recorded
//! from this workload lives at
//! `crates/bench/baselines/weighted_path_queries.json` (regenerate with
//! `cargo run --release -p dyntree_bench --bin weighted_baseline`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{weighted_bench_forests, weighted_path_query_time, WeightedBackend};

fn bench_weighted_path_queries(c: &mut Criterion) {
    let forests = weighted_bench_forests();
    let queries = 1_000;

    let mut group = c.benchmark_group("weighted_path_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (name, forest) in &forests {
        for backend in WeightedBackend::ALL {
            group.bench_with_input(
                BenchmarkId::new(backend.name().to_string(), name),
                forest,
                |b, f| b.iter(|| weighted_path_query_time(backend, f, queries, 23)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_weighted_path_queries);
criterion_main!(benches);
