//! Criterion bench for the lazy-action layer (DESIGN.md §13): one
//! `PathApply`/`ComponentApply` tag versus the eager per-vertex
//! `vertex_weight` + `set_weight` loop it replaces, through the
//! connectivity engine.  Path corridors run on the 2048-vertex path over
//! the link-cut backend (the eager leg enumerates the corridor as
//! `min..=max`, which only a path topology allows); component updates
//! re-weight a whole spanning tree over the euler-treap backend.  A JSON
//! baseline recorded from this workload lives at
//! `crates/bench/baselines/bulk_update.json` (regenerate with
//! `cargo run --release -p dyntree_bench --bin bulk_update_baseline`).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{bulk_component_update_time, bulk_path_update_time, weighted_bench_forests};

fn bench_bulk_updates(c: &mut Criterion) {
    let rounds = 200;

    let mut group = c.benchmark_group("bulk_update");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(2000));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for (leg, eager) in [("lazy", false), ("eager", true)] {
        group.bench_function(format!("path-{leg}/PATH-2048"), |b| {
            b.iter(|| bulk_path_update_time(eager, 2_048, rounds, 17))
        });
    }
    for (name, forest) in &weighted_bench_forests() {
        for (leg, eager) in [("lazy", false), ("eager", true)] {
            group.bench_with_input(
                BenchmarkId::new(format!("component-{leg}"), name),
                forest,
                |b, f| b.iter(|| bulk_component_update_time(eager, f, rounds, 23)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_bulk_updates);
criterion_main!(benches);
