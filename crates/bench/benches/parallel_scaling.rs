//! Thread-scaling of `DynConnectivity::apply` on the insert-heavy and the
//! delete-heavy 64k-op traces: the same 8-worker pool measured at effective
//! widths 1/2/4/8 via `ParallelConfig::with_threads`.  Results are recorded
//! to `baselines/parallel_scaling.json` by the `parallel_scaling_baseline`
//! binary and guarded by the `bench_gate` CI step; under `cargo test` each
//! cell runs once as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{
    parallel_scaling_apply_time, parallel_scaling_delete_trace, parallel_scaling_trace, ConnBackend,
};

fn bench_parallel_scaling(c: &mut Criterion) {
    let _ = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build_global();
    let mut group = c.benchmark_group("parallel_scaling");
    group.sample_size(3);
    for (trace, ops) in [parallel_scaling_trace(), parallel_scaling_delete_trace()] {
        for backend in [ConnBackend::Ufo, ConnBackend::LinkCut] {
            for threads in [1usize, 2, 4, 8] {
                group.bench_with_input(
                    BenchmarkId::new(format!("apply/{}/{trace}", backend.name()), threads),
                    &threads,
                    |b, &t| b.iter(|| parallel_scaling_apply_time(backend, &ops, t)),
                );
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench_parallel_scaling);
criterion_main!(benches);
