//! The serving layer under load: writer apply+publish throughput against
//! the bare engine's apply (the gap is snapshot-build cost), and reader
//! query throughput at 1/2/8 reader threads while the writer keeps
//! publishing.  Results are recorded to `baselines/serve_throughput.json`
//! by the `serve_baseline` binary and guarded by the `bench_gate` CI step;
//! under `cargo test` each cell runs once as a smoke test.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{
    serve_apply_time, serve_bench_mix, serve_plain_apply_time, serve_reader_query_time,
};

fn bench_serve_throughput(c: &mut Criterion) {
    let (trace, mix) = serve_bench_mix();
    let mut group = c.benchmark_group("serve_throughput");
    group.sample_size(3);
    group.bench_function(format!("apply_publish/{trace}"), |b| {
        b.iter(|| serve_apply_time(&mix))
    });
    group.bench_function(format!("apply_plain/{trace}"), |b| {
        b.iter(|| serve_plain_apply_time(&mix))
    });
    for readers in [1usize, 2, 8] {
        group.bench_with_input(
            BenchmarkId::new(format!("reader_queries/{trace}"), readers),
            &readers,
            |b, &r| b.iter(|| serve_reader_query_time(&mix, r)),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_serve_throughput);
criterion_main!(benches);
