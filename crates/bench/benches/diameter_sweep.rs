//! Criterion bench behind Figures 6/16: update cost as a function of the
//! input diameter (Zipf attachment parameter).
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dyntree_bench::{build_destroy_time, Structure};
use dyntree_workloads::zipf_tree;

fn bench_diameter_sweep(c: &mut Criterion) {
    let n = 5_000;
    let mut group = c.benchmark_group("fig6_diameter_sweep");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_millis(1500));
    group.warm_up_time(std::time::Duration::from_millis(300));
    for alpha in [0.0f64, 1.0, 2.0] {
        let forest = zipf_tree(n, alpha, 11);
        for s in [
            Structure::LinkCut,
            Structure::Ufo,
            Structure::EttTreap,
            Structure::Topology,
        ] {
            group.bench_with_input(
                BenchmarkId::new(format!("{:?}", s), format!("alpha{alpha:.1}")),
                &forest,
                |b, forest| b.iter(|| build_destroy_time(s, forest, 5)),
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_diameter_sweep);
criterion_main!(benches);
