//! The immutable published view: a frozen component-labels array plus
//! per-component size and aggregate tables, so every query is O(1) array
//! reads with zero allocation.

use dyntree_primitives::algebra::{Agg, CommutativeMonoid, SumMinMax, WeightOf};

/// An answer stamped with the epoch it was read at.  Every [`ReadHandle`]
/// query returns one of these, so callers can always tell *which* published
/// version produced the answer (and correlate answers across queries by
/// comparing epochs).
///
/// [`ReadHandle`]: crate::ReadHandle
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Versioned<T> {
    /// The answer itself.
    pub value: T,
    /// Epoch of the snapshot that produced it.
    pub epoch: u64,
}

/// One immutable published version of the graph's connectivity state.
///
/// Built by the writer after each batch from the engine's canonical
/// component-labels dump
/// ([`export_component_labels`](dyntree_connectivity::DynConnectivity::export_component_labels)):
/// `labels[v]` is a dense component id in `0..components`, assigned in
/// order of first appearance by vertex id, so two snapshots of the same
/// graph are byte-identical regardless of backend or thread count.  Sizes
/// and monoid aggregates are pre-folded per component, making every query
/// a couple of array indexings — readers never allocate, never lock, and
/// never see a half-built state.
#[derive(Clone, Debug, PartialEq)]
pub struct Snapshot<M: CommutativeMonoid = SumMinMax> {
    /// Epoch id: the engine's batch counter when this snapshot was built
    /// (0 for the bootstrap snapshot of the empty engine).
    pub epoch: u64,
    /// Number of vertices.
    pub vertices: usize,
    /// Number of connected components (isolated vertices included).
    pub components: usize,
    /// Number of live edges (tree and non-tree).
    pub edges: usize,
    /// Dense component label per vertex, canonical by construction.
    pub labels: Vec<u32>,
    /// Vertices per component, indexed by label.
    pub comp_size: Vec<u64>,
    /// Monoid aggregate per component, indexed by label, folded from the
    /// serving layer's shadow weights.
    pub comp_agg: Vec<Agg<M>>,
}

impl<M: CommutativeMonoid> Snapshot<M> {
    /// The bootstrap snapshot of an engine with `n` isolated vertices.
    pub(crate) fn bootstrap(n: usize, weights: &[WeightOf<M>]) -> Self {
        debug_assert_eq!(weights.len(), n);
        Snapshot {
            epoch: 0,
            vertices: n,
            components: n,
            edges: 0,
            labels: (0..n as u32).collect(),
            comp_size: vec![1; n],
            comp_agg: weights.iter().map(|&w| Agg::vertex(w)).collect(),
        }
    }

    /// Builds the per-component tables from a labels dump and the shadow
    /// weights.  `labels` must be dense in `0..components`.
    pub(crate) fn from_labels(
        epoch: u64,
        components: usize,
        edges: usize,
        labels: Vec<u32>,
        weights: &[WeightOf<M>],
    ) -> Self {
        debug_assert_eq!(weights.len(), labels.len());
        let mut comp_size = vec![0u64; components];
        let mut comp_agg = vec![Agg::IDENTITY; components];
        for (v, &l) in labels.iter().enumerate() {
            let l = l as usize;
            comp_size[l] += 1;
            comp_agg[l] = Agg::combine(comp_agg[l], Agg::vertex(weights[v]));
        }
        Snapshot {
            epoch,
            vertices: labels.len(),
            components,
            edges,
            labels,
            comp_size,
            comp_agg,
        }
    }

    /// Whether `u` and `v` are connected in this snapshot.  Out-of-range
    /// vertices are connected to nothing, mirroring the engine's lenient
    /// query contract.
    #[inline]
    pub fn connected(&self, u: usize, v: usize) -> bool {
        u < self.vertices && v < self.vertices && (u == v || self.labels[u] == self.labels[v])
    }

    /// Dense component label of `v` (`None` when out of range).
    #[inline]
    pub fn component_label(&self, v: usize) -> Option<u32> {
        self.labels.get(v).copied()
    }

    /// Number of vertices in `v`'s component.  Out of range → 0, mirroring
    /// the engine.
    #[inline]
    pub fn component_size(&self, v: usize) -> u64 {
        match self.labels.get(v) {
            Some(&l) => self.comp_size[l as usize],
            None => 0,
        }
    }

    /// Monoid aggregate over `v`'s whole component (`None` when out of
    /// range).
    #[inline]
    pub fn component_agg(&self, v: usize) -> Option<Agg<M>> {
        self.labels.get(v).map(|&l| self.comp_agg[l as usize])
    }

    /// Approximate heap bytes owned by this snapshot's tables.
    pub fn memory_bytes(&self) -> usize {
        self.labels.capacity() * std::mem::size_of::<u32>()
            + self.comp_size.capacity() * std::mem::size_of::<u64>()
            + self.comp_agg.capacity() * std::mem::size_of::<Agg<M>>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bootstrap_is_all_singletons() {
        let w = [0i64, 5, -3];
        let s: Snapshot = Snapshot::bootstrap(3, &w);
        assert_eq!((s.epoch, s.vertices, s.components, s.edges), (0, 3, 3, 0));
        assert!(s.connected(1, 1));
        assert!(!s.connected(0, 1));
        assert_eq!(s.component_size(2), 1);
        assert_eq!(s.component_agg(1).unwrap().sum, 5);
        assert_eq!(s.component_agg(2).unwrap().min, -3);
    }

    #[test]
    fn from_labels_folds_sizes_and_aggregates() {
        // components {0,2} and {1}, weights 1/10/100
        let s: Snapshot = Snapshot::from_labels(4, 2, 1, vec![0, 1, 0], &[1, 10, 100]);
        assert_eq!(s.epoch, 4);
        assert!(s.connected(0, 2));
        assert!(!s.connected(0, 1));
        assert_eq!(s.component_size(0), 2);
        assert_eq!(s.component_size(1), 1);
        let a = s.component_agg(2).unwrap();
        assert_eq!((a.sum, a.min, a.max, a.count), (101, 1, 100, 2));
    }

    #[test]
    fn out_of_range_is_lenient() {
        let s: Snapshot = Snapshot::bootstrap(2, &[0, 0]);
        assert!(!s.connected(0, 9));
        assert!(!s.connected(9, 9));
        assert_eq!(s.component_size(9), 0);
        assert_eq!(s.component_agg(9), None);
        assert_eq!(s.component_label(9), None);
    }
}
