//! The writer: a [`DynConnectivity`] engine that publishes a snapshot after
//! every applied batch.

use std::sync::Arc;

use dyntree_connectivity::{DynConnectivity, SpanningBackend};
use dyntree_primitives::algebra::WeightOf;
use dyntree_primitives::ops::{BatchReport, GraphOp};
use dyntree_primitives::telemetry::Phase;
use dyntree_primitives::{ParallelConfig, Telemetry};

use crate::reader::ReadHandle;
use crate::ring::SnapshotRing;
use crate::snapshot::Snapshot;

/// Default number of epochs the ring retains.
pub const DEFAULT_RETENTION: usize = 8;

/// A [`DynConnectivity`] engine wrapped in the epoch-publication scheme:
/// [`apply`](Self::apply) runs the batch and publishes an immutable
/// [`Snapshot`] of the result, and [`reader`](Self::reader) hands out
/// concurrent query endpoints.
///
/// The serving layer owns a *shadow* copy of the vertex weights (updated
/// from the batch's `SetWeight` ops exactly as the engine validates them),
/// which is what lets snapshots answer `component_agg` for every backend —
/// including ones like link-cut trees whose live engine declines whole-tree
/// aggregates.
///
/// Builder-style configuration ([`with_retention`](Self::with_retention),
/// [`with_telemetry`](Self::with_telemetry),
/// [`with_parallel_config`](Self::with_parallel_config)) must run before
/// the first [`reader`](Self::reader) call: retention and telemetry rebuild
/// the shared ring, and handles created earlier would keep reading the old
/// one.
#[derive(Debug)]
pub struct ServingEngine<B: SpanningBackend> {
    engine: DynConnectivity<B>,
    ring: Arc<SnapshotRing<B::Weights>>,
    /// Shadow vertex weights mirroring the backend's, for snapshot
    /// aggregate folding.
    weights: Vec<WeightOf<B::Weights>>,
    retention: usize,
}

impl<B: SpanningBackend> ServingEngine<B> {
    /// A serving engine over `n` isolated vertices, with the epoch-0
    /// bootstrap snapshot already published.
    pub fn new(n: usize) -> Self {
        let engine: DynConnectivity<B> = DynConnectivity::new(n);
        let weights = vec![WeightOf::<B::Weights>::default(); n];
        let tel = engine.telemetry().clone();
        let ring = Arc::new(SnapshotRing::new(
            DEFAULT_RETENTION,
            Arc::new(Snapshot::bootstrap(n, &weights)),
            tel,
        ));
        ServingEngine {
            engine,
            ring,
            weights,
            retention: DEFAULT_RETENTION,
        }
    }

    /// Rebuilds the ring (construction-time builders only), carrying the
    /// latest snapshot over so the published epoch never regresses.
    fn rebuild_ring(&mut self) {
        let latest = self.ring.latest();
        self.ring = Arc::new(SnapshotRing::new(
            self.retention,
            latest,
            self.engine.telemetry().clone(),
        ));
    }

    /// Sets how many epochs the ring retains (clamped to ≥ 1).
    pub fn with_retention(mut self, k: usize) -> Self {
        self.retention = k.max(1);
        self.rebuild_ring();
        self
    }

    /// Replaces the engine's telemetry handle; reader-side counters
    /// (`reader_queries_served`, `stale_epoch_reads`) share its
    /// accumulators.
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.engine.set_telemetry(tel);
        self.rebuild_ring();
        self
    }

    /// Replaces the wrapped engine's parallel-execution tunables.
    pub fn with_parallel_config(mut self, cfg: ParallelConfig) -> Self {
        self.engine.set_parallel_config(cfg);
        self
    }

    /// Applies a batch and publishes the resulting snapshot.
    ///
    /// The snapshot is built inside the engine's `apply` phase span, under
    /// the `snapshot_build` child phase, so the phase tree reports build
    /// cost as part of apply wall — it is writer-side work a caller would
    /// otherwise misattribute.  The report's
    /// [`version`](BatchReport::version) is the epoch the snapshot was
    /// published at.
    pub fn apply(&mut self, ops: &[GraphOp<WeightOf<B::Weights>>]) -> BatchReport {
        let len_before = self.engine.len();
        let weights = &mut self.weights;
        let ring = &self.ring;
        self.engine.apply_with(ops, |eng| {
            let _build = eng.telemetry().span(Phase::SnapshotBuild);
            shadow_weights::<B>(weights, len_before, ops, eng);
            let mut labels = Vec::new();
            eng.export_component_labels(&mut labels);
            ring.publish(Arc::new(Snapshot::from_labels(
                eng.version(),
                eng.component_count(),
                eng.num_edges(),
                labels,
                weights,
            )));
        })
    }

    /// A new query endpoint over the latest published epoch.
    pub fn reader(&self) -> ReadHandle<B::Weights> {
        ReadHandle::new(Arc::clone(&self.ring))
    }

    /// The publication ring (epoch bookkeeping, pinned-read lookups).
    pub fn ring(&self) -> &SnapshotRing<B::Weights> {
        &self.ring
    }

    /// The latest published epoch.
    pub fn latest_epoch(&self) -> u64 {
        self.ring.latest_epoch()
    }

    /// The wrapped engine's batch counter (equals
    /// [`latest_epoch`](Self::latest_epoch): every apply publishes).
    pub fn version(&self) -> u64 {
        self.engine.version()
    }

    /// Read access to the wrapped engine.
    pub fn engine(&self) -> &DynConnectivity<B> {
        &self.engine
    }

    /// Runs the wrapped engine's full invariant sweep (testing aid; no
    /// mutable engine access is exposed otherwise — mutations must go
    /// through [`apply`](Self::apply) so every change is published).
    pub fn check_invariants(&mut self) -> Result<(), String> {
        self.engine.check_invariants()
    }

    /// Compares the full shadow weight table against the backend's
    /// per-vertex readback, reporting the first divergence.  `O(n)`; the
    /// release-mode counterpart of the debug assert `apply` runs after every
    /// batch — `fuzz_serve` calls it per batch so shadow drift fails the
    /// fuzz gate even in optimized builds.  Vacuously `Ok` for unweighted
    /// backends.
    pub fn verify_shadow_weights(&mut self) -> Result<(), String> {
        if !B::WEIGHTED {
            return Ok(());
        }
        for (v, &w) in self.weights.iter().enumerate() {
            let actual = self.engine.vertex_weight(v);
            if actual != Some(w) {
                return Err(format!(
                    "shadow weight of vertex {v} diverged: shadow {w:?}, backend {actual:?}"
                ));
            }
        }
        Ok(())
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.engine.len()
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.engine.is_empty()
    }

    /// The engine's memory breakdown with the `snapshots` line filled in:
    /// heap bytes of every epoch the ring currently retains.
    pub fn memory_breakdown(&self) -> dyntree_connectivity::MemoryBreakdown {
        let mut b = self.engine.memory_breakdown();
        b.snapshots = self.ring.memory_bytes();
        b
    }
}

/// Brings the shadow weights up to date with a just-applied batch.
///
/// `SetWeight` ops are replayed from the op stream, mirroring the engine's
/// own validation: `AddVertices` grows the id space mid-batch (with the
/// same overflow rejection), and a `SetWeight` lands iff its vertex is in
/// range *at that point in the batch* and the backend records weights.
///
/// The bulk ops (`PathApply` / `ComponentApply`) *cannot* be replayed that
/// way — which vertices they touch depends on the spanning forest's shape
/// at the moment each op ran, and the shadow table has no structure.  When
/// a batch contains any bulk op the whole table is re-based from the
/// backend's per-vertex readback instead (`O(n)`, only on such batches).
///
/// In debug builds the full table is cross-checked against the backend
/// after *every* batch, so any replay rule that drifts from engine
/// semantics fails loudly in `fuzz_serve` rather than silently serving
/// stale aggregates (DESIGN.md §11).
fn shadow_weights<B: SpanningBackend>(
    weights: &mut Vec<WeightOf<B::Weights>>,
    len_before: usize,
    ops: &[GraphOp<WeightOf<B::Weights>>],
    eng: &mut DynConnectivity<B>,
) {
    let len_after = eng.len();
    weights.resize(len_after, WeightOf::<B::Weights>::default());
    let mut len = len_before;
    let mut bulk = false;
    for op in ops {
        match *op {
            GraphOp::AddVertices(count) => {
                if let Some(target) = len.checked_add(count) {
                    len = target;
                }
            }
            GraphOp::SetWeight(v, w) => {
                if B::WEIGHTED && v < len {
                    weights[v] = w;
                }
            }
            GraphOp::PathApply(..) | GraphOp::ComponentApply(..) => bulk = true,
            GraphOp::InsertEdge(..) | GraphOp::DeleteEdge(..) => {}
        }
    }
    debug_assert_eq!(len, len_after, "shadow length diverged from the engine");
    if bulk && B::WEIGHTED {
        for (v, w) in weights.iter_mut().enumerate() {
            if let Some(actual) = eng.vertex_weight(v) {
                *w = actual;
            }
        }
    }
    #[cfg(debug_assertions)]
    if B::WEIGHTED {
        for (v, &w) in weights.iter().enumerate() {
            debug_assert_eq!(
                Some(w),
                eng.vertex_weight(v),
                "shadow weight of vertex {v} diverged from the backend"
            );
        }
    }
}
