//! Epoch-snapshot serving: lock-free concurrent reads over a writing engine.
//!
//! This crate turns a [`DynConnectivity`](dyntree_connectivity::DynConnectivity)
//! engine into a *service* (DESIGN.md §11): a single writer applies
//! [`GraphOp`](dyntree_primitives::ops::GraphOp) batches through a
//! [`ServingEngine`], and after every batch an immutable [`Snapshot`] of the
//! connectivity state is published — epoch id, vertex/component/edge counts,
//! and a frozen component-labels array, so every query against it is a
//! couple of array reads with zero allocation.  Cheaply cloneable
//! [`ReadHandle`]s answer `connected` / `component_size` / `component_agg`
//! against the latest published epoch while the next batch applies, each
//! answer stamped with its epoch ([`Versioned`]); a bounded [`SnapshotRing`]
//! retains the last K epochs so [`PinnedReader`]s can keep reading a
//! consistent old version, and asking for an evicted epoch is a typed
//! [`EpochRetired`] error, never a wrong answer.
//!
//! ## Publication protocol
//!
//! The writer builds each snapshot inside the batch's `apply` phase span
//! (under the `snapshot_build` child phase, so its cost is visible in the
//! phase tree), pushes it into the ring, and only then advances the
//! published epoch counter with a release store.  Readers poll that counter
//! with one acquire load per query: while no new epoch has been published —
//! the steady state — a read never touches a lock, just the atomic load and
//! the snapshot's arrays.  Catching up to a newer epoch clones one `Arc`
//! under the ring's mutex; the writer holds that mutex only for a
//! push/evict, never while building a snapshot, so the critical sections
//! are a few pointer moves.  (A fully lock-free slot swap would need
//! deferred reclamation to be sound; the bounded mutex here is the honest
//! trade and is invisible at the query fast path.)
//!
//! ## Equivalence contract
//!
//! Every answer at epoch E equals the naive oracle replayed to exactly
//! batch E — the `fuzz_serve` differential pins this across seeds and
//! reader counts.  Epochs are the engine's
//! [`version`](dyntree_connectivity::DynConnectivity::version) counter:
//! one per `apply` call, with epoch 0 the empty bootstrap snapshot.

mod engine;
mod reader;
mod ring;
mod snapshot;

pub use engine::{ServingEngine, DEFAULT_RETENTION};
pub use reader::{PinnedReader, ReadHandle};
pub use ring::{EpochRetired, SnapshotRing};
pub use snapshot::{Snapshot, Versioned};

/// Serving engine over the paper's UFO forest backend.
pub type UfoServingEngine = ServingEngine<ufo_forest::UfoForest>;

/// Serving engine over the `O(n)`-per-op oracle backend (tests).
pub type NaiveServingEngine = ServingEngine<dyntree_naive::NaiveForest>;
