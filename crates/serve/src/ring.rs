//! The bounded publication ring: the last K published snapshots plus the
//! release-stored epoch counter readers poll.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dyntree_primitives::algebra::{CommutativeMonoid, SumMinMax};
use dyntree_primitives::telemetry::Counter;
use dyntree_primitives::Telemetry;

use crate::snapshot::Snapshot;

/// Asking for an epoch the ring no longer (or does not yet) retain.
///
/// Returned by [`ReadHandle::at`](crate::ReadHandle::at): a pinned reader
/// keeps its own `Arc` alive for as long as it likes, but *acquiring* a pin
/// on an old epoch only works while the ring still holds it — a typed error,
/// never a silently wrong answer from a different epoch.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EpochRetired {
    /// The epoch that was asked for.
    pub requested: u64,
    /// Oldest epoch still retained by the ring.
    pub oldest_retained: u64,
    /// Latest published epoch (a `requested` above this was never
    /// published, rather than evicted).
    pub latest: u64,
}

impl std::fmt::Display for EpochRetired {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "epoch {} not retained (ring holds {}..={})",
            self.requested, self.oldest_retained, self.latest
        )
    }
}

impl std::error::Error for EpochRetired {}

/// The shared publication state: a bounded deque of the last K snapshots
/// (back = newest) and the atomic epoch counter that readers poll.
///
/// The writer pushes under the mutex and *then* advances the counter with a
/// release store, so a reader that observes the new epoch is guaranteed to
/// find (at least) that snapshot in the ring.  Reader fast paths never take
/// the mutex — only catching up to a newer epoch or pinning an old one
/// does, and the writer's critical section is a push plus an eviction, so
/// contention is a few pointer moves per *batch*, not per query.
#[derive(Debug)]
pub struct SnapshotRing<M: CommutativeMonoid = SumMinMax> {
    latest: AtomicU64,
    ring: Mutex<VecDeque<Arc<Snapshot<M>>>>,
    capacity: usize,
    tel: Telemetry,
}

impl<M: CommutativeMonoid> SnapshotRing<M> {
    /// A ring retaining up to `capacity` epochs (at least 1), seeded with
    /// the bootstrap snapshot.
    pub(crate) fn new(capacity: usize, bootstrap: Arc<Snapshot<M>>, tel: Telemetry) -> Self {
        let ring = SnapshotRing {
            latest: AtomicU64::new(bootstrap.epoch),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1) + 1)),
            capacity: capacity.max(1),
            tel,
        };
        ring.publish(bootstrap);
        ring
    }

    /// The reader-side telemetry handle (shares the engine's accumulators).
    pub(crate) fn tel(&self) -> &Telemetry {
        &self.tel
    }

    /// Publishes a snapshot: push, evict past capacity, then advance the
    /// epoch counter (release) so readers can observe it.
    pub(crate) fn publish(&self, snap: Arc<Snapshot<M>>) {
        let epoch = snap.epoch;
        {
            let mut ring = self.ring.lock().unwrap();
            debug_assert!(
                ring.back().is_none_or(|prev| prev.epoch < epoch),
                "publication must be monotone"
            );
            ring.push_back(snap);
            while ring.len() > self.capacity {
                ring.pop_front();
            }
        }
        self.latest.store(epoch, Ordering::Release);
        self.tel.incr(Counter::SnapshotsPublished);
    }

    /// The latest published epoch (acquire; pairs with the publish store).
    #[inline]
    pub fn latest_epoch(&self) -> u64 {
        self.latest.load(Ordering::Acquire)
    }

    /// The latest published snapshot.
    pub fn latest(&self) -> Arc<Snapshot<M>> {
        Arc::clone(self.ring.lock().unwrap().back().expect("ring never empty"))
    }

    /// The snapshot published at exactly `epoch`, or a typed
    /// [`EpochRetired`] when the ring evicted (or never published) it.
    pub fn at(&self, epoch: u64) -> Result<Arc<Snapshot<M>>, EpochRetired> {
        let ring = self.ring.lock().unwrap();
        ring.iter()
            .find(|s| s.epoch == epoch)
            .map(Arc::clone)
            .ok_or_else(|| EpochRetired {
                requested: epoch,
                oldest_retained: ring.front().expect("ring never empty").epoch,
                latest: ring.back().expect("ring never empty").epoch,
            })
    }

    /// Oldest epoch still retained.
    pub fn oldest_retained(&self) -> u64 {
        self.ring
            .lock()
            .unwrap()
            .front()
            .expect("ring never empty")
            .epoch
    }

    /// Number of snapshots currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().len()
    }

    /// Whether the ring holds no snapshots (never true: the bootstrap
    /// snapshot is published at construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Maximum number of epochs retained.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Approximate heap bytes of every retained snapshot's tables.
    pub fn memory_bytes(&self) -> usize {
        self.ring
            .lock()
            .unwrap()
            .iter()
            .map(|s| s.memory_bytes())
            .sum()
    }
}
