//! Reader handles: cheaply cloneable query endpoints over the published
//! snapshots, wait-free in the steady state.

use std::sync::Arc;

use dyntree_primitives::algebra::{Agg, CommutativeMonoid};
use dyntree_primitives::telemetry::Counter;

use crate::ring::{EpochRetired, SnapshotRing};
use crate::snapshot::{Snapshot, Versioned};

/// A query endpoint over the latest published epoch.
///
/// Cheap to clone (two `Arc`s) and `Send + Sync`-composed, so a serving
/// setup hands one to each reader thread.  Every query first catches the
/// cached snapshot up to the latest published epoch — one atomic acquire
/// load in the steady state, one brief ring lock only when the writer has
/// published since the last query — and then answers from the snapshot's
/// frozen arrays, stamping the answer with its epoch.  Queries take
/// `&mut self` solely for that cache refresh; the snapshots themselves are
/// immutable and shared.
#[derive(Clone, Debug)]
pub struct ReadHandle<M: CommutativeMonoid> {
    ring: Arc<SnapshotRing<M>>,
    cache: Arc<Snapshot<M>>,
}

impl<M: CommutativeMonoid> ReadHandle<M> {
    pub(crate) fn new(ring: Arc<SnapshotRing<M>>) -> Self {
        let cache = ring.latest();
        ReadHandle { ring, cache }
    }

    /// Catches the cached snapshot up to the latest published epoch.
    #[inline]
    fn refresh(&mut self) {
        if self.ring.latest_epoch() != self.cache.epoch {
            self.cache = self.ring.latest();
            self.ring.tel().incr(Counter::StaleEpochReads);
        }
    }

    /// The epoch this handle currently reads at (the latest published epoch
    /// as of its last query or refresh).
    pub fn epoch(&self) -> u64 {
        self.cache.epoch
    }

    /// The latest epoch the writer has published (this handle's next query
    /// will read at least this epoch).
    pub fn latest_epoch(&self) -> u64 {
        self.ring.latest_epoch()
    }

    /// Whether `u` and `v` are connected at the latest epoch.
    pub fn connected(&mut self, u: usize, v: usize) -> Versioned<bool> {
        self.refresh();
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.cache.connected(u, v),
            epoch: self.cache.epoch,
        }
    }

    /// Number of vertices in `v`'s component at the latest epoch (out of
    /// range → 0).
    pub fn component_size(&mut self, v: usize) -> Versioned<u64> {
        self.refresh();
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.cache.component_size(v),
            epoch: self.cache.epoch,
        }
    }

    /// Monoid aggregate over `v`'s component at the latest epoch (`None`
    /// when out of range).
    pub fn component_agg(&mut self, v: usize) -> Versioned<Option<Agg<M>>> {
        self.refresh();
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.cache.component_agg(v),
            epoch: self.cache.epoch,
        }
    }

    /// Pins the latest published epoch: the returned reader keeps answering
    /// at that epoch no matter how many newer ones the writer publishes.
    pub fn pin(&mut self) -> PinnedReader<M> {
        self.refresh();
        PinnedReader {
            ring: Arc::clone(&self.ring),
            snap: Arc::clone(&self.cache),
        }
    }

    /// Pins a specific epoch, if the ring still retains it.  Evicted (or
    /// never-published) epochs are a typed [`EpochRetired`] error — never a
    /// silently different epoch's answers.
    pub fn at(&self, epoch: u64) -> Result<PinnedReader<M>, EpochRetired> {
        self.ring.at(epoch).map(|snap| PinnedReader {
            ring: Arc::clone(&self.ring),
            snap,
        })
    }

    /// The latest published snapshot itself, for bulk read-side work that
    /// wants to index the frozen arrays directly.
    pub fn snapshot(&mut self) -> Arc<Snapshot<M>> {
        self.refresh();
        Arc::clone(&self.cache)
    }
}

/// A reader pinned to one epoch: its `Arc` keeps that snapshot alive even
/// after the ring evicts it, so answers stay consistent for as long as the
/// pin is held.  Queries take `&self` — a pinned reader never refreshes.
#[derive(Clone, Debug)]
pub struct PinnedReader<M: CommutativeMonoid> {
    ring: Arc<SnapshotRing<M>>,
    snap: Arc<Snapshot<M>>,
}

impl<M: CommutativeMonoid> PinnedReader<M> {
    /// The pinned epoch.
    pub fn epoch(&self) -> u64 {
        self.snap.epoch
    }

    /// Whether `u` and `v` are connected at the pinned epoch.
    pub fn connected(&self, u: usize, v: usize) -> Versioned<bool> {
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.snap.connected(u, v),
            epoch: self.snap.epoch,
        }
    }

    /// Number of vertices in `v`'s component at the pinned epoch.
    pub fn component_size(&self, v: usize) -> Versioned<u64> {
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.snap.component_size(v),
            epoch: self.snap.epoch,
        }
    }

    /// Monoid aggregate over `v`'s component at the pinned epoch.
    pub fn component_agg(&self, v: usize) -> Versioned<Option<Agg<M>>> {
        self.ring.tel().incr(Counter::ReaderQueriesServed);
        Versioned {
            value: self.snap.component_agg(v),
            epoch: self.snap.epoch,
        }
    }

    /// The pinned snapshot itself.
    pub fn snapshot(&self) -> &Snapshot<M> {
        &self.snap
    }
}
