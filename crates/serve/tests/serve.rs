//! Integration tests of the serving layer: epoch/oracle equivalence, pinned
//! readers, ring retention, and the 1-writer/8-reader stress test.
//!
//! The oracle here is deliberately independent of the serving machinery: a
//! plain edge set + weight array replayed batch by batch, with per-epoch
//! partitions computed by a union-find — the same canonical shape the fuzz
//! harness uses — so a bug in the labels export or the snapshot builder
//! cannot cancel itself out on the oracle side.

use std::collections::{HashMap, HashSet};
use std::sync::Arc;

use dyntree_primitives::algebra::{Agg, SumMinMax};
use dyntree_primitives::ops::GraphOp;
use dyntree_primitives::Dsu;
use dyntree_serve::{
    EpochRetired, NaiveServingEngine, PinnedReader, ReadHandle, ServingEngine, Snapshot,
    UfoServingEngine, Versioned,
};
use dyntree_workloads::{FuzzTraceGen, ServeMixGen, ServeQuery};

// ---------------------------------------------------------------------------
// The independent oracle
// ---------------------------------------------------------------------------

/// Graph state replayed with plain containers, mirroring the engine's
/// validation rules exactly (see `DynConnectivity::apply`).
///
/// `bulk` says whether the serving backend under test supports
/// `ComponentApply` (naive: yes, ufo: no — a declining backend leaves the
/// weights untouched, and so must the oracle).  `PathApply` is never
/// replayed here: the vertices it touches depend on the engine's spanning
/// forest *shape*, which an edge-set oracle cannot reconstruct, so serve
/// traces keep a zero path-apply rate and leave that op to the differential
/// harness (where every engine maintains the same forest).
#[derive(Clone, Default)]
struct Oracle {
    len: usize,
    edges: HashSet<(usize, usize)>,
    weights: Vec<i64>,
    bulk: bool,
}

/// Frozen per-epoch answers derived from an [`Oracle`].
struct OracleEpoch {
    len: usize,
    rep: Vec<usize>,
    size: HashMap<usize, u64>,
    agg: HashMap<usize, Agg<SumMinMax>>,
}

impl Oracle {
    fn apply(&mut self, ops: &[GraphOp]) {
        for op in ops {
            match *op {
                GraphOp::AddVertices(c) => {
                    if let Some(t) = self.len.checked_add(c) {
                        self.len = t;
                        self.weights.resize(t, 0);
                    }
                }
                GraphOp::InsertEdge(u, v) => {
                    if u != v && u < self.len && v < self.len {
                        self.edges.insert((u.min(v), u.max(v)));
                    }
                }
                GraphOp::DeleteEdge(u, v) => {
                    if u != v && u < self.len && v < self.len {
                        self.edges.remove(&(u.min(v), u.max(v)));
                    }
                }
                GraphOp::SetWeight(v, w) => {
                    if v < self.len {
                        self.weights[v] = w;
                    }
                }
                GraphOp::ComponentApply(v, delta) => {
                    if self.bulk && v < self.len {
                        for x in self.component_of(v) {
                            self.weights[x] = self.weights[x].saturating_add(delta);
                        }
                    }
                }
                GraphOp::PathApply(..) => {
                    debug_assert!(
                        !self.bulk,
                        "serve traces must not contain PathApply (structure-dependent)"
                    );
                }
            }
        }
    }

    /// All vertices reachable from `v` over the oracle's edge set (BFS).
    fn component_of(&self, v: usize) -> Vec<usize> {
        let mut adj: HashMap<usize, Vec<usize>> = HashMap::new();
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
            adj.entry(b).or_default().push(a);
        }
        let mut seen = HashSet::from([v]);
        let mut queue = vec![v];
        let mut out = vec![v];
        while let Some(x) = queue.pop() {
            for &y in adj.get(&x).map_or(&[][..], |n| n) {
                if seen.insert(y) {
                    out.push(y);
                    queue.push(y);
                }
            }
        }
        out
    }

    fn freeze(&self) -> OracleEpoch {
        let mut dsu = Dsu::new(self.len);
        for &(u, v) in &self.edges {
            dsu.union(u, v);
        }
        let rep: Vec<usize> = (0..self.len).map(|v| dsu.find(v)).collect();
        let mut size: HashMap<usize, u64> = HashMap::new();
        let mut agg: HashMap<usize, Agg<SumMinMax>> = HashMap::new();
        for (v, &r) in rep.iter().enumerate() {
            *size.entry(r).or_insert(0) += 1;
            let slot = agg.entry(r).or_insert(Agg::IDENTITY);
            *slot = Agg::combine(*slot, Agg::vertex(self.weights[v]));
        }
        OracleEpoch {
            len: self.len,
            rep,
            size,
            agg,
        }
    }
}

impl OracleEpoch {
    fn connected(&self, u: usize, v: usize) -> bool {
        u < self.len && v < self.len && (u == v || self.rep[u] == self.rep[v])
    }

    fn component_size(&self, v: usize) -> u64 {
        if v < self.len {
            self.size[&self.rep[v]]
        } else {
            0
        }
    }

    fn component_agg(&self, v: usize) -> Option<Agg<SumMinMax>> {
        if v < self.len {
            Some(self.agg[&self.rep[v]])
        } else {
            None
        }
    }
}

/// Replays the writer batches through the oracle, freezing one epoch table
/// per publication (index e = state after batch e; index 0 = bootstrap).
fn oracle_epochs(initial: usize, batches: &[Vec<GraphOp>], bulk: bool) -> Vec<OracleEpoch> {
    let mut oracle = Oracle {
        len: initial,
        weights: vec![0; initial],
        bulk,
        ..Default::default()
    };
    let mut out = Vec::with_capacity(batches.len() + 1);
    out.push(oracle.freeze());
    for batch in batches {
        oracle.apply(batch);
        out.push(oracle.freeze());
    }
    out
}

/// One recorded reader answer, checked against the oracle *at its epoch*.
enum Answer {
    Connected(ServeQuery, Versioned<bool>),
    Size(ServeQuery, Versioned<u64>),
    Agg(ServeQuery, Versioned<Option<Agg<SumMinMax>>>),
}

fn run_query(reader: &mut ReadHandle<SumMinMax>, q: ServeQuery) -> Answer {
    match q {
        ServeQuery::Connected(u, v) => Answer::Connected(q, reader.connected(u, v)),
        ServeQuery::ComponentSize(v) => Answer::Size(q, reader.component_size(v)),
        ServeQuery::ComponentAgg(v) => Answer::Agg(q, reader.component_agg(v)),
    }
}

fn check_answer(epochs: &[OracleEpoch], a: &Answer) {
    match *a {
        Answer::Connected(q, ans) => {
            let ServeQuery::Connected(u, v) = q else {
                unreachable!()
            };
            let oracle = &epochs[ans.epoch as usize];
            assert_eq!(
                ans.value,
                oracle.connected(u, v),
                "connected({u},{v}) diverged at epoch {}",
                ans.epoch
            );
        }
        Answer::Size(q, ans) => {
            let ServeQuery::ComponentSize(v) = q else {
                unreachable!()
            };
            let oracle = &epochs[ans.epoch as usize];
            assert_eq!(
                ans.value,
                oracle.component_size(v),
                "component_size({v}) diverged at epoch {}",
                ans.epoch
            );
        }
        Answer::Agg(q, ans) => {
            let ServeQuery::ComponentAgg(v) = q else {
                unreachable!()
            };
            let oracle = &epochs[ans.epoch as usize];
            assert_eq!(
                ans.value,
                oracle.component_agg(v),
                "component_agg({v}) diverged at epoch {}",
                ans.epoch
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Sequential equivalence and publication bookkeeping
// ---------------------------------------------------------------------------

#[test]
fn every_epoch_matches_the_oracle_sequentially() {
    // ufo declines bulk applies, so component applies in the trace must be
    // weight no-ops on both sides (bulk = false in the oracle)
    let batches = FuzzTraceGen::new(11)
        .with_ops(4_000)
        .with_bulk_applies(0.0, 0.01)
        .batches(64);
    let epochs = oracle_epochs(0, &batches, false);
    let mut serving = UfoServingEngine::new(0);
    let mut reader = serving.reader();
    for (i, batch) in batches.iter().enumerate() {
        let report = serving.apply(batch);
        assert_eq!(report.version, i as u64 + 1, "one epoch per apply");
        assert_eq!(serving.latest_epoch(), report.version);
        let oracle = &epochs[i + 1];
        for v in 0..serving.len() + 2 {
            let ans = reader.component_size(v);
            assert_eq!(ans.epoch, report.version);
            assert_eq!(
                ans.value,
                oracle.component_size(v),
                "size({v}) @ {}",
                ans.epoch
            );
            let agg = reader.component_agg(v);
            assert_eq!(
                agg.value,
                oracle.component_agg(v),
                "agg({v}) @ {}",
                agg.epoch
            );
        }
        for (u, v) in [(0, 1), (1, 5), (3, 17), (60, 61), (2, 300)] {
            assert_eq!(
                reader.connected(u, v).value,
                oracle.connected(u, v),
                "connected({u},{v})"
            );
        }
    }
}

#[test]
fn serving_works_over_the_oracle_backend_too() {
    // same trace, naive spanning backend: publication is backend-agnostic —
    // and this backend *supports* component applies, so the shadow table must
    // track the bulk updates (bulk = true in the oracle)
    let batches = FuzzTraceGen::new(23)
        .with_ops(1_500)
        .with_bulk_applies(0.0, 0.02)
        .batches(50);
    let epochs = oracle_epochs(0, &batches, true);
    let mut serving = NaiveServingEngine::new(0);
    let mut reader = serving.reader();
    for (i, batch) in batches.iter().enumerate() {
        serving.apply(batch);
        let oracle = &epochs[i + 1];
        for v in 0..serving.len() {
            assert_eq!(reader.component_size(v).value, oracle.component_size(v));
            assert_eq!(
                reader.component_agg(v).value,
                oracle.component_agg(v),
                "agg({v}) after batch {i}"
            );
        }
    }
}

#[test]
fn report_version_surfaces_in_display() {
    let mut serving = UfoServingEngine::new(0);
    let report = serving.apply(&[GraphOp::AddVertices(3), GraphOp::InsertEdge(0, 1)]);
    assert_eq!(report.version, 1);
    assert!(report.to_string().ends_with("| v1"), "{report}");
    let report = serving.apply(&[GraphOp::InsertEdge(1, 2)]);
    assert!(report.to_string().ends_with("| v2"), "{report}");
}

// ---------------------------------------------------------------------------
// Pinning and ring retention
// ---------------------------------------------------------------------------

#[test]
fn pinned_readers_survive_k_newer_publications() {
    let retention = 4;
    let mut serving = UfoServingEngine::new(0).with_retention(retention);
    serving.apply(&[
        GraphOp::AddVertices(6),
        GraphOp::InsertEdge(0, 1),
        GraphOp::InsertEdge(1, 2),
    ]);
    let mut reader = serving.reader();
    let pinned = reader.pin();
    assert_eq!(pinned.epoch(), 1);
    let before_sizes: Vec<u64> = (0..6).map(|v| pinned.component_size(v).value).collect();

    // churn far past the ring's retention: the pin must keep its epoch alive
    for i in 0..3 * retention as u64 {
        serving.apply(&[
            GraphOp::DeleteEdge(0, 1),
            GraphOp::InsertEdge(3, (i as usize % 2) + 4),
            GraphOp::InsertEdge(0, 1),
        ]);
    }
    assert!(serving.latest_epoch() > retention as u64);
    assert_eq!(pinned.epoch(), 1, "pin never moves");
    let after_sizes: Vec<u64> = (0..6).map(|v| pinned.component_size(v).value).collect();
    assert_eq!(before_sizes, after_sizes, "pinned answers are frozen");
    assert!(pinned.connected(0, 2).value);
    assert_eq!(pinned.connected(0, 2).epoch, 1);

    // the live handle meanwhile reads the latest epoch
    assert_eq!(reader.connected(0, 1).epoch, serving.latest_epoch());
}

#[test]
fn evicted_epochs_are_a_typed_error() {
    let retention = 3;
    let mut serving = UfoServingEngine::new(4).with_retention(retention);
    for i in 0..8u64 {
        serving.apply(&[GraphOp::SetWeight((i % 4) as usize, i as i64)]);
    }
    let reader = serving.reader();
    let latest = serving.latest_epoch();
    assert_eq!(latest, 8);
    assert_eq!(serving.ring().len(), retention);
    let oldest = serving.ring().oldest_retained();
    assert_eq!(oldest, latest - retention as u64 + 1);

    // retained epochs pin fine
    for e in oldest..=latest {
        assert_eq!(reader.at(e).unwrap().epoch(), e);
    }
    // evicted epoch: typed error carrying the retention window
    let err = reader.at(1).unwrap_err();
    assert_eq!(
        err,
        EpochRetired {
            requested: 1,
            oldest_retained: oldest,
            latest,
        }
    );
    assert!(err.to_string().contains("epoch 1 not retained"));
    // never-published (future) epoch: same typed refusal, never a guess
    assert_eq!(reader.at(latest + 5).unwrap_err().requested, latest + 5);
}

#[test]
fn retention_of_one_keeps_only_the_latest() {
    let mut serving = UfoServingEngine::new(2).with_retention(1);
    serving.apply(&[GraphOp::InsertEdge(0, 1)]);
    serving.apply(&[GraphOp::DeleteEdge(0, 1)]);
    assert_eq!(serving.ring().len(), 1);
    assert_eq!(serving.ring().oldest_retained(), 2);
    assert!(serving.reader().at(1).is_err());
}

// ---------------------------------------------------------------------------
// Memory accounting
// ---------------------------------------------------------------------------

#[test]
fn memory_breakdown_reports_snapshots_and_total_stays_consistent() {
    let mut serving = UfoServingEngine::new(0);
    serving.apply(&FuzzTraceGen::new(3).with_ops(800).generate());
    let b = serving.memory_breakdown();
    assert!(b.snapshots > 0, "retained snapshots own heap bytes");
    // total() must equal the sum of every line, snapshots included
    let sum = b.backend
        + b.adjacency_tree
        + b.adjacency_tree_levels
        + b.adjacency_nontree
        + b.edge_registry
        + b.scratch
        + b.snapshots;
    assert_eq!(b.total(), sum);
    assert!(b.to_string().contains("snapshots"), "{b}");

    // an unserved engine reports no snapshots line and a total without it
    let bare = serving.engine().memory_breakdown();
    assert_eq!(bare.snapshots, 0);
    assert!(!bare.to_string().contains("snapshots"), "{bare}");
    assert_eq!(b.total() - b.snapshots, bare.total());
}

// ---------------------------------------------------------------------------
// Concurrency: 1 writer, 8 readers, 20k ops
// ---------------------------------------------------------------------------

#[test]
fn stress_one_writer_eight_readers_20k_ops() {
    let readers = 8;
    let mix = ServeMixGen::new(77)
        .with_ops(20_000)
        .with_batch_size(64)
        .with_readers(readers)
        .with_queries_per_reader(3_000)
        .generate();
    let epochs = oracle_epochs(0, &mix.writer_batches, false);

    let mut serving = UfoServingEngine::new(0).with_retention(6);
    let handle = serving.reader();
    let recorded: Vec<Vec<Answer>> = std::thread::scope(|scope| {
        let joins: Vec<_> = mix
            .reader_queries
            .iter()
            .map(|stream| {
                let mut reader = handle.clone();
                scope.spawn(move || {
                    stream
                        .iter()
                        .map(|&q| run_query(&mut reader, q))
                        .collect::<Vec<Answer>>()
                })
            })
            .collect();
        for batch in &mix.writer_batches {
            serving.apply(batch);
        }
        joins.into_iter().map(|j| j.join().unwrap()).collect()
    });

    assert_eq!(serving.latest_epoch(), mix.writer_batches.len() as u64);
    let mut checked = 0usize;
    for stream in &recorded {
        let mut last_epoch = 0u64;
        for a in stream {
            check_answer(&epochs, a);
            let e = match a {
                Answer::Connected(_, v) => v.epoch,
                Answer::Size(_, v) => v.epoch,
                Answer::Agg(_, v) => v.epoch,
            };
            assert!(
                e >= last_epoch,
                "epochs observed by one reader are monotone"
            );
            last_epoch = e;
            checked += 1;
        }
    }
    assert_eq!(checked, readers * 3_000);
}

// ---------------------------------------------------------------------------
// API contracts
// ---------------------------------------------------------------------------

#[test]
fn handles_are_send_sync_and_cheap_to_clone() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ReadHandle<SumMinMax>>();
    assert_send_sync::<PinnedReader<SumMinMax>>();
    assert_send_sync::<Arc<Snapshot<SumMinMax>>>();
    assert_send_sync::<ServingEngine<ufo_forest::UfoForest>>();
}

#[test]
fn weight_mutations_reach_readers_only_through_apply() {
    // The epoch contract (DESIGN.md §11): an epoch is a *batch* boundary.
    // `ServingEngine` exposes the engine read-only (`engine()` returns a
    // shared reference), so every weight-mutating path — `SetWeight` and the
    // bulk applies included — goes through `apply`, which is exactly what
    // makes the published snapshots complete.  A singleton mutator like
    // `try_set_weight` does not bump `version()`, so a weight change outside
    // `apply` would be unobservable through serve; the type system rules it
    // out here, and this test pins the observable half of the contract.
    let mut serving = NaiveServingEngine::new(0);
    serving.apply(&[
        GraphOp::AddVertices(4),
        GraphOp::InsertEdge(0, 1),
        GraphOp::SetWeight(0, 5),
        GraphOp::SetWeight(1, 7),
    ]);
    let v1 = serving.latest_epoch();
    assert_eq!(serving.version(), v1, "engine version IS the epoch");
    let mut reader = serving.reader();
    let before = reader.component_agg(0).value.unwrap();
    assert_eq!(before.sum, 12);

    // a bulk update is routed through apply: one new epoch, visible at once
    let report = serving.apply(&[GraphOp::ComponentApply(0, 10)]);
    assert_eq!(report.version, v1 + 1, "bulk batch publishes a new epoch");
    assert_eq!(serving.version(), report.version);
    let after = reader.component_agg(0);
    assert_eq!(after.epoch, report.version);
    assert_eq!(after.value.unwrap().sum, 12 + 2 * 10);

    // a pinned reader at the old epoch still sees the pre-update weights
    let pinned = reader.at(v1).unwrap();
    assert_eq!(pinned.component_agg(0).value.unwrap().sum, 12);
}

#[test]
fn serving_answers_component_agg_for_path_only_backends() {
    // link-cut trees decline whole-tree aggregates live; the snapshot's
    // shadow-weight fold answers them anyway
    let mut serving: ServingEngine<dyntree_linkcut::LinkCutForest> = ServingEngine::new(0);
    serving.apply(&[
        GraphOp::AddVertices(3),
        GraphOp::InsertEdge(0, 1),
        GraphOp::SetWeight(0, 5),
        GraphOp::SetWeight(1, 7),
    ]);
    let mut reader = serving.reader();
    let agg = reader.component_agg(0).value.unwrap();
    assert_eq!((agg.sum, agg.count), (12, 2));
    assert_eq!(reader.component_size(0).value, 2);
}
