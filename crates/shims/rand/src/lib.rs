//! Offline stand-in for the `rand` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external crates the code depends on are vendored as minimal shims under
//! `crates/shims/` (wired in by path in every manifest).  This one implements
//! exactly the subset of the rand 0.9 API the workspace uses:
//!
//! * [`SeedableRng::seed_from_u64`] / [`rngs::StdRng`]
//! * [`Rng::random`] (for `u64` and `f64`), [`Rng::random_bool`],
//!   [`Rng::random_range`] over integer and `f64` ranges
//! * [`seq::SliceRandom::shuffle`]
//!
//! The generator is xoshiro256** seeded through SplitMix64 — a different
//! stream than the real `StdRng` (ChaCha12), but every consumer in this
//! workspace only relies on *determinism for a given seed*, never on matching
//! rand's exact stream.  Swapping the real crate back in is a one-line
//! manifest change per crate.

/// Types that can seed and construct a generator.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing sampling interface, mirroring `rand::Rng`.
pub trait Rng {
    /// Returns the next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of a type with a standard uniform distribution
    /// (`u64` over its full range, `f64` uniform in `[0, 1)`).
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self.next_u64()) < p
    }

    /// Samples uniformly from a range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_with(&mut || self.next_u64())
    }
}

/// Marker for types samplable from 64 raw bits.
pub trait Standard {
    /// Maps 64 uniform bits to a uniform value of `Self`.
    fn sample(bits: u64) -> Self;
}

impl Standard for u64 {
    fn sample(bits: u64) -> Self {
        bits
    }
}

impl Standard for f64 {
    fn sample(bits: u64) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value from the range using the generator's raw bits.
    fn sample_with(self, bits: &mut dyn FnMut() -> u64) -> T;
}

pub mod rngs {
    //! Concrete generators.

    use super::SeedableRng;

    /// Deterministic xoshiro256** generator (stand-in for rand's `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl StdRng {
        pub(crate) fn step(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.step()
        }
    }
}

pub mod seq {
    //! Sequence-related helpers.

    use super::Rng;

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_with(self, bits: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = bits() as u128 % span;
                (self.start as i128 + r as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_with(self, bits: &mut dyn FnMut() -> u64) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let r = bits() as u128 % span;
                (start as i128 + r as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_with(self, bits: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(bits()) * (self.end - self.start)
    }
}
