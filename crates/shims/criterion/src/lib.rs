//! Offline stand-in for the `criterion` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external crates the code depends on are vendored as minimal shims under
//! `crates/shims/`.  This one keeps criterion's macro and builder surface
//! (`criterion_group!`, `criterion_main!`, benchmark groups, `BenchmarkId`,
//! `Bencher::iter`) but replaces the statistics engine with a plain
//! mean-over-samples timer that prints one line per benchmark:
//!
//! ```text
//! group/function/param ... <mean> per iter (<samples> samples)
//! ```
//!
//! When invoked with `--test` (as `cargo test` does for `harness = false`
//! bench targets) every benchmark body runs exactly once, so benches double
//! as smoke tests.  Swapping the real crate back in is a one-line manifest
//! change per crate.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity, mirroring `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier of one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// A `function/parameter` id.
    pub fn new<F: ToString, P: ToString>(function: F, parameter: P) -> Self {
        Self {
            name: format!("{}/{}", function.to_string(), parameter.to_string()),
        }
    }

    /// An id from a parameter alone.
    pub fn from_parameter<P: ToString>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Timing loop handed to benchmark closures.
pub struct Bencher {
    /// Measured samples, appended by [`Bencher::iter`].
    samples: Vec<Duration>,
    sample_size: usize,
    test_mode: bool,
}

impl Bencher {
    /// Times `f`, running it once per sample (plus one warm-up), or exactly
    /// once in `--test` mode.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            self.samples.push(Duration::ZERO);
            return;
        }
        black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a Criterion,
    name: String,
    sample_size: usize,
}

impl<'a> BenchmarkGroup<'a> {
    /// Sets the number of samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for API compatibility; the shim is not time-budgeted.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim warms up exactly once.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility (`Throughput` reporting is not
    /// implemented; report ops/s inside the benchmark instead).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs a benchmark over one input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = self.bencher();
        f(&mut b, input);
        self.report(&id.name, &b);
        self
    }

    /// Runs a benchmark with no input.
    pub fn bench_function<F>(&mut self, id: impl ToString, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = self.bencher();
        f(&mut b);
        self.report(&id.to_string(), &b);
        self
    }

    /// Ends the group (printing happens per benchmark).
    pub fn finish(&mut self) {}

    fn bencher(&self) -> Bencher {
        Bencher {
            samples: Vec::new(),
            sample_size: if self.criterion.test_mode {
                1
            } else {
                self.sample_size
            },
            test_mode: self.criterion.test_mode,
        }
    }

    fn report(&self, bench_name: &str, b: &Bencher) {
        // Standalone benches (empty group name) report a bare id, matching
        // real criterion's `bench_function` output.
        let label = if self.name.is_empty() {
            bench_name.to_string()
        } else {
            format!("{}/{}", self.name, bench_name)
        };
        if self.criterion.test_mode {
            println!("test {label} ... ok (smoke)");
            return;
        }
        let n = b.samples.len().max(1) as u32;
        let mean = b.samples.iter().sum::<Duration>() / n;
        println!(
            "{label} ... {:?} per iter ({} samples)",
            mean,
            b.samples.len()
        );
    }
}

/// Throughput hint (accepted, not reported — see [`BenchmarkGroup::throughput`]).
#[derive(Clone, Debug)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The harness entry point.
pub struct Criterion {
    test_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo passes `--bench` only under `cargo bench`; under `cargo test`
        // (which runs `harness = false` bench targets once to verify them)
        // the flag is absent, and `--test` may be passed explicitly.  Mirror
        // real criterion: benchmark only when invoked for benchmarking.
        let args: Vec<String> = std::env::args().collect();
        let test_mode = args.iter().any(|a| a == "--test") || !args.iter().any(|a| a == "--bench");
        Self { test_mode }
    }
}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl ToString) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark (reported under its bare name).
    pub fn bench_function<F>(&mut self, name: impl ToString, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = name.to_string();
        self.benchmark_group("").bench_function(name, f);
        self
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
