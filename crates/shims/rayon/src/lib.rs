//! Offline stand-in for the `rayon` crate, backed by a **real thread pool**.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external crates the code depends on are vendored as minimal shims under
//! `crates/shims/`.  Earlier revisions of this shim mapped the parallel
//! operations onto plain sequential iterators; this revision executes them on
//! a lazily-initialized global pool of `std::thread` workers:
//!
//! * [`join`] forks its right-hand closure onto the pool and runs the left
//!   one on the calling thread, which then *helps* (runs queued work) until
//!   both sides finish — nested joins on pool workers are fine,
//! * `par_iter()` / `into_par_iter()` return a [`ParallelIterator`] whose
//!   `map`/`filter`/`flat_map_iter`/`for_each`/`collect` fan contiguous
//!   index chunks out to the pool and reassemble results **in input order**,
//! * `par_sort*` run a parallel stable merge sort (chunk sort + pairwise
//!   merge rounds over an index permutation),
//! * [`current_num_threads`] reports the true pool size, so the workspace's
//!   `worth_parallel` grain checks route large batches down the parallel
//!   paths and small ones down the sequential paths.
//!
//! # Pool size
//!
//! The pool is created on first use.  Its size comes from the
//! `DYNTREE_THREADS` environment variable when set (clamped to ≥ 1), else
//! from [`std::thread::available_parallelism`].  A size of 1 spawns no
//! worker threads at all: every operation degenerates to the plain
//! sequential implementation on the calling thread.
//! [`ThreadPoolBuilder::build_global`] can fix the size programmatically
//! before first use (benchmark binaries use this to guarantee headroom).
//!
//! # Determinism contract
//!
//! Every combinator here is deterministic and order-preserving: `collect`
//! concatenates per-chunk results in index order, and the sorts produce the
//! *stable* permutation under the comparator (ties broken by original index)
//! at every thread count and chunk split.  Consequently results are
//! bit-for-bit identical to the 1-thread run.  The one caveat mirrors real
//! rayon: `par_sort_unstable*` on values that compare equal yet are
//! distinguishable may order those values differently from `std`'s unstable
//! sort — every call site in this workspace sorts values whose equal
//! elements are identical, so the workspace-wide byte-identical guarantee
//! holds.  Swapping the real crate back in is a one-line manifest change per
//! crate.

use std::cmp::Ordering;
use std::ops::Range;

mod pool;

pub use pool::{current_num_threads, GlobalPoolAlreadyInitialized, ThreadPoolBuilder};
#[cfg(feature = "telemetry")]
pub use pool::{global_pool_metrics, reset_global_pool_metrics, PoolMetrics};

/// Runs both closures, potentially in parallel, and returns both results.
///
/// The right-hand closure is offered to the pool; the calling thread runs
/// the left one and then helps execute queued work until both finish, so
/// nesting `join` inside `join` (including on pool workers) cannot
/// deadlock.  A panic in either closure is captured and resumed on the
/// caller once both sides have stopped touching borrowed state.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    pool::join_in(pool::global(), oper_a, oper_b)
}

// ---------------------------------------------------------------------------
// Parallel iterators
// ---------------------------------------------------------------------------

/// A chunked, order-preserving parallel iterator over an indexable source.
///
/// Unlike `std::iter::Iterator` this is not a pull-based stream: consumers
/// (`collect`, `for_each`) split the index space `0..base_len()` into
/// contiguous chunks, run the whole adaptor pipeline over each chunk on the
/// pool, and reassemble per-chunk output in index order.
pub trait ParallelIterator: Sized + Sync {
    /// The element type produced by the pipeline.
    type Item: Send;

    /// Number of *base* indices driving the pipeline (items produced may be
    /// fewer after `filter` or more after `flat_map_iter`).
    fn base_len(&self) -> usize;

    /// Runs the pipeline sequentially over base indices `lo..hi`, feeding
    /// every produced item to `sink` in order.
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item));

    /// Transforms every item with `f` (rayon's `map`).
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync,
    {
        Map { base: self, f }
    }

    /// Keeps the items for which `f` returns `true` (rayon's `filter`).
    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync,
    {
        Filter { base: self, f }
    }

    /// Flat-maps every item through a *serial* inner iterator (rayon's
    /// `flat_map_iter`).
    fn flat_map_iter<U, F>(self, f: F) -> FlatMapIter<Self, F>
    where
        U: IntoIterator,
        U::Item: Send,
        F: Fn(Self::Item) -> U + Sync,
    {
        FlatMapIter { base: self, f }
    }

    /// Runs `f` on every item, in parallel across chunks.  Within a chunk
    /// items are visited in order; across chunks the interleaving is
    /// unspecified (as in rayon), so side effects must be independent.
    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync,
    {
        let p = pool::global();
        let n = self.base_len();
        if p.threads() <= 1 || n <= 1 {
            self.run_range(0, n, &mut |x| f(x));
            return;
        }
        let ranges = chunk_ranges(n, chunk_count(n, p.threads()));
        let this = &self;
        let f = &f;
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = ranges
            .into_iter()
            .map(|(lo, hi)| {
                Box::new(move || this.run_range(lo, hi, &mut |x| f(x)))
                    as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        p.run_all(tasks);
    }

    /// Collects every produced item, **in input order**, into `C`.
    fn collect<C>(self) -> C
    where
        C: From<Vec<Self::Item>>,
    {
        let p = pool::global();
        let n = self.base_len();
        if p.threads() <= 1 || n <= 1 {
            let mut out = Vec::new();
            self.run_range(0, n, &mut |x| out.push(x));
            return C::from(out);
        }
        let ranges = chunk_ranges(n, chunk_count(n, p.threads()));
        let mut parts: Vec<Vec<Self::Item>> = ranges.iter().map(|_| Vec::new()).collect();
        {
            let this = &self;
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = parts
                .iter_mut()
                .zip(ranges)
                .map(|(slot, (lo, hi))| {
                    Box::new(move || {
                        let mut local = Vec::with_capacity(hi - lo);
                        this.run_range(lo, hi, &mut |x| local.push(x));
                        *slot = local;
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            p.run_all(tasks);
        }
        let mut out = Vec::with_capacity(parts.iter().map(Vec::len).sum());
        for part in parts {
            out.extend(part);
        }
        C::from(out)
    }

    /// Number of items the pipeline produces.
    fn count(self) -> usize {
        let v: Vec<Self::Item> = self.collect();
        v.len()
    }
}

/// How many chunks to fan `n` items out into on a `threads`-sized pool: a
/// couple of chunks per worker for load balancing, never more than `n`.
fn chunk_count(n: usize, threads: usize) -> usize {
    n.min(threads.saturating_mul(2)).max(1)
}

/// Splits `0..n` into `chunks` contiguous ranges differing in length by at
/// most one.
fn chunk_ranges(n: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let base = n / chunks;
    let rem = n % chunks;
    let mut ranges = Vec::with_capacity(chunks);
    let mut lo = 0;
    for i in 0..chunks {
        let hi = lo + base + usize::from(i < rem);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Borrowed-slice base iterator (the result of `par_iter`).
pub struct ParSlice<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParSlice<'a, T> {
    type Item = &'a T;
    fn base_len(&self) -> usize {
        self.slice.len()
    }
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(Self::Item)) {
        for x in &self.slice[lo..hi] {
            sink(x);
        }
    }
}

/// Index-range base iterator (the result of `(0..n).into_par_iter()`).
pub struct ParRange {
    range: Range<usize>,
}

impl ParallelIterator for ParRange {
    type Item = usize;
    fn base_len(&self) -> usize {
        self.range.end.saturating_sub(self.range.start)
    }
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(usize)) {
        for i in self.range.start + lo..self.range.start + hi {
            sink(i);
        }
    }
}

/// `map` adaptor.
pub struct Map<P, F> {
    base: P,
    f: F,
}

impl<P, R, F> ParallelIterator for Map<P, F>
where
    P: ParallelIterator,
    R: Send,
    F: Fn(P::Item) -> R + Sync,
{
    type Item = R;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(R)) {
        self.base.run_range(lo, hi, &mut |x| sink((self.f)(x)));
    }
}

/// `filter` adaptor.
pub struct Filter<P, F> {
    base: P,
    f: F,
}

impl<P, F> ParallelIterator for Filter<P, F>
where
    P: ParallelIterator,
    F: Fn(&P::Item) -> bool + Sync,
{
    type Item = P::Item;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(P::Item)) {
        self.base.run_range(lo, hi, &mut |x| {
            if (self.f)(&x) {
                sink(x);
            }
        });
    }
}

/// `flat_map_iter` adaptor.
pub struct FlatMapIter<P, F> {
    base: P,
    f: F,
}

impl<P, U, F> ParallelIterator for FlatMapIter<P, F>
where
    P: ParallelIterator,
    U: IntoIterator,
    U::Item: Send,
    F: Fn(P::Item) -> U + Sync,
{
    type Item = U::Item;
    fn base_len(&self) -> usize {
        self.base.base_len()
    }
    fn run_range(&self, lo: usize, hi: usize, sink: &mut dyn FnMut(U::Item)) {
        self.base.run_range(lo, hi, &mut |x| {
            for y in (self.f)(x) {
                sink(y);
            }
        });
    }
}

/// Borrowing parallel iteration over slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: Send + 'a;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel counterpart of `iter()`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        ParSlice { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParSlice<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        ParSlice { slice: self }
    }
}

/// Consuming parallel iteration.
pub trait IntoParallelIterator {
    /// The element type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Parallel counterpart of `into_iter()`.
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = ParRange;
    fn into_par_iter(self) -> ParRange {
        ParRange { range: self }
    }
}

// ---------------------------------------------------------------------------
// Parallel sorts
// ---------------------------------------------------------------------------

/// Below this length the sorts stay on the calling thread: splitting tiny
/// slices costs more in scheduling than it saves.
const SORT_GRAIN: usize = 4 * 1024;

/// Parallel slice sorts, mirroring rayon's `ParallelSliceMut`.
///
/// All four sorts produce the **stable** permutation under their comparator
/// (ties broken by original index), at every thread count; see the module
/// docs for the determinism contract.
pub trait ParallelSliceMut<T: Send + Sync> {
    /// Parallel stable sort.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// Parallel sort; produces the stable permutation (see module docs).
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// Parallel stable sort by key.
    fn par_sort_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
    /// Parallel sort by key; produces the stable permutation.
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync;
}

impl<T: Send + Sync> ParallelSliceMut<T> for [T] {
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        par_stable_sort_in(pool::global(), self, &|a: &T, b: &T| a.cmp(b), SORT_GRAIN);
    }
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        par_stable_sort_in(pool::global(), self, &|a: &T, b: &T| a.cmp(b), SORT_GRAIN);
    }
    fn par_sort_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_stable_sort_in(
            pool::global(),
            self,
            &|a: &T, b: &T| f(a).cmp(&f(b)),
            SORT_GRAIN,
        );
    }
    fn par_sort_unstable_by_key<K, F>(&mut self, f: F)
    where
        K: Ord,
        F: Fn(&T) -> K + Sync,
    {
        par_stable_sort_in(
            pool::global(),
            self,
            &|a: &T, b: &T| f(a).cmp(&f(b)),
            SORT_GRAIN,
        );
    }
}

/// Parallel stable merge sort of `v` under `cmp` on `pool`.
///
/// Strategy: sort an index permutation (chunk-local `std` sorts in parallel,
/// then pairwise parallel merge rounds), then apply the permutation with a
/// single pass of moves.  Sorting *indices* keeps the hot unsafe code
/// trivially panic-safe: the user comparator only ever runs while `v` is
/// untouched, so an unwinding comparator leaves `v` exactly as it was.
/// Indices are made a total order by breaking comparator ties with the
/// original position, which is what makes the result the stable permutation
/// independent of chunk boundaries.
fn par_stable_sort_in<T: Send + Sync>(
    pool: &pool::Pool,
    v: &mut [T],
    cmp: &(dyn Fn(&T, &T) -> Ordering + Sync),
    grain: usize,
) {
    let n = v.len();
    if pool.threads() <= 1 || n < grain.max(2) {
        // std's stable sort yields the same permutation the parallel path
        // computes, so crossing the grain keeps output byte-identical.
        v.sort_by(cmp);
        return;
    }

    let chunks = pool.threads().min(n.div_ceil(grain / 2).max(2));
    let ranges = chunk_ranges(n, chunks);
    let mut idx: Vec<usize> = (0..n).collect();
    let shared: &[T] = v;
    // `le(i, j)`: does index i sort at-or-before index j?  Total order via
    // the index tiebreak.
    let le = |i: usize, j: usize| match cmp(&shared[i], &shared[j]) {
        Ordering::Less => true,
        Ordering::Greater => false,
        Ordering::Equal => i <= j,
    };

    // Phase 1: sort each index chunk on the pool.
    {
        let mut rest: &mut [usize] = &mut idx;
        let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::with_capacity(chunks);
        for &(lo, hi) in &ranges {
            let (chunk, tail) = std::mem::take(&mut rest).split_at_mut(hi - lo);
            rest = tail;
            tasks.push(Box::new(move || {
                chunk
                    .sort_unstable_by(|&i, &j| cmp(&shared[i], &shared[j]).then_with(|| i.cmp(&j)));
            }));
        }
        pool.run_all(tasks);
    }

    // Phase 2: pairwise merge rounds, ping-ponging between idx and scratch.
    let mut scratch: Vec<usize> = vec![0; n];
    let mut runs: Vec<(usize, usize)> = ranges;
    let mut src_is_idx = true;
    while runs.len() > 1 {
        let mut next_runs = Vec::with_capacity(runs.len().div_ceil(2));
        {
            let (src, dst): (&[usize], &mut [usize]) = if src_is_idx {
                (&idx, &mut scratch)
            } else {
                (&scratch, &mut idx)
            };
            let mut tasks: Vec<Box<dyn FnOnce() + Send + '_>> = Vec::new();
            let mut dst_rest: &mut [usize] = dst;
            let mut consumed = 0;
            for duo in runs.chunks(2) {
                let (lo, hi) = (duo[0].0, duo[duo.len() - 1].1);
                let (dst_part, tail) = std::mem::take(&mut dst_rest).split_at_mut(hi - lo);
                dst_rest = tail;
                consumed = hi;
                next_runs.push((lo, hi));
                if duo.len() == 1 {
                    let run = &src[lo..hi];
                    tasks.push(Box::new(move || dst_part.copy_from_slice(run)));
                } else {
                    let mid = duo[0].1;
                    let (left, right) = (&src[lo..mid], &src[mid..hi]);
                    let le = &le;
                    tasks.push(Box::new(move || merge_runs(left, right, dst_part, le)));
                }
            }
            debug_assert_eq!(consumed, n);
            pool.run_all(tasks);
        }
        runs = next_runs;
        src_is_idx = !src_is_idx;
    }
    let sorted: &[usize] = if src_is_idx { &idx } else { &scratch };

    // Phase 3: apply the permutation with one pass of bitwise moves.  No
    // user code runs in here, so every element is read exactly once and
    // written exactly once with no unwind in between.
    let mut tmp: Vec<T> = Vec::with_capacity(n);
    unsafe {
        for &i in sorted {
            // SAFETY: `sorted` is a permutation of 0..n, so each slot of `v`
            // is read (moved out) exactly once, within capacity.
            tmp.push(std::ptr::read(&v[i]));
        }
        // SAFETY: moves the n initialized elements back over `v`; `tmp` then
        // forgets them (set_len(0)) so nothing is dropped twice.
        std::ptr::copy_nonoverlapping(tmp.as_ptr(), v.as_mut_ptr(), n);
        tmp.set_len(0);
    }
}

/// Sequential merge of two sorted index runs into `dst` under the total
/// order `le`.
fn merge_runs(
    left: &[usize],
    right: &[usize],
    dst: &mut [usize],
    le: &dyn Fn(usize, usize) -> bool,
) {
    debug_assert_eq!(left.len() + right.len(), dst.len());
    let (mut i, mut j) = (0, 0);
    for slot in dst.iter_mut() {
        let take_left = if i == left.len() {
            false
        } else if j == right.len() {
            true
        } else {
            le(left[i], right[j])
        };
        if take_left {
            *slot = left[i];
            i += 1;
        } else {
            *slot = right[j];
            j += 1;
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIterator, ParallelSliceMut,
    };
}

#[cfg(test)]
mod tests {
    use super::pool::{join_in, Pool};
    use super::prelude::*;
    use super::*;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    /// A private 4-worker pool so the tests exercise real cross-thread
    /// execution regardless of `DYNTREE_THREADS` in the environment.
    fn test_pool() -> Pool {
        Pool::start(4)
    }

    #[test]
    fn join_returns_both_results() {
        assert_eq!(join(|| 1 + 1, || "b"), (2, "b"));
        let p = test_pool();
        assert_eq!(join_in(&p, || 40 + 2, || vec![7; 3]), (42, vec![7; 3]));
    }

    #[test]
    fn join_propagates_left_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let p = test_pool();
            join_in(&p, || panic!("left boom"), || 1)
        }));
        let payload = r.unwrap_err();
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "left boom");
    }

    #[test]
    fn join_propagates_right_panic() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            let p = test_pool();
            join_in(&p, || 1, || panic!("right boom"))
        }));
        assert!(r.is_err(), "right-side panic must cross join");
    }

    #[test]
    fn nested_join_on_pool_workers() {
        // Three levels of nesting: the inner joins run on whatever worker
        // picked up the outer closure, which must help instead of blocking.
        let p = test_pool();
        let (a, (b, c)) = join_in(
            &p,
            || join_in(&p, || 1, || 2),
            || join_in(&p, || join_in(&p, || 3, || 4), || join_in(&p, || 5, || 6)),
        );
        assert_eq!(a, (1, 2));
        assert_eq!(b, (3, 4));
        assert_eq!(c, (5, 6));
    }

    #[test]
    fn deep_join_recursion_completes() {
        let p = Pool::start(3);
        fn sum(p: &Pool, lo: u64, hi: u64) -> u64 {
            if hi - lo <= 8 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join_in(p, || sum(p, lo, mid), || sum(p, mid, hi));
                a + b
            }
        }
        assert_eq!(sum(&p, 0, 1000), 499_500);
    }

    #[test]
    fn par_iter_map_collect_preserves_order() {
        let input: Vec<u64> = (0..10_000).collect();
        let doubled: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(doubled, (0..10_000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn par_iter_filter_map_matches_sequential() {
        let input: Vec<(usize, usize)> = (0..5000).map(|i| (i % 7, i)).collect();
        let par: Vec<usize> = input
            .par_iter()
            .filter(|(k, _)| *k != 3)
            .map(|&(_, v)| v)
            .collect();
        let seq: Vec<usize> = input
            .iter()
            .filter(|(k, _)| *k != 3)
            .map(|&(_, v)| v)
            .collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn flat_map_iter_concatenates_in_order() {
        let chains: Vec<Vec<u32>> = (0..100).map(|i| vec![i; (i % 4) as usize]).collect();
        let par: Vec<u32> = chains.par_iter().flat_map_iter(|c| c.clone()).collect();
        let seq: Vec<u32> = chains.iter().flat_map(|c| c.clone()).collect();
        assert_eq!(par, seq);
    }

    #[test]
    fn empty_and_singleton_sources() {
        let empty: Vec<u8> = Vec::new();
        let out: Vec<u8> = empty.par_iter().map(|&x| x).collect();
        assert!(out.is_empty());
        let one = [42u8];
        let out: Vec<u8> = one.par_iter().map(|&x| x + 1).collect();
        assert_eq!(out, vec![43]);
        let none: Vec<usize> = (7..7).into_par_iter().collect();
        assert!(none.is_empty());
        let mut empty_sort: Vec<u32> = Vec::new();
        empty_sort.par_sort_unstable();
        let mut single = [9u32];
        single.par_sort();
        assert_eq!(single, [9]);
    }

    #[test]
    fn for_each_visits_every_index_once() {
        let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
        (0..hits.len()).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, AtomicOrdering::Relaxed);
        });
        assert!(hits.iter().all(|h| h.load(AtomicOrdering::Relaxed) == 1));
    }

    #[test]
    fn for_each_propagates_panics() {
        let r = catch_unwind(AssertUnwindSafe(|| {
            (0..128usize).into_par_iter().for_each(|i| {
                if i == 57 {
                    panic!("for_each boom");
                }
            });
        }));
        assert!(r.is_err());
    }

    #[test]
    fn par_sort_by_key_is_stable_like_std() {
        // Many duplicate keys with distinguishable payloads: the permutation
        // must equal std's *stable* sort at every thread count and below and
        // above the grain.
        let p = Pool::start(4);
        for n in [0usize, 1, 2, 100, 10_000] {
            let input: Vec<(u8, usize)> = (0..n).map(|i| ((i % 13) as u8, i)).collect();
            let mut par = input.clone();
            par_stable_sort_in(&p, &mut par, &|a, b| a.0.cmp(&b.0), 64);
            let mut seq = input;
            seq.sort_by_key(|&(k, _)| k);
            assert_eq!(par, seq, "n={n}");
        }
    }

    #[test]
    fn par_sorts_match_std_on_total_orders() {
        let mut x = 9_234_567_891u64;
        let mut input: Vec<u64> = Vec::new();
        for _ in 0..20_000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            input.push(x >> 40); // plenty of duplicates
        }
        let mut par = input.clone();
        par.par_sort_unstable();
        let mut seq = input.clone();
        seq.sort_unstable();
        assert_eq!(par, seq);
        let mut par2 = input.clone();
        par2.par_sort();
        assert_eq!(par2, seq);
        let mut par3 = input;
        par3.par_sort_unstable_by_key(|&v| v);
        assert_eq!(par3, seq);
    }

    #[test]
    fn sort_comparator_panic_leaves_input_intact() {
        let p = Pool::start(2);
        let input: Vec<u32> = (0..9000).rev().collect();
        let mut v = input.clone();
        let r = catch_unwind(AssertUnwindSafe(|| {
            par_stable_sort_in(
                &p,
                &mut v,
                &|a, b| {
                    if *a == 4500 {
                        panic!("cmp boom");
                    }
                    a.cmp(b)
                },
                64,
            );
        }));
        assert!(r.is_err());
        assert_eq!(v, input, "panicking comparator must not corrupt the slice");
    }

    #[test]
    fn run_all_propagates_panics_and_finishes_other_tasks() {
        let p = test_pool();
        let done = AtomicUsize::new(0);
        let r = catch_unwind(AssertUnwindSafe(|| {
            let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..16)
                .map(|i| {
                    let done = &done;
                    Box::new(move || {
                        if i == 5 {
                            panic!("task boom");
                        }
                        done.fetch_add(1, AtomicOrdering::Relaxed);
                    }) as Box<dyn FnOnce() + Send + '_>
                })
                .collect();
            p.run_all(tasks);
        }));
        assert!(r.is_err());
        assert_eq!(
            done.load(AtomicOrdering::Relaxed),
            15,
            "every non-panicking task still ran to completion"
        );
    }

    #[test]
    fn single_thread_pool_runs_inline() {
        let p = Pool::start(1);
        assert_eq!(p.threads(), 1);
        let (a, b) = join_in(&p, || 1, || 2);
        assert_eq!((a, b), (1, 2));
    }

    #[test]
    fn current_num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
