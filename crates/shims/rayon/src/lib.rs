//! Offline stand-in for the `rayon` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external crates the code depends on are vendored as minimal shims under
//! `crates/shims/`.  This one maps the parallel-iterator subset the workspace
//! uses onto plain sequential `std` iterators:
//!
//! * `par_iter()` / `into_par_iter()` return the ordinary iterators,
//! * `par_sort_unstable` / `par_sort_by_key` delegate to the `std` sorts,
//! * rayon-only adaptor names (`flat_map_iter`) are provided as aliases,
//! * [`current_num_threads`] reports 1 so that the workspace's
//!   `worth_parallel` grain checks route every batch down the sequential
//!   paths it would use for small batches anyway.
//!
//! Results are bit-for-bit identical to the parallel versions because every
//! call site in the workspace only uses deterministic, order-preserving or
//! order-insensitive combinators.  Swapping the real crate back in is a
//! one-line manifest change per crate.

/// Number of worker threads.  The shim executes everything on the calling
/// thread, so this is honestly 1 — which also makes `worth_parallel`-style
/// gates pick the sequential code paths.
pub fn current_num_threads() -> usize {
    1
}

/// Runs both closures (sequentially, left first) and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA,
    B: FnOnce() -> RB,
{
    (a(), b())
}

/// Borrowing "parallel" iteration over slices (and anything derefing to one).
pub trait IntoParallelRefIterator<'a> {
    /// The element type.
    type Item: 'a;
    /// The iterator type.
    type Iter: Iterator<Item = Self::Item>;
    /// Sequential stand-in for `rayon`'s `par_iter`.
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

impl<'a, T: 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = std::slice::Iter<'a, T>;
    fn par_iter(&'a self) -> Self::Iter {
        self.iter()
    }
}

/// Consuming "parallel" iteration.
pub trait IntoParallelIterator: IntoIterator + Sized {
    /// Sequential stand-in for `rayon`'s `into_par_iter`.
    fn into_par_iter(self) -> Self::IntoIter {
        self.into_iter()
    }
}

impl<T: IntoIterator + Sized> IntoParallelIterator for T {}

/// Adaptor names that exist on rayon's `ParallelIterator` but not on
/// `std::iter::Iterator`.
pub trait ParallelIteratorExt: Iterator + Sized {
    /// rayon's `flat_map_iter`: flat-map through a serial inner iterator.
    fn flat_map_iter<U, F>(self, f: F) -> std::iter::FlatMap<Self, U, F>
    where
        U: IntoIterator,
        F: FnMut(Self::Item) -> U,
    {
        self.flat_map(f)
    }
}

impl<I: Iterator> ParallelIteratorExt for I {}

/// Sequential stand-ins for rayon's parallel slice sorts.
pub trait ParallelSliceMut<T> {
    /// `par_sort_unstable` → `sort_unstable`.
    fn par_sort_unstable(&mut self)
    where
        T: Ord;
    /// `par_sort` → `sort`.
    fn par_sort(&mut self)
    where
        T: Ord;
    /// `par_sort_by_key` → `sort_by_key`.
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
    /// `par_sort_unstable_by_key` → `sort_unstable_by_key`.
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F);
}

impl<T> ParallelSliceMut<T> for [T] {
    fn par_sort_unstable(&mut self)
    where
        T: Ord,
    {
        self.sort_unstable();
    }
    fn par_sort(&mut self)
    where
        T: Ord,
    {
        self.sort();
    }
    fn par_sort_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_by_key(f);
    }
    fn par_sort_unstable_by_key<K: Ord, F: FnMut(&T) -> K>(&mut self, f: F) {
        self.sort_unstable_by_key(f);
    }
}

pub mod prelude {
    //! Drop-in replacement for `rayon::prelude`.
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, ParallelIteratorExt, ParallelSliceMut,
    };
}
