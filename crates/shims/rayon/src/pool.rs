//! The work pool behind the shim: plain `std::thread` workers pulling boxed
//! jobs off one shared injector queue.
//!
//! The scheduling model is *fork-and-help*: a thread that submits a batch of
//! scoped tasks ([`Pool::run_all`]) never blocks on a condition variable
//! while its batch is outstanding — it loops popping **any** queued job and
//! running it, which is what makes nested fork-join (a pool worker whose job
//! itself calls [`join_in`]) deadlock-free: every waiting thread is also an
//! executing thread.  Workers with nothing to do park on a condvar.
//!
//! Scoped lifetimes are erased with a transmute when a job enters the queue;
//! soundness rests on a single invariant, upheld by `run_all` on every path
//! including unwinding: **the submitting frame does not return until every
//! job of its batch has finished running**, so the borrows captured by the
//! jobs are live for as long as any thread can touch them.

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
#[cfg(feature = "telemetry")]
use std::sync::atomic::AtomicU64;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// A boxed, lifetime-erased job.  Jobs never unwind: `run_all` wraps every
/// task in `catch_unwind` before queueing it.
type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    queue: Mutex<VecDeque<Job>>,
    /// Signalled when a job is pushed; workers park here when idle.
    available: Condvar,
    threads: usize,
    #[cfg(feature = "telemetry")]
    metrics: PoolCounters,
}

/// Relaxed-atomic scheduler metrics, compiled only under the `telemetry`
/// feature so the disabled build keeps the exact pre-telemetry hot path.
#[cfg(feature = "telemetry")]
struct PoolCounters {
    /// Total jobs run to completion, on any thread.
    jobs_executed: AtomicU64,
    /// Jobs run by a *helping submitter* inside `run_all_with`'s drain loop
    /// (the fork-and-help equivalent of a work steal).
    helper_jobs: AtomicU64,
    /// Highest queue length observed right after a batch was pushed.
    queue_depth_hwm: AtomicUsize,
    /// Busy nanoseconds per slot: slot 0 is the submitting/helping thread
    /// (and the inline `threads <= 1` path), slots `1..` are the workers.
    busy_nanos: Vec<AtomicU64>,
}

#[cfg(feature = "telemetry")]
impl PoolCounters {
    fn new(threads: usize) -> PoolCounters {
        PoolCounters {
            jobs_executed: AtomicU64::new(0),
            helper_jobs: AtomicU64::new(0),
            queue_depth_hwm: AtomicUsize::new(0),
            busy_nanos: (0..threads).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    fn record_job(&self, slot: usize, nanos: u64, helper: bool) {
        self.jobs_executed.fetch_add(1, Ordering::Relaxed);
        if helper {
            self.helper_jobs.fetch_add(1, Ordering::Relaxed);
        }
        if let Some(busy) = self.busy_nanos.get(slot) {
            busy.fetch_add(nanos, Ordering::Relaxed);
        }
    }

    fn note_queue_depth(&self, depth: usize) {
        self.queue_depth_hwm.fetch_max(depth, Ordering::Relaxed);
    }
}

/// Point-in-time copy of the pool's scheduler metrics.
#[cfg(feature = "telemetry")]
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PoolMetrics {
    /// Total pool width (including the always-helping submitter slot).
    pub threads: usize,
    /// Jobs run to completion on any thread.
    pub jobs_executed: u64,
    /// Jobs stolen and run by helping submitters.
    pub helper_jobs: u64,
    /// Highest injector-queue length observed after a batch push.
    pub queue_depth_hwm: usize,
    /// Busy nanoseconds per slot (slot 0 = submitters, `1..` = workers).
    pub busy_nanos: Vec<u64>,
}

/// A handle to a pool of worker threads (plus the shared queue).
///
/// The workspace uses one lazily-created global pool; unit tests create
/// small private pools to pin down cross-thread behaviour regardless of the
/// environment.  Worker threads live for the life of the process.
pub(crate) struct Pool {
    shared: Arc<Shared>,
}

impl Pool {
    /// Spawns a pool of `threads` total workers.  `threads == 1` spawns no
    /// OS threads at all: every operation runs inline on the caller.
    ///
    /// There is deliberately no shutdown path: workers run for the life of
    /// the process, and dropping a `Pool` handle parks its workers forever.
    /// That is the right trade for the two intended uses — the global
    /// singleton, and short-lived test pools whose few threads die with the
    /// test binary — and it keeps `run_all`'s pinning argument free of
    /// teardown races.  Do not create per-request pools.
    pub(crate) fn start(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            threads,
            #[cfg(feature = "telemetry")]
            metrics: PoolCounters::new(threads),
        });
        // The submitting thread always helps, so `threads` total parallelism
        // needs `threads - 1` dedicated workers.
        for i in 1..threads {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name(format!("dyntree-worker-{i}"))
                .spawn(move || worker_loop(&shared, i))
                .expect("failed to spawn pool worker");
        }
        Pool { shared }
    }

    /// Total worker count (including the always-helping submitter).
    pub(crate) fn threads(&self) -> usize {
        self.shared.threads
    }

    /// Runs every task to completion, fanning them out to the pool while the
    /// calling thread helps.  If any task panics, the first captured payload
    /// is resumed on the caller — after *all* tasks have finished, so scoped
    /// borrows never outlive their referents.
    pub(crate) fn run_all<'scope>(&self, tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>) {
        self.run_all_with(tasks, || ());
    }

    /// [`run_all`](Self::run_all) plus a `local` closure the **calling
    /// thread** runs concurrently with the batch (the fork half of
    /// fork-join: `join` submits only the right side and keeps the left one
    /// here).  Panic precedence on the caller: `local`'s payload first,
    /// else the batch's first captured payload — in both cases only after
    /// the whole batch is quiescent.
    pub(crate) fn run_all_with<'scope, R>(
        &self,
        tasks: Vec<Box<dyn FnOnce() + Send + 'scope>>,
        local: impl FnOnce() -> R,
    ) -> R {
        if self.shared.threads <= 1 || tasks.is_empty() {
            // Inline path: no queue traffic, identical panic semantics.
            // `local` runs first (join's left-before-right sequential order),
            // and later tasks still run after an earlier panic.
            let local_result = catch_unwind(AssertUnwindSafe(local));
            let mut first_panic = None;
            for task in tasks {
                #[cfg(feature = "telemetry")]
                let start = std::time::Instant::now();
                if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                    first_panic.get_or_insert(p);
                }
                #[cfg(feature = "telemetry")]
                self.shared
                    .metrics
                    .record_job(0, elapsed_nanos(start), false);
            }
            return match local_result {
                Err(p) => resume_unwind(p),
                Ok(r) => {
                    if let Some(p) = first_panic {
                        resume_unwind(p);
                    }
                    r
                }
            };
        }

        let batch = Batch {
            remaining: AtomicUsize::new(tasks.len()),
            panic: Mutex::new(None),
        };
        let batch_ref: &Batch = &batch;
        {
            let mut q = self.shared.queue.lock().unwrap();
            for task in tasks {
                let wrapped: Box<dyn FnOnce() + Send + '_> = Box::new(move || {
                    if let Err(p) = catch_unwind(AssertUnwindSafe(task)) {
                        batch_ref.panic.lock().unwrap().get_or_insert(p);
                    }
                    batch_ref.remaining.fetch_sub(1, Ordering::Release);
                });
                // SAFETY: erases the scoped lifetime.  The loop below keeps
                // this frame alive (helping, never returning or unwinding)
                // until `remaining` reaches zero, i.e. until every wrapped
                // job — and therefore every borrow it captures — is done.
                let job: Job =
                    unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + '_>, Job>(wrapped) };
                q.push_back(job);
            }
            #[cfg(feature = "telemetry")]
            self.shared.metrics.note_queue_depth(q.len());
            self.shared.available.notify_all();
        }

        // The caller's own share of the fork runs while workers start on
        // the batch.  Its panic must not escape yet: the batch jobs borrow
        // this frame's state, so we stay pinned until they all finish.
        let local_result = catch_unwind(AssertUnwindSafe(local));

        // Help until the batch drains.  Jobs popped here may belong to other
        // batches (nested forks); running them is what prevents deadlock.
        let mut idle_spins = 0u32;
        while batch.remaining.load(Ordering::Acquire) > 0 {
            let job = self.shared.queue.lock().unwrap().pop_front();
            match job {
                Some(job) => {
                    #[cfg(feature = "telemetry")]
                    let start = std::time::Instant::now();
                    job();
                    #[cfg(feature = "telemetry")]
                    self.shared
                        .metrics
                        .record_job(0, elapsed_nanos(start), true);
                    idle_spins = 0;
                }
                None => {
                    // Some worker is still running one of our jobs: back off
                    // politely (yield first, then micro-sleeps) instead of
                    // burning the core it may need.
                    idle_spins += 1;
                    if idle_spins < 64 {
                        std::thread::yield_now();
                    } else {
                        std::thread::sleep(std::time::Duration::from_micros(50));
                    }
                }
            }
        }
        let first_panic = batch.panic.lock().unwrap().take();
        match local_result {
            Err(p) => resume_unwind(p),
            Ok(r) => {
                if let Some(p) = first_panic {
                    resume_unwind(p);
                }
                r
            }
        }
    }
}

#[cfg(feature = "telemetry")]
impl Pool {
    /// Copies the pool's scheduler metrics.
    pub(crate) fn metrics(&self) -> PoolMetrics {
        let m = &self.shared.metrics;
        PoolMetrics {
            threads: self.shared.threads,
            jobs_executed: m.jobs_executed.load(Ordering::Relaxed),
            helper_jobs: m.helper_jobs.load(Ordering::Relaxed),
            queue_depth_hwm: m.queue_depth_hwm.load(Ordering::Relaxed),
            busy_nanos: m
                .busy_nanos
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        }
    }

    /// Zeroes the pool's scheduler metrics (for per-run attribution).
    pub(crate) fn reset_metrics(&self) {
        let m = &self.shared.metrics;
        m.jobs_executed.store(0, Ordering::Relaxed);
        m.helper_jobs.store(0, Ordering::Relaxed);
        m.queue_depth_hwm.store(0, Ordering::Relaxed);
        for b in &m.busy_nanos {
            b.store(0, Ordering::Relaxed);
        }
    }
}

/// Metrics of the process-wide pool (creating it on first use).
#[cfg(feature = "telemetry")]
pub fn global_pool_metrics() -> PoolMetrics {
    global().metrics()
}

/// Zeroes the global pool's metrics, so the next read attributes work to a
/// single run.  Racing in-flight jobs only smear a few nanos — acceptable
/// for a profiling aid.
#[cfg(feature = "telemetry")]
pub fn reset_global_pool_metrics() {
    global().reset_metrics();
}

/// Completion state of one `run_all` batch, shared between the submitting
/// frame (on whose stack it lives) and the workers running its jobs.
struct Batch {
    remaining: AtomicUsize,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

fn worker_loop(shared: &Shared, index: usize) {
    #[cfg(not(feature = "telemetry"))]
    let _ = index;
    loop {
        let job = {
            let mut q = shared.queue.lock().unwrap();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                q = shared.available.wait(q).unwrap();
            }
        };
        // Jobs are panic-wrapped by `run_all`, so this cannot unwind.
        #[cfg(feature = "telemetry")]
        let start = std::time::Instant::now();
        job();
        #[cfg(feature = "telemetry")]
        shared
            .metrics
            .record_job(index, elapsed_nanos(start), false);
    }
}

#[cfg(feature = "telemetry")]
fn elapsed_nanos(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

/// Fork-join over an explicit pool: runs `oper_a` on the calling thread and
/// offers `oper_b` to the pool, helping until both finish.
pub(crate) fn join_in<A, B, RA, RB>(pool: &Pool, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    if pool.threads() <= 1 {
        let ra = oper_a();
        let rb = oper_b();
        return (ra, rb);
    }
    let mut rb = None;
    let ra = {
        let task: Box<dyn FnOnce() + Send + '_> = Box::new(|| rb = Some(oper_b()));
        // Only the right side enters the queue; the left side runs here, as
        // documented (and as real rayon does).
        pool.run_all_with(vec![task], oper_a)
    };
    // run_all_with resumed any panic, so the right slot is filled here.
    (ra, rb.unwrap())
}

// ---------------------------------------------------------------------------
// The global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Pool> = OnceLock::new();

/// The process-wide pool, created on first use from `DYNTREE_THREADS` (or
/// the machine's available parallelism).
pub(crate) fn global() -> &'static Pool {
    GLOBAL.get_or_init(|| Pool::start(configured_threads()))
}

fn configured_threads() -> usize {
    if let Ok(s) = std::env::var("DYNTREE_THREADS") {
        let t = s.trim();
        if !t.is_empty() {
            // A malformed value must not fall through to full machine
            // parallelism: the CI thread matrix relies on this variable
            // actually pinning the width, and a silently ignored typo would
            // turn the 1-thread determinism leg into a vacuous check.
            match t.parse::<usize>() {
                Ok(n) => return n.max(1),
                Err(_) => panic!("DYNTREE_THREADS must be a non-negative integer, got {s:?}"),
            }
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Number of threads in the global pool (≥ 1).  Grain checks such as the
/// workspace's `worth_parallel` use this to route small batches down the
/// sequential paths.
pub fn current_num_threads() -> usize {
    global().threads()
}

/// Mirrors rayon's global-pool builder closely enough for the workspace's
/// benchmark binaries to pin the pool size before first use.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (`DYNTREE_THREADS` / machine size).
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests an explicit pool size (0 keeps the environment default).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = n;
        self
    }

    /// Installs the global pool.  Errors if it was already created (by an
    /// earlier build or by first use of any parallel operation).
    pub fn build_global(self) -> Result<(), GlobalPoolAlreadyInitialized> {
        let threads = if self.num_threads == 0 {
            configured_threads()
        } else {
            self.num_threads
        };
        // Spawn workers only inside get_or_init: a start-then-set-fails
        // sequence would leak parked worker threads (nothing would ever
        // reach their queue) every time the pool already existed.
        let mut installed = false;
        GLOBAL.get_or_init(|| {
            installed = true;
            Pool::start(threads)
        });
        if installed {
            Ok(())
        } else {
            Err(GlobalPoolAlreadyInitialized)
        }
    }
}

/// Error from [`ThreadPoolBuilder::build_global`] when the pool exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GlobalPoolAlreadyInitialized;

impl std::fmt::Display for GlobalPoolAlreadyInitialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("the global thread pool was already initialized")
    }
}

impl std::error::Error for GlobalPoolAlreadyInitialized {}

#[cfg(all(test, feature = "telemetry"))]
mod metric_tests {
    use super::*;

    #[test]
    fn pool_metrics_account_every_job() {
        let pool = Pool::start(3);
        let n = 64;
        let counter = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..n)
            .map(|_| {
                let counter = &counter;
                Box::new(move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_all(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), n);
        let m = pool.metrics();
        assert_eq!(m.threads, 3);
        assert_eq!(m.busy_nanos.len(), 3);
        assert_eq!(m.jobs_executed, n as u64);
        assert!(m.helper_jobs <= m.jobs_executed);
        assert!(m.queue_depth_hwm >= 1 && m.queue_depth_hwm <= n);
        pool.reset_metrics();
        let m = pool.metrics();
        assert_eq!(
            (m.jobs_executed, m.helper_jobs, m.queue_depth_hwm),
            (0, 0, 0)
        );
        assert!(m.busy_nanos.iter().all(|&b| b == 0));
    }

    #[test]
    fn inline_pool_counts_jobs_in_slot_zero() {
        let pool = Pool::start(1);
        let hits = AtomicUsize::new(0);
        let tasks: Vec<Box<dyn FnOnce() + Send + '_>> = (0..5)
            .map(|_| {
                let hits = &hits;
                Box::new(move || {
                    hits.fetch_add(1, Ordering::Relaxed);
                }) as Box<dyn FnOnce() + Send + '_>
            })
            .collect();
        pool.run_all(tasks);
        let m = pool.metrics();
        assert_eq!(m.jobs_executed, 5);
        assert_eq!(m.helper_jobs, 0);
        assert_eq!(m.busy_nanos.len(), 1);
    }
}
