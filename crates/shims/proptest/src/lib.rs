//! Offline stand-in for the `proptest` crate.
//!
//! This workspace builds in environments with no access to crates.io, so the
//! external crates the code depends on are vendored as minimal shims under
//! `crates/shims/`.  This one implements the subset of the proptest API the
//! workspace's property tests use:
//!
//! * the [`Strategy`] trait with `prop_map` and `boxed`,
//! * strategies for integer ranges, tuples of strategies, and
//!   [`collection::vec`],
//! * [`prop_oneof!`], [`prop_assert!`], [`prop_assert_eq!`],
//! * the [`proptest!`] test-harness macro with `#![proptest_config(..)]`.
//!
//! Compared to the real crate there is **no shrinking**: a failing case
//! panics with the generated inputs' `Debug` rendering instead of a
//! minimized counterexample.  Generation is deterministic per test name, so
//! failures reproduce.  Swapping the real crate back in is a one-line
//! manifest change per crate.

use std::fmt;
use std::ops::Range;

/// Deterministic generator used by the harness (SplitMix64).
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name so each test has its own
    /// reproducible stream.
    pub fn deterministic(name: &str) -> Self {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        Self { state: h }
    }

    /// Next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0);
        self.next_u64() % bound
    }
}

/// Error produced by `prop_assert*` macros inside a failing case.
#[derive(Clone, Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Harness configuration (only the knob the workspace uses).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// A generator of values for property tests.
pub trait Strategy {
    /// The generated value type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy (used by [`prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

impl<V: fmt::Debug> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<V: Clone + fmt::Debug>(pub V);

impl<V: Clone + fmt::Debug> Strategy for Just<V> {
    type Value = V;
    fn generate(&self, _rng: &mut TestRng) -> V {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let r = (rng.next_u64() as u128 % span) as i128;
                (self.start as i128 + r) as $t
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Uniform choice among boxed strategies; output of [`prop_oneof!`].
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V: fmt::Debug> Union<V> {
    /// Builds the union; panics on an empty option list.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Self { options }
    }
}

impl<V: fmt::Debug> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.options.len() as u64) as usize;
        self.options[i].generate(rng)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::fmt;
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len` and elements drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    /// Output of [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! Drop-in replacement for `proptest::prelude`.
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, BoxedStrategy, Just, ProptestConfig,
        Strategy,
    };
}

/// Uniform choice among several strategies with a common value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a proptest case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a proptest case.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// The test-harness macro: expands each `fn name(arg in strategy, ..) { .. }`
/// into a `#[test]` that runs the body over `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr;
     $(
         #[test]
         fn $name:ident( $($arg:ident in $strategy:expr),+ $(,)? ) $body:block
     )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                    let debug_inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let result: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = result {
                        panic!(
                            "proptest {} failed at case {}/{}: {}\ninputs: {}",
                            stringify!($name), case + 1, config.cases, e, debug_inputs
                        );
                    }
                }
            }
        )*
    };
}
