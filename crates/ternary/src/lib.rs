//! Dynamic ternarization (paper §2 and Appendix A.1).
//!
//! Topology trees and rake-compress trees only accept inputs of degree ≤ 3.
//! The [`Ternarizer`] maintains, for every original vertex, a *ternarized
//! path* of underlying vertices ("slots") — the primary slot hosting up to two
//! real edges, extra slots one each — so that the underlying forest always has
//! maximum degree 3.  Every original
//! `link`/`cut` is translated into a short sequence of underlying operations
//! which the caller applies to whatever degree-bounded structure it wraps.
//!
//! Underlying vertex ids `0..n` are the *primary slots* of the original
//! vertices; additional slots are allocated above `n` (and recycled).  The
//! total number of underlying vertices is at most `n + Σ deg(v) < 3n`.
//! Primary slots carry the original vertex weights; extra slots are *phantom*
//! vertices whose weight must be ignored by the wrapped structure.  The
//! ternarizer itself is weight-agnostic, so generic monoid weights thread
//! through unchanged: the wrapped structure makes phantom slots contribute
//! the monoid identity (`Agg::vertex_if` in `dyntree_primitives::algebra`),
//! which is how `TopologyForest<M>` stays exact for any `CommutativeMonoid`.

use std::collections::HashMap;

/// An operation on the underlying (degree ≤ 3) forest.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnderlyingOp {
    /// Insert an underlying edge.
    Link(usize, usize),
    /// Delete an underlying edge.
    Cut(usize, usize),
}

#[derive(Clone, Debug)]
struct VertexPaths {
    /// The slots of this vertex, in path order; `slots[0]` is the primary slot.
    slots: Vec<usize>,
}

/// Maintains the mapping from an arbitrary-degree forest to a degree ≤ 3
/// forest.
#[derive(Clone, Debug)]
pub struct Ternarizer {
    n: usize,
    verts: Vec<VertexPaths>,
    /// For each slot, the number of real edges it currently hosts (0..=2 for
    /// primary slots, 0..=1 for extra slots).
    slot_load: Vec<u8>,
    /// Owner (original vertex) of every underlying slot.
    slot_owner: Vec<usize>,
    /// For each slot, the *other* original endpoints of the real edges it
    /// hosts (mirror of `slot_load`, used to relocate edges on compaction).
    slot_hosted: Vec<Vec<usize>>,
    /// Recycled extra-slot ids.
    free_slots: Vec<usize>,
    /// Total allocated underlying ids (dense range `0..next_slot`).
    next_slot: usize,
    /// For each real edge (canonical orientation), the pair of slots hosting it.
    edge_slots: HashMap<(usize, usize), (usize, usize)>,
}

impl Ternarizer {
    /// Creates a ternarizer for original vertices `0..n`.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            verts: (0..n).map(|v| VertexPaths { slots: vec![v] }).collect(),
            slot_load: vec![0; n],
            slot_owner: (0..n).collect(),
            slot_hosted: vec![Vec::new(); n],
            free_slots: Vec::new(),
            next_slot: n,
            edge_slots: HashMap::new(),
        }
    }

    /// Number of original vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether there are no original vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// One past the largest underlying vertex id ever allocated.  The wrapped
    /// structure must have at least this many vertices; a safe static bound is
    /// [`Ternarizer::capacity_bound`].
    pub fn underlying_len(&self) -> usize {
        self.next_slot
    }

    /// A safe upper bound on the number of underlying vertices a forest with
    /// `n` vertices can ever need under this scheme (`3n`, see module docs).
    pub fn capacity_bound(n: usize) -> usize {
        3 * n.max(1)
    }

    /// The primary underlying slot of original vertex `v` (used for
    /// connectivity and as the query representative).
    pub fn representative(&self, v: usize) -> usize {
        self.verts[v].slots[0]
    }

    /// Appends original vertices until there are `n` of them, allocating one
    /// primary slot each (recycled extra-slot ids are reused).  Returns the
    /// new vertices' primary slot ids, so the wrapped structure can clear
    /// their phantom flag.  A smaller `n` is a no-op.
    pub fn grow(&mut self, n: usize) -> Vec<usize> {
        let mut primaries = Vec::new();
        while self.verts.len() < n {
            let v = self.verts.len();
            let s = self.alloc_slot(v);
            self.verts.push(VertexPaths { slots: vec![s] });
            primaries.push(s);
        }
        self.n = self.verts.len();
        primaries
    }

    /// Whether underlying vertex `s` is a phantom (non-primary) slot.
    /// Decided by ownership, not id range: a vertex added after
    /// [`grow`](Self::grow) may have a primary slot with a high (or recycled)
    /// id.
    pub fn is_phantom(&self, s: usize) -> bool {
        self.verts[self.slot_owner[s]].slots[0] != s
    }

    /// The original vertex owning underlying slot `s`.
    pub fn owner(&self, s: usize) -> usize {
        self.slot_owner[s]
    }

    /// Whether the original edge `(u, v)` is currently mapped.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edge_slots.contains_key(&canonical(u, v))
    }

    /// The pair of underlying slots `(slot_of_u, slot_of_v)` hosting the
    /// original edge `(u, v)`, if the edge is present.
    pub fn edge_slots(&self, u: usize, v: usize) -> Option<(usize, usize)> {
        let &(a, b) = self.edge_slots.get(&canonical(u, v))?;
        Some(if u <= v { (a, b) } else { (b, a) })
    }

    /// Number of original edges currently mapped.
    pub fn num_edges(&self) -> usize {
        self.edge_slots.len()
    }

    /// Translates the insertion of original edge `(u, v)`.  Returns the
    /// underlying operations to apply, or `None` if the edge is already
    /// present or is a self loop.
    pub fn link(&mut self, u: usize, v: usize) -> Option<Vec<UnderlyingOp>> {
        if u == v || self.has_edge(u, v) {
            return None;
        }
        let mut ops = Vec::with_capacity(3);
        let su = self.claim_slot(u, &mut ops);
        let sv = self.claim_slot(v, &mut ops);
        self.slot_load[su] += 1;
        self.slot_load[sv] += 1;
        self.slot_hosted[su].push(v);
        self.slot_hosted[sv].push(u);
        self.edge_slots
            .insert(canonical(u, v), order_for(u, v, su, sv));
        ops.push(UnderlyingOp::Link(su, sv));
        Some(ops)
    }

    /// Translates the deletion of original edge `(u, v)`.  Returns the
    /// underlying operations to apply, or `None` if the edge is not present.
    pub fn cut(&mut self, u: usize, v: usize) -> Option<Vec<UnderlyingOp>> {
        let (su, sv) = self.edge_slots.remove(&canonical(u, v))?;
        // (su, sv) is stored in the orientation of the canonical edge; map back
        let (su, sv) = if u <= v { (su, sv) } else { (sv, su) };
        let mut ops = vec![UnderlyingOp::Cut(su, sv)];
        self.slot_load[su] -= 1;
        self.slot_load[sv] -= 1;
        unhost(&mut self.slot_hosted[su], v);
        unhost(&mut self.slot_hosted[sv], u);
        self.compact(u, &mut ops);
        self.compact(v, &mut ops);
        Some(ops)
    }

    /// Exact heap bytes owned by the ternarizer itself.
    pub fn memory_bytes(&self) -> usize {
        let paths: usize = self
            .verts
            .iter()
            .map(|p| p.slots.capacity() * std::mem::size_of::<usize>())
            .sum();
        let hosted: usize = self
            .slot_hosted
            .iter()
            .map(|h| h.capacity() * std::mem::size_of::<usize>())
            .sum();
        paths
            + hosted
            + self.verts.capacity() * std::mem::size_of::<VertexPaths>()
            + self.slot_load.capacity()
            + self.slot_owner.capacity() * std::mem::size_of::<usize>()
            + self.slot_hosted.capacity() * std::mem::size_of::<Vec<usize>>()
            + self.free_slots.capacity() * std::mem::size_of::<usize>()
            + self.edge_slots.capacity()
                * (std::mem::size_of::<((usize, usize), (usize, usize))>() + 8)
    }

    /// Finds (or creates, emitting the virtual link) a slot of `vertex` with
    /// free real-edge capacity.
    ///
    /// The primary slot hosts up to **two** real edges (its third degree unit
    /// is reserved for the chain edge towards the extra slots); extra slots
    /// host one real edge each (plus up to two chain edges).  Hosting the
    /// first two edges on the primary keeps vertex-weight path aggregates
    /// exact through every vertex of degree ≤ 3: any two of its hosted edges
    /// bracket the weight-carrying primary on the underlying path.  For
    /// degree ≥ 4 two hosted edges can both sit on extra slots and the
    /// underlying path between them misses the primary — that is a
    /// fundamental limit of weight-on-one-slot ternarization (any two
    /// disjoint host pairs would both need to bracket the same slot), and one
    /// of the paper's motivations for UFO trees, which need no ternarization.
    fn claim_slot(&mut self, vertex: usize, ops: &mut Vec<UnderlyingOp>) -> usize {
        if let Some(&s) = self.verts[vertex]
            .slots
            .iter()
            .enumerate()
            .find(|&(i, &s)| (self.slot_load[s] as usize) < if i == 0 { 2 } else { 1 })
            .map(|(_, s)| s)
        {
            return s;
        }
        // extend the ternarized path with a fresh slot
        let s = self.alloc_slot(vertex);
        let last = *self.verts[vertex].slots.last().unwrap();
        self.verts[vertex].slots.push(s);
        ops.push(UnderlyingOp::Link(last, s));
        s
    }

    /// Restores `vertex`'s hosting invariant after a cut freed capacity: the
    /// hosted edges must fill the slot chain as a *prefix* (primary slot
    /// first, then extras in chain order, no gaps).  At most one edge is
    /// relocated — from the outermost occupied slot into the innermost slot
    /// with spare capacity — and trailing empty extra slots are trimmed.
    ///
    /// The invariant is what makes vertex-weight path aggregates exact for
    /// every vertex of degree ≤ 3 *at query time*, independent of the
    /// insertion/deletion history: a degree ≤ 3 vertex always hosts two edges
    /// on the primary and at most one on the first extra slot, so any two of
    /// its edges bracket the weight-carrying primary on the underlying path.
    fn compact(&mut self, vertex: usize, ops: &mut Vec<UnderlyingOp>) {
        // innermost slot with spare capacity
        let spare = self.verts[vertex]
            .slots
            .iter()
            .enumerate()
            .position(|(i, &s)| (self.slot_load[s] as usize) < if i == 0 { 2 } else { 1 });
        // outermost occupied slot
        let occupied = self.verts[vertex]
            .slots
            .iter()
            .rposition(|&s| self.slot_load[s] > 0);
        if let (Some(i), Some(j)) = (spare, occupied) {
            if j > i {
                let from = self.verts[vertex].slots[j];
                let to = self.verts[vertex].slots[i];
                let w = *self.slot_hosted[from]
                    .last()
                    .expect("occupied slot hosts an edge");
                // relocate edge (vertex, w) from `from` to `to`
                let key = canonical(vertex, w);
                let entry = self.edge_slots.get_mut(&key).expect("hosted edge is live");
                let other = if entry.0 == from {
                    entry.0 = to;
                    entry.1
                } else {
                    debug_assert_eq!(entry.1, from);
                    entry.1 = to;
                    entry.0
                };
                ops.push(UnderlyingOp::Cut(from, other));
                ops.push(UnderlyingOp::Link(to, other));
                self.slot_load[from] -= 1;
                self.slot_load[to] += 1;
                unhost(&mut self.slot_hosted[from], w);
                self.slot_hosted[to].push(w);
            }
        }
        // trim trailing empty extra slots
        while self.verts[vertex].slots.len() > 1 {
            let last = *self.verts[vertex].slots.last().unwrap();
            if self.slot_load[last] > 0 {
                break;
            }
            self.verts[vertex].slots.pop();
            let prev = *self.verts[vertex].slots.last().unwrap();
            ops.push(UnderlyingOp::Cut(prev, last));
            self.free_slot(last);
        }
    }

    fn alloc_slot(&mut self, owner: usize) -> usize {
        if let Some(s) = self.free_slots.pop() {
            self.slot_owner[s] = owner;
            self.slot_load[s] = 0;
            self.slot_hosted[s].clear();
            s
        } else {
            let s = self.next_slot;
            self.next_slot += 1;
            self.slot_owner.push(owner);
            self.slot_load.push(0);
            self.slot_hosted.push(Vec::new());
            s
        }
    }

    fn free_slot(&mut self, s: usize) {
        self.free_slots.push(s);
    }
}

fn canonical(u: usize, v: usize) -> (usize, usize) {
    (u.min(v), u.max(v))
}

/// Removes one occurrence of `w` from a slot's hosted-edge list.
fn unhost(hosted: &mut Vec<usize>, w: usize) {
    let pos = hosted
        .iter()
        .position(|&x| x == w)
        .expect("hosted edge must be recorded");
    hosted.swap_remove(pos);
}

/// Stores the slot pair in the orientation of the canonical edge.
fn order_for(u: usize, v: usize, su: usize, sv: usize) -> (usize, usize) {
    if u <= v {
        (su, sv)
    } else {
        (sv, su)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    /// Replays underlying ops into an adjacency map and checks the degree bound.
    #[derive(Default)]
    struct UnderlyingModel {
        adj: HashMap<usize, HashSet<usize>>,
    }

    impl UnderlyingModel {
        fn apply(&mut self, ops: &[UnderlyingOp]) {
            for op in ops {
                match *op {
                    UnderlyingOp::Link(a, b) => {
                        assert!(self.adj.entry(a).or_default().insert(b), "dup link {a}-{b}");
                        assert!(self.adj.entry(b).or_default().insert(a));
                    }
                    UnderlyingOp::Cut(a, b) => {
                        assert!(self.adj.entry(a).or_default().remove(&b), "missing {a}-{b}");
                        assert!(self.adj.entry(b).or_default().remove(&a));
                    }
                }
            }
        }

        fn max_degree(&self) -> usize {
            self.adj.values().map(|s| s.len()).max().unwrap_or(0)
        }
    }

    #[test]
    fn star_stays_degree_three() {
        let n = 50;
        let mut t = Ternarizer::new(n);
        let mut model = UnderlyingModel::default();
        for v in 1..n {
            let ops = t.link(0, v).unwrap();
            model.apply(&ops);
            assert!(model.max_degree() <= 3, "degree bound violated at {}", v);
        }
        assert_eq!(t.num_edges(), n - 1);
        assert!(t.underlying_len() <= Ternarizer::capacity_bound(n));
        // now delete everything again
        for v in 1..n {
            let ops = t.cut(0, v).unwrap();
            model.apply(&ops);
            assert!(model.max_degree() <= 3);
        }
        assert_eq!(t.num_edges(), 0);
    }

    #[test]
    fn duplicate_and_missing_edges_are_rejected() {
        let mut t = Ternarizer::new(4);
        assert!(t.link(0, 1).is_some());
        assert!(t.link(0, 1).is_none());
        assert!(t.link(1, 0).is_none());
        assert!(t.link(2, 2).is_none());
        assert!(t.cut(2, 3).is_none());
        assert!(t.cut(0, 1).is_some());
        assert!(t.cut(0, 1).is_none());
    }

    #[test]
    fn slots_are_recycled() {
        let mut t = Ternarizer::new(10);
        let mut model = UnderlyingModel::default();
        // build and tear down a star around 0 a few times
        for _round in 0..5 {
            for v in 1..10 {
                model.apply(&t.link(0, v).unwrap());
            }
            for v in 1..10 {
                model.apply(&t.cut(0, v).unwrap());
            }
        }
        assert!(model.max_degree() <= 3);
        assert!(
            t.underlying_len() <= Ternarizer::capacity_bound(10),
            "slots not recycled: {}",
            t.underlying_len()
        );
    }

    #[test]
    fn representatives_are_primary_slots() {
        let mut t = Ternarizer::new(5);
        for v in 1..5 {
            t.link(0, v);
        }
        for v in 0..5 {
            assert_eq!(t.representative(v), v);
            assert!(!t.is_phantom(t.representative(v)));
            assert_eq!(t.owner(v), v);
        }
        assert!(t.underlying_len() > 5, "star centre must have extra slots");
        for s in 5..t.underlying_len() {
            assert!(t.is_phantom(s));
            assert_eq!(t.owner(s), 0);
        }
    }

    #[test]
    fn growth_allocates_primaries_and_keeps_phantomness_by_ownership() {
        let mut t = Ternarizer::new(3);
        let mut model = UnderlyingModel::default();
        // force extra slots on 0, then free them
        for v in 1..3 {
            model.apply(&t.link(0, v).unwrap());
        }
        model.apply(&t.link(1, 2).unwrap_or_default());
        for v in 1..3 {
            model.apply(&t.cut(0, v).unwrap());
        }
        let primaries = t.grow(6);
        assert_eq!(t.len(), 6);
        assert_eq!(primaries.len(), 3);
        for (i, &s) in primaries.iter().enumerate() {
            let v = 3 + i;
            assert_eq!(t.representative(v), s);
            assert!(!t.is_phantom(s), "primary slot {s} of vertex {v}");
            assert_eq!(t.owner(s), v);
        }
        // grown vertices participate in ternarization like any other
        for v in [0, 1, 2, 4, 5] {
            model.apply(&t.link(3, v).unwrap());
            assert!(model.max_degree() <= 3);
        }
        assert!(t.underlying_len() <= Ternarizer::capacity_bound(6));
        // extra slots of the new hub are phantom
        for s in 0..t.underlying_len() {
            let primary = t.representative(t.owner(s));
            assert_eq!(t.is_phantom(s), primary != s);
        }
        assert!(t.grow(4).is_empty(), "shrinking is a no-op");
    }

    #[test]
    fn low_degree_inputs_add_no_slots() {
        // a path never exceeds degree 2, so no extra slots are required
        let mut t = Ternarizer::new(100);
        let mut model = UnderlyingModel::default();
        for v in 0..99 {
            model.apply(&t.link(v, v + 1).unwrap());
        }
        assert_eq!(t.underlying_len(), 100);
        assert!(model.max_degree() <= 2);
    }
}
