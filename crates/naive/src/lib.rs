//! A deliberately simple, obviously-correct dynamic forest.
//!
//! Every operation runs in `O(n)` time by walking adjacency lists, which makes
//! this crate useless as a data structure but invaluable as a *differential
//! testing oracle*: every query that the UFO tree, link-cut tree, Euler tour
//! tree, topology tree and rake-compress tree crates answer is also answered
//! here, and the property tests assert they agree on random operation
//! sequences.  Like the real structures, the oracle is generic over the
//! [`CommutativeMonoid`] its weights aggregate under and answers path /
//! subtree / component queries as [`Agg<M>`], folding with the same
//! (saturating) `combine` the structures use.

use std::collections::{HashSet, VecDeque};

use dyntree_primitives::algebra::{Action, ActionOf, Agg, CommutativeMonoid, SumMinMax};

/// A vertex identifier.
pub type Vertex = usize;

/// Reference dynamic forest over `n` vertices with monoid vertex weights
/// (default: `i64` sum/min/max) and unit edge lengths.
#[derive(Clone, Debug)]
pub struct NaiveForest<M: CommutativeMonoid = SumMinMax> {
    adj: Vec<Vec<Vertex>>,
    weight: Vec<M::Weight>,
    marked: Vec<bool>,
}

impl<M: CommutativeMonoid> NaiveForest<M> {
    /// Creates a forest of `n` isolated vertices with default weight.
    pub fn new(n: usize) -> Self {
        Self {
            adj: vec![Vec::new(); n],
            weight: vec![M::Weight::default(); n],
            marked: vec![false; n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.adj.len()
    }

    /// Appends isolated vertices (with default weight, unmarked) until the
    /// forest has `n` of them.  Shrinking is not supported; a smaller `n` is
    /// a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.adj.len() {
            self.adj.resize_with(n, Vec::new);
            self.weight.resize(n, M::Weight::default());
            self.marked.resize(n, false);
        }
    }

    /// Whether the forest has no vertices.
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Current degree of `v`.
    pub fn degree(&self, v: Vertex) -> usize {
        self.adj[v].len()
    }

    /// Sets the weight of vertex `v`.
    pub fn set_weight(&mut self, v: Vertex, w: M::Weight) {
        self.weight[v] = w;
    }

    /// Returns the weight of vertex `v`.
    pub fn weight(&self, v: Vertex) -> M::Weight {
        self.weight[v]
    }

    /// Marks or unmarks vertex `v` (for nearest-marked-vertex queries).
    pub fn set_marked(&mut self, v: Vertex, marked: bool) {
        self.marked[v] = marked;
    }

    /// Whether the edge `(u, v)` is present.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.adj[u].contains(&v)
    }

    /// Inserts edge `(u, v)`.  Returns `false` (and does nothing) if the edge
    /// already exists or if it would create a cycle.
    pub fn link(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v || self.has_edge(u, v) || self.connected(u, v) {
            return false;
        }
        self.adj[u].push(v);
        self.adj[v].push(u);
        true
    }

    /// Removes edge `(u, v)`.  Returns `false` if it was not present.
    pub fn cut(&mut self, u: Vertex, v: Vertex) -> bool {
        if !self.has_edge(u, v) {
            return false;
        }
        self.adj[u].retain(|&x| x != v);
        self.adj[v].retain(|&x| x != u);
        true
    }

    /// Whether `u` and `v` are in the same tree.
    pub fn connected(&self, u: Vertex, v: Vertex) -> bool {
        if u == v {
            return true;
        }
        self.bfs_path(u, v).is_some()
    }

    /// The unique path from `u` to `v`, inclusive, or `None` if disconnected.
    pub fn path(&self, u: Vertex, v: Vertex) -> Option<Vec<Vertex>> {
        self.bfs_path(u, v)
    }

    /// Monoid aggregate over the vertex weights along the `u`–`v` path
    /// (inclusive), or `None` if disconnected.
    pub fn path_aggregate(&self, u: Vertex, v: Vertex) -> Option<Agg<M>> {
        self.path(u, v).map(|p| {
            let mut agg = Agg::<M>::IDENTITY;
            for (i, &x) in p.iter().enumerate() {
                agg = Agg::combine(agg, Agg::vertex(self.weight[x]));
                if i > 0 {
                    agg = agg.cross_edge();
                }
            }
            agg
        })
    }

    /// Number of edges on the `u`–`v` path.
    pub fn path_length(&self, u: Vertex, v: Vertex) -> Option<usize> {
        self.path(u, v).map(|p| p.len() - 1)
    }

    /// All vertices in the component of `v` when the edge `(v, parent)` is
    /// removed, i.e. the subtree of `v` rooted away from `parent`.
    /// Requires `(v, parent)` to be an edge.
    pub fn subtree_vertices(&self, v: Vertex, parent: Vertex) -> Option<Vec<Vertex>> {
        if !self.has_edge(v, parent) {
            return None;
        }
        let mut seen = HashSet::new();
        seen.insert(parent);
        seen.insert(v);
        let mut out = vec![v];
        let mut queue = VecDeque::from([v]);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if seen.insert(y) {
                    out.push(y);
                    queue.push_back(y);
                }
            }
        }
        Some(out)
    }

    /// Monoid aggregate over the subtree of `v` away from `parent`.
    pub fn subtree_aggregate(&self, v: Vertex, parent: Vertex) -> Option<Agg<M>> {
        self.subtree_vertices(v, parent).map(|s| self.fold(&s))
    }

    /// Number of vertices in the subtree of `v` away from `parent`.
    pub fn subtree_size(&self, v: Vertex, parent: Vertex) -> Option<usize> {
        self.subtree_vertices(v, parent).map(|s| s.len())
    }

    /// All vertices in the same component as `v`.
    pub fn component(&self, v: Vertex) -> Vec<Vertex> {
        let mut seen = HashSet::new();
        seen.insert(v);
        let mut out = vec![v];
        let mut queue = VecDeque::from([v]);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if seen.insert(y) {
                    out.push(y);
                    queue.push_back(y);
                }
            }
        }
        out
    }

    /// Writes one representative id per vertex into `out` — the minimum
    /// vertex id of its component — so two entries are equal iff the
    /// vertices are connected.  One BFS sweep over the whole forest,
    /// `O(n + m)`; the connectivity engine's snapshot builder uses this as
    /// the oracle-side labels dump.
    pub fn component_labels(&self, out: &mut Vec<Vertex>) {
        out.clear();
        out.resize(self.adj.len(), usize::MAX);
        let mut queue = VecDeque::new();
        for start in 0..self.adj.len() {
            if out[start] != usize::MAX {
                continue;
            }
            out[start] = start;
            queue.push_back(start);
            while let Some(x) = queue.pop_front() {
                for &y in &self.adj[x] {
                    if out[y] == usize::MAX {
                        out[y] = start;
                        queue.push_back(y);
                    }
                }
            }
        }
    }

    /// Monoid aggregate over the whole component containing `v`.
    pub fn component_aggregate(&self, v: Vertex) -> Agg<M> {
        self.fold(&self.component(v))
    }

    /// Applies `act` to every vertex weight on the `u`–`v` path (inclusive;
    /// `u == v` touches exactly one vertex).  Returns the number of vertices
    /// updated, or `None` if `u` and `v` are disconnected.
    pub fn path_apply(&mut self, u: Vertex, v: Vertex, act: ActionOf<M>) -> Option<u64> {
        let path = self.path(u, v)?;
        for &x in &path {
            self.weight[x] = act.act_weight(self.weight[x]);
        }
        Some(path.len() as u64)
    }

    /// Applies `act` to every vertex weight in the component of `v` and
    /// returns the number of vertices updated (at least 1: `v` itself).
    pub fn component_apply(&mut self, v: Vertex, act: ActionOf<M>) -> u64 {
        let comp = self.component(v);
        for &x in &comp {
            self.weight[x] = act.act_weight(self.weight[x]);
        }
        comp.len() as u64
    }

    /// Applies `act` to every vertex weight in the subtree of `v` away from
    /// `parent`.  Returns the number of vertices updated, or `None` if
    /// `(v, parent)` is not an edge.
    pub fn subtree_apply(&mut self, v: Vertex, parent: Vertex, act: ActionOf<M>) -> Option<u64> {
        let sub = self.subtree_vertices(v, parent)?;
        for &x in &sub {
            self.weight[x] = act.act_weight(self.weight[x]);
        }
        Some(sub.len() as u64)
    }

    /// Size of the component containing `v`.
    pub fn component_size(&self, v: Vertex) -> usize {
        self.component(v).len()
    }

    /// Diameter (in edges) of the component containing `v`.
    pub fn component_diameter(&self, v: Vertex) -> usize {
        let (far, _) = self.farthest_from(v);
        let (_, d) = self.farthest_from(far);
        d
    }

    /// Distance (in edges) from `v` to the nearest marked vertex in its
    /// component, or `None` if no marked vertex is reachable.
    pub fn nearest_marked_distance(&self, v: Vertex) -> Option<usize> {
        let mut seen = HashSet::new();
        seen.insert(v);
        let mut queue = VecDeque::from([(v, 0usize)]);
        while let Some((x, d)) = queue.pop_front() {
            if self.marked[x] {
                return Some(d);
            }
            for &y in &self.adj[x] {
                if seen.insert(y) {
                    queue.push_back((y, d + 1));
                }
            }
        }
        None
    }

    /// Lowest common ancestor of `u` and `v` when the tree is rooted at `r`.
    pub fn lca(&self, u: Vertex, v: Vertex, r: Vertex) -> Option<Vertex> {
        let pu = self.path(r, u)?;
        let pv = self.path(r, v)?;
        let set: HashSet<Vertex> = pv.into_iter().collect();
        pu.into_iter().rev().find(|x| set.contains(x))
    }

    /// Total number of edges currently in the forest.
    pub fn num_edges(&self) -> usize {
        self.adj.iter().map(|a| a.len()).sum::<usize>() / 2
    }

    fn fold(&self, vertices: &[Vertex]) -> Agg<M> {
        vertices.iter().fold(Agg::IDENTITY, |acc, &x| {
            Agg::combine(acc, Agg::vertex(self.weight[x]))
        })
    }

    fn bfs_path(&self, u: Vertex, v: Vertex) -> Option<Vec<Vertex>> {
        if u == v {
            return Some(vec![u]);
        }
        let mut pred = vec![usize::MAX; self.adj.len()];
        pred[u] = u;
        let mut queue = VecDeque::from([u]);
        while let Some(x) = queue.pop_front() {
            for &y in &self.adj[x] {
                if pred[y] == usize::MAX {
                    pred[y] = x;
                    if y == v {
                        let mut path = vec![v];
                        let mut cur = v;
                        while cur != u {
                            cur = pred[cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(y);
                }
            }
        }
        None
    }

    fn farthest_from(&self, v: Vertex) -> (Vertex, usize) {
        let mut seen = HashSet::new();
        seen.insert(v);
        let mut queue = VecDeque::from([(v, 0usize)]);
        let mut best = (v, 0);
        while let Some((x, d)) = queue.pop_front() {
            if d > best.1 {
                best = (x, d);
            }
            for &y in &self.adj[x] {
                if seen.insert(y) {
                    queue.push_back((y, d + 1));
                }
            }
        }
        best
    }
}

/// The historical `i64` convenience surface, preserved for the default
/// monoid.  These fold through [`Agg`], so they saturate exactly where the
/// real structures saturate.
impl NaiveForest<SumMinMax> {
    /// Sum of vertex weights along the `u`–`v` path (inclusive).
    pub fn path_sum(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.sum)
    }

    /// Maximum vertex weight along the `u`–`v` path (inclusive).
    pub fn path_max(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.max)
    }

    /// Minimum vertex weight along the `u`–`v` path (inclusive).
    pub fn path_min(&self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_aggregate(u, v).map(|a| a.min)
    }

    /// Sum of vertex weights in the subtree of `v` away from `parent`.
    pub fn subtree_sum(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.sum)
    }

    /// Maximum vertex weight in the subtree of `v` away from `parent`.
    pub fn subtree_max(&self, v: Vertex, parent: Vertex) -> Option<i64> {
        self.subtree_aggregate(v, parent).map(|a| a.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path_forest(n: usize) -> NaiveForest {
        let mut f = NaiveForest::new(n);
        for i in 0..n - 1 {
            assert!(f.link(i, i + 1));
        }
        f
    }

    #[test]
    fn link_cut_connectivity() {
        let mut f: NaiveForest = NaiveForest::new(5);
        assert!(f.link(0, 1));
        assert!(f.link(1, 2));
        assert!(!f.link(0, 2), "cycle rejected");
        assert!(f.connected(0, 2));
        assert!(!f.connected(0, 4));
        assert!(f.cut(1, 2));
        assert!(!f.connected(0, 2));
        assert!(!f.cut(1, 2), "double cut rejected");
    }

    #[test]
    fn path_queries() {
        let mut f = path_forest(6);
        for v in 0..6 {
            f.set_weight(v, (v as i64) * 10);
        }
        assert_eq!(f.path_sum(1, 4), Some(10 + 20 + 30 + 40));
        assert_eq!(f.path_max(0, 5), Some(50));
        assert_eq!(f.path_min(2, 5), Some(20));
        assert_eq!(f.path_length(0, 5), Some(5));
        assert_eq!(f.path_sum(3, 3), Some(30));
        let agg = f.path_aggregate(1, 4).unwrap();
        assert_eq!(agg.edges, 3);
        assert_eq!(agg.count, 4);
    }

    #[test]
    fn subtree_queries() {
        // star centred at 0 with leaves 1..=4
        let mut f: NaiveForest = NaiveForest::new(5);
        for v in 1..5 {
            f.link(0, v);
            f.set_weight(v, v as i64);
        }
        f.set_weight(0, 100);
        assert_eq!(f.subtree_sum(1, 0), Some(1));
        assert_eq!(f.subtree_sum(0, 1), Some(100 + 2 + 3 + 4));
        assert_eq!(f.subtree_size(0, 1), Some(4));
        assert_eq!(f.subtree_max(0, 2), Some(100));
        assert_eq!(f.subtree_sum(1, 3), None, "not an edge");
        assert_eq!(f.component_aggregate(2).sum, 100 + 1 + 2 + 3 + 4);
    }

    #[test]
    fn diameter_and_marked() {
        let mut f = path_forest(7);
        assert_eq!(f.component_diameter(3), 6);
        assert_eq!(f.nearest_marked_distance(0), None);
        f.set_marked(5, true);
        assert_eq!(f.nearest_marked_distance(0), Some(5));
        assert_eq!(f.nearest_marked_distance(5), Some(0));
    }

    #[test]
    fn lca_queries() {
        // rooted at 0: 0-1, 1-2, 1-3, 0-4
        let mut f: NaiveForest = NaiveForest::new(5);
        f.link(0, 1);
        f.link(1, 2);
        f.link(1, 3);
        f.link(0, 4);
        assert_eq!(f.lca(2, 3, 0), Some(1));
        assert_eq!(f.lca(2, 4, 0), Some(0));
        assert_eq!(f.lca(2, 1, 0), Some(1));
    }

    #[test]
    fn components() {
        let mut f: NaiveForest = NaiveForest::new(6);
        f.link(0, 1);
        f.link(2, 3);
        f.link(3, 4);
        assert_eq!(f.component_size(0), 2);
        assert_eq!(f.component_size(3), 3);
        assert_eq!(f.component_size(5), 1);
        assert_eq!(f.num_edges(), 3);
    }

    #[test]
    fn bulk_applies_touch_exactly_the_target_set() {
        use dyntree_primitives::algebra::AddConst;
        // path 0-1-2-3-4-5 plus an isolated pair 6-7
        let mut f: NaiveForest = NaiveForest::new(8);
        for i in 0..5 {
            f.link(i, i + 1);
        }
        f.link(6, 7);
        for v in 0..8 {
            f.set_weight(v, v as i64);
        }
        assert_eq!(f.path_apply(1, 3, AddConst(100)), Some(3));
        assert_eq!(f.weight(0), 0);
        assert_eq!(f.weight(1), 101);
        assert_eq!(f.weight(2), 102);
        assert_eq!(f.weight(3), 103);
        assert_eq!(f.weight(4), 4);
        assert_eq!(f.path_apply(2, 2, AddConst(1)), Some(1), "single vertex");
        assert_eq!(f.weight(2), 103);
        assert_eq!(f.path_apply(0, 6, AddConst(5)), None, "disconnected");
        assert_eq!(f.component_apply(7, AddConst(-10)), 2);
        assert_eq!(f.weight(6), -4);
        assert_eq!(f.weight(7), -3);
        assert_eq!(f.subtree_apply(3, 2, AddConst(1000)), Some(3));
        assert_eq!(f.weight(3), 1103);
        assert_eq!(f.weight(4), 1004);
        assert_eq!(f.weight(5), 1005);
        assert_eq!(f.weight(2), 103, "parent side untouched");
        assert_eq!(f.subtree_apply(0, 5, AddConst(1)), None, "not an edge");
    }

    #[test]
    fn generic_monoid_oracle() {
        use dyntree_primitives::algebra::{MaxEdge, WeightedId};
        let mut f: NaiveForest<MaxEdge> = NaiveForest::new(4);
        for (u, v) in [(0, 1), (1, 2), (2, 3)] {
            f.link(u, v);
        }
        f.set_weight(1, WeightedId { weight: 9, id: 1 });
        f.set_weight(2, WeightedId { weight: 4, id: 2 });
        let a = f.path_aggregate(0, 3).unwrap();
        assert_eq!(a.value, WeightedId { weight: 9, id: 1 });
        let b = f.path_aggregate(2, 3).unwrap();
        assert_eq!(b.value, WeightedId { weight: 4, id: 2 });
    }
}
