//! Mixed readers+writer workloads for the serving layer: one seeded writer
//! trace (batched [`GraphOp`]s, reusing the fuzz generator's adversarial
//! phases) plus independent seeded query streams, one per reader thread.
//!
//! Reader streams are generated from per-reader seeds derived from the mix
//! seed, so the *set* of queries each reader issues is reproducible even
//! though the epoch each query lands on depends on scheduling — exactly the
//! split the serve differential needs: replay the writer trace to build a
//! per-epoch oracle, run the readers live, then check every recorded
//! `(epoch, query, answer)` triple against the oracle for that epoch.

use dyntree_primitives::ops::GraphOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::fuzz::FuzzTraceGen;

/// One read-side query of a serving workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ServeQuery {
    /// Are `u` and `v` connected?
    Connected(usize, usize),
    /// How many vertices in `v`'s component?
    ComponentSize(usize),
    /// Monoid aggregate over `v`'s component.
    ComponentAgg(usize),
}

/// A generated serving workload: the writer's batches plus one query
/// stream per reader.
#[derive(Clone, Debug)]
pub struct ServeMix {
    /// Writer batches, in apply order (the vertex bootstrap rides batch 0).
    pub writer_batches: Vec<Vec<GraphOp>>,
    /// One query stream per reader thread.
    pub reader_queries: Vec<Vec<ServeQuery>>,
}

/// Deterministic generator of mixed readers+writer serving workloads.
///
/// ```
/// use dyntree_workloads::ServeMixGen;
///
/// let mix = ServeMixGen::new(7).with_readers(3).generate();
/// assert_eq!(mix.reader_queries.len(), 3);
/// assert_eq!(
///     mix.writer_batches,
///     ServeMixGen::new(7).with_readers(3).generate().writer_batches,
/// );
/// ```
#[derive(Clone, Debug)]
pub struct ServeMixGen {
    seed: u64,
    ops: usize,
    batch_size: usize,
    readers: usize,
    queries_per_reader: usize,
    vertices: usize,
    max_vertices: usize,
    component_apply_rate: f64,
}

impl ServeMixGen {
    /// A mix with the default profile: a 10 000-op writer trace in batches
    /// of 64 over a 64→256-vertex graph, 2 readers × 2 000 queries.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ops: 10_000,
            batch_size: 64,
            readers: 2,
            queries_per_reader: 2_000,
            vertices: 64,
            max_vertices: 256,
            component_apply_rate: 0.0,
        }
    }

    /// The seed this generator reproduces from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the writer trace length (ops, excluding the bootstrap).
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the writer batch size.
    pub fn with_batch_size(mut self, size: usize) -> Self {
        self.batch_size = size.max(1);
        self
    }

    /// Sets the number of reader streams.
    pub fn with_readers(mut self, readers: usize) -> Self {
        self.readers = readers.max(1);
        self
    }

    /// Sets the number of queries in each reader stream.
    pub fn with_queries_per_reader(mut self, q: usize) -> Self {
        self.queries_per_reader = q;
        self
    }

    /// Sets the initial vertex count of the writer trace.
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.vertices = n;
        self.max_vertices = self.max_vertices.max(n);
        self
    }

    /// Caps mid-trace vertex growth.
    pub fn with_max_vertices(mut self, n: usize) -> Self {
        self.max_vertices = n.max(self.vertices);
        self
    }

    /// Mixes `ComponentApply` ops into the writer trace at `rate` (default
    /// 0, keeping pre-existing seeds byte-stable).  Serve workloads never
    /// emit `PathApply`: the vertices a path op touches depend on the
    /// engine's spanning-forest shape, which the serve oracle (a plain edge
    /// set) cannot reconstruct — component applies are structure-independent
    /// and replayable.
    pub fn with_component_applies(mut self, rate: f64) -> Self {
        self.component_apply_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Generates the workload.
    pub fn generate(&self) -> ServeMix {
        let writer_batches = FuzzTraceGen::new(self.seed)
            .with_ops(self.ops)
            .with_vertices(self.vertices)
            .with_max_vertices(self.max_vertices)
            .with_bulk_applies(0.0, self.component_apply_rate)
            .batches(self.batch_size);
        let reader_queries = (0..self.readers).map(|r| self.reader_stream(r)).collect();
        ServeMix {
            writer_batches,
            reader_queries,
        }
    }

    /// The query stream of reader `r` (derived seed, so streams are
    /// independent and individually reproducible).
    fn reader_stream(&self, r: usize) -> Vec<ServeQuery> {
        let mut rng = StdRng::seed_from_u64(
            self.seed
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(r as u64 + 1),
        );
        // queries may range slightly past the vertex cap: out-of-range ids
        // exercise the snapshot's lenient-answer contract
        let universe = self.max_vertices + 2;
        (0..self.queries_per_reader)
            .map(|_| match rng.random_range(0..4u32) {
                0 => ServeQuery::ComponentSize(rng.random_range(0..universe)),
                1 => ServeQuery::ComponentAgg(rng.random_range(0..universe)),
                _ => ServeQuery::Connected(
                    rng.random_range(0..universe),
                    rng.random_range(0..universe),
                ),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mixes_are_reproducible_from_the_seed() {
        let g = ServeMixGen::new(42).with_readers(3).with_ops(2_000);
        let a = g.generate();
        let b = g.generate();
        assert_eq!(a.writer_batches, b.writer_batches);
        assert_eq!(a.reader_queries, b.reader_queries);
        let c = ServeMixGen::new(43)
            .with_readers(3)
            .with_ops(2_000)
            .generate();
        assert_ne!(a.reader_queries, c.reader_queries);
    }

    #[test]
    fn reader_streams_are_independent_and_sized() {
        let mix = ServeMixGen::new(1)
            .with_readers(4)
            .with_queries_per_reader(500)
            .generate();
        assert_eq!(mix.reader_queries.len(), 4);
        assert!(mix.reader_queries.iter().all(|q| q.len() == 500));
        assert_ne!(mix.reader_queries[0], mix.reader_queries[1]);
        // every query kind appears
        let flat: Vec<ServeQuery> = mix.reader_queries.concat();
        assert!(flat.iter().any(|q| matches!(q, ServeQuery::Connected(..))));
        assert!(flat
            .iter()
            .any(|q| matches!(q, ServeQuery::ComponentSize(..))));
        assert!(flat
            .iter()
            .any(|q| matches!(q, ServeQuery::ComponentAgg(..))));
    }

    #[test]
    fn writer_batches_replay_the_fuzz_trace() {
        let mix = ServeMixGen::new(9)
            .with_ops(1_000)
            .with_batch_size(32)
            .generate();
        let flat: Vec<GraphOp> = mix.writer_batches.concat();
        assert_eq!(flat.len(), 1_001, "bootstrap + ops");
        assert!(matches!(flat[0], GraphOp::AddVertices(..)));
    }
}
