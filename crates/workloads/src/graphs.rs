//! Synthetic stand-ins for the real-world graphs of Table 2.
//!
//! The paper's evaluation extracts BFS and random-incremental spanning forests
//! from four real graphs (USA roads, English Wikipedia, StackOverflow
//! temporal, Twitter).  Those datasets are not shipped with this repository;
//! what the evaluation actually exercises is their *structure*: a
//! high-diameter, low-degree road network versus low-diameter, heavy-tailed
//! web/social networks.  The generators below produce graphs with those
//! profiles at laptop scale (the substitution is recorded in `DESIGN.md` §5).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::Edge;

/// An undirected multigraph-free graph given by an edge list.
#[derive(Clone, Debug)]
pub struct Graph {
    /// Number of vertices.
    pub n: usize,
    /// Undirected edges, deduplicated, no self loops.
    pub edges: Vec<Edge>,
    /// Human-readable name used by the benchmark harness.
    pub name: &'static str,
}

impl Graph {
    /// Adjacency-list view.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }
}

/// A road-network stand-in: a `side x side` 2-D grid with a small fraction of
/// edges removed.  High diameter, maximum degree 4 — the same profile as the
/// USA road network.
pub fn road_grid_graph(side: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let n = side * side;
    let idx = |r: usize, c: usize| r * side + c;
    let mut edges = Vec::with_capacity(2 * n);
    for r in 0..side {
        for c in 0..side {
            if c + 1 < side && rng.random_bool(0.97) {
                edges.push((idx(r, c), idx(r, c + 1)));
            }
            if r + 1 < side && rng.random_bool(0.97) {
                edges.push((idx(r, c), idx(r + 1, c)));
            }
        }
    }
    Graph {
        n,
        edges,
        name: "ROAD",
    }
}

/// A web-graph stand-in: RMAT-style recursive matrix generator with skewed
/// quadrant probabilities, producing a heavy-tailed degree distribution and a
/// low-diameter giant component (the ENWiki profile).
pub fn power_law_graph(scale: u32, avg_degree: usize, seed: u64) -> Graph {
    rmat(scale, avg_degree, [0.57, 0.19, 0.19, 0.05], seed, "WEB")
}

/// A social-network stand-in with an even more skewed RMAT parameterisation
/// (the Twitter profile).
pub fn social_rmat_graph(scale: u32, avg_degree: usize, seed: u64) -> Graph {
    rmat(scale, avg_degree, [0.65, 0.15, 0.15, 0.05], seed, "SOC")
}

/// A temporal-interaction stand-in: preferential attachment where each new
/// vertex posts several interactions to existing popular vertices (the
/// StackOverflow profile).
///
/// Unlike the other generators, the edge list keeps **generation order**
/// (deduplicated without sorting): the order *is* time, which is what makes
/// this graph the natural input for
/// [`crate::streams::sliding_window_stream`].
pub fn temporal_graph(n: usize, edges_per_vertex: usize, seed: u64) -> Graph {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut endpoints: Vec<usize> = vec![0];
    let mut edges = Vec::with_capacity(n * edges_per_vertex);
    for v in 1..n {
        for _ in 0..edges_per_vertex {
            let target = if rng.random_bool(0.2) {
                rng.random_range(0..v)
            } else {
                endpoints[rng.random_range(0..endpoints.len())]
            };
            if target != v {
                edges.push((target.min(v), target.max(v)));
                endpoints.push(target);
            }
        }
        endpoints.push(v);
    }
    dedupe_keep_order(n, edges, "TEMP")
}

fn rmat(scale: u32, avg_degree: usize, p: [f64; 4], seed: u64, name: &'static str) -> Graph {
    let n = 1usize << scale;
    let m = n * avg_degree;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(m);
    let cum = [p[0], p[0] + p[1], p[0] + p[1] + p[2]];
    for _ in 0..m {
        let (mut lo_u, mut hi_u) = (0usize, n);
        let (mut lo_v, mut hi_v) = (0usize, n);
        while hi_u - lo_u > 1 {
            let r: f64 = rng.random();
            let (du, dv) = if r < cum[0] {
                (0, 0)
            } else if r < cum[1] {
                (0, 1)
            } else if r < cum[2] {
                (1, 0)
            } else {
                (1, 1)
            };
            let mid_u = (lo_u + hi_u) / 2;
            let mid_v = (lo_v + hi_v) / 2;
            if du == 0 {
                hi_u = mid_u;
            } else {
                lo_u = mid_u;
            }
            if dv == 0 {
                hi_v = mid_v;
            } else {
                lo_v = mid_v;
            }
        }
        let (u, v) = (lo_u, lo_v);
        if u != v {
            edges.push((u.min(v), u.max(v)));
        }
    }
    dedupe(n, edges, name)
}

fn dedupe(n: usize, mut edges: Vec<Edge>, name: &'static str) -> Graph {
    edges.sort_unstable();
    edges.dedup();
    Graph { n, edges, name }
}

/// Deduplication that preserves first-occurrence order (for generators whose
/// edge order carries temporal meaning).
fn dedupe_keep_order(n: usize, edges: Vec<Edge>, name: &'static str) -> Graph {
    let mut seen = std::collections::HashSet::with_capacity(edges.len());
    let edges = edges.into_iter().filter(|&e| seen.insert(e)).collect();
    Graph { n, edges, name }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_is_low_degree() {
        let g = road_grid_graph(30, 1);
        assert_eq!(g.n, 900);
        let adj = g.adjacency();
        assert!(adj.iter().all(|a| a.len() <= 4));
        assert!(g.edges.len() > 1500);
    }

    #[test]
    fn rmat_has_heavy_tail() {
        let g = power_law_graph(12, 8, 2);
        let adj = g.adjacency();
        let max_deg = adj.iter().map(|a| a.len()).max().unwrap();
        assert!(max_deg > 100, "expected a hub, got max degree {}", max_deg);
    }

    #[test]
    fn graphs_have_no_self_loops_or_duplicates() {
        for g in [
            road_grid_graph(20, 3),
            power_law_graph(10, 6, 3),
            social_rmat_graph(10, 6, 3),
            temporal_graph(2000, 4, 3),
        ] {
            let mut seen = std::collections::HashSet::new();
            for &(u, v) in &g.edges {
                assert_ne!(u, v, "{}: self loop", g.name);
                assert!(u < g.n && v < g.n, "{}: vertex out of range", g.name);
                assert!(seen.insert((u, v)), "{}: duplicate edge", g.name);
            }
        }
    }

    #[test]
    fn temporal_graph_preserves_generation_order() {
        // each edge is created by its larger endpoint (targets are always
        // older vertices), so generation order means nondecreasing max
        let g = temporal_graph(2000, 4, 3);
        assert!(
            g.edges.windows(2).all(|w| w[0].1 <= w[1].1),
            "edge order must be time order"
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = temporal_graph(1000, 3, 7);
        let b = temporal_graph(1000, 3, 7);
        assert_eq!(a.edges, b.edges);
    }
}
