//! Seeded fuzz-trace generation for differential testing: [`FuzzTraceGen`]
//! turns a printable `u64` seed into a long, adversarial [`GraphOp`] trace.
//!
//! The generator is the scenario-diversity engine behind the workspace's
//! differential fuzz harness (`fuzz_differential` in the bench crate) and
//! the delete-heavy determinism tests: it cycles through *phases* — star,
//! chain and clique topology bursts, mixed churn, delete-heavy teardown —
//! while sprinkling in vertex growth, weight updates, duplicate edges,
//! missing deletes and outright invalid operations (self loops,
//! out-of-range endpoints), so a single trace crosses every outcome class
//! of the batch API many times.
//!
//! Every trace is **reproducible from its seed alone**: the same seed and
//! configuration produce the same ops on every machine, so a divergence
//! report only ever needs to print one `u64`.

use dyntree_primitives::ops::GraphOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use std::collections::HashSet;

/// One phase kind of a generated trace.  Phases give the trace *shape*:
/// bursts build adversarial topologies (a star concentrates tree edges on a
/// hub, a clique is almost all non-tree edges, a chain maximizes bridge
/// deletions), churn interleaves the op kinds, teardown produces the long
/// consecutive delete runs the parallel drain feeds on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Phase {
    /// Insert a star around a random hub (tree-edge heavy, high degree).
    StarBurst,
    /// Insert a path through a random vertex window (bridges everywhere).
    ChainBurst,
    /// Insert all pairs of a small vertex subset (non-tree heavy).
    CliqueBurst,
    /// Insert uniformly random edges.
    RandomBurst,
    /// Alternate inserts and deletes roughly 50/50.
    Churn,
    /// Delete-heavy phase (~75 % deletes) over the live edge set.
    Teardown,
}

/// Deterministic, seeded generator of adversarial [`GraphOp`] traces.
///
/// ```
/// use dyntree_workloads::FuzzTraceGen;
///
/// let trace = FuzzTraceGen::new(7).with_ops(500).generate();
/// assert_eq!(trace, FuzzTraceGen::new(7).with_ops(500).generate());
/// assert!(trace.len() >= 500);
/// ```
#[derive(Clone, Debug)]
pub struct FuzzTraceGen {
    seed: u64,
    ops: usize,
    initial_vertices: usize,
    max_vertices: usize,
    invalid_rate: f64,
    weight_rate: f64,
    /// Probability of a `PathApply` op per slot (default 0: bulk updates are
    /// opt-in so existing traces stay byte-stable under their seeds).
    path_apply_rate: f64,
    /// Probability of a `ComponentApply` op per slot (default 0).
    component_apply_rate: f64,
    /// Probability that a phase pick lands on churn/teardown instead of an
    /// insert burst; raising it makes traces delete-heavy.
    mutate_bias: f64,
    /// When set, every insert burst is a clique burst over a small window
    /// (see [`level_churn`](Self::level_churn)).
    clique_bias: bool,
}

impl FuzzTraceGen {
    /// A generator with the default mixed profile: 10 000 ops over an
    /// initially 64-vertex graph that may grow to 256, ~2 % invalid ops and
    /// ~3 % weight updates.
    pub fn new(seed: u64) -> Self {
        Self {
            seed,
            ops: 10_000,
            initial_vertices: 64,
            max_vertices: 256,
            invalid_rate: 0.02,
            weight_rate: 0.03,
            path_apply_rate: 0.0,
            component_apply_rate: 0.0,
            mutate_bias: 0.5,
            clique_bias: false,
        }
    }

    /// The seed this generator reproduces from (print it in failure reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Sets the approximate trace length (the trace is clipped to exactly
    /// this many ops after the leading `AddVertices` bootstrap).
    pub fn with_ops(mut self, ops: usize) -> Self {
        self.ops = ops;
        self
    }

    /// Sets the initial vertex count (the leading `AddVertices`).
    pub fn with_vertices(mut self, n: usize) -> Self {
        self.initial_vertices = n;
        self.max_vertices = self.max_vertices.max(n);
        self
    }

    /// Caps mid-trace vertex growth.
    pub fn with_max_vertices(mut self, n: usize) -> Self {
        self.max_vertices = n.max(self.initial_vertices);
        self
    }

    /// Sets the fraction of deliberately invalid ops (self loops and
    /// out-of-range endpoints).
    pub fn with_invalid_rate(mut self, rate: f64) -> Self {
        self.invalid_rate = rate.clamp(0.0, 1.0);
        self
    }

    /// Enables bulk weight updates: `path_rate` of the slots become
    /// `PathApply` ops and `comp_rate` become `ComponentApply` ops (each with
    /// a ~5 % chance of a deliberately out-of-range vertex, and random
    /// endpoint pairs that are frequently disconnected — the benign-skip
    /// path).  Off by default so pre-existing seeded traces stay
    /// byte-identical.  Consumers whose oracle cannot replay spanning-tree
    /// paths (the serve harness: a path's vertex set depends on the engine's
    /// forest shape, not just the edge set) pass `path_rate = 0.0` and keep
    /// the structure-independent `ComponentApply` ops only.
    pub fn with_bulk_applies(mut self, path_rate: f64, comp_rate: f64) -> Self {
        self.path_apply_rate = path_rate.clamp(0.0, 1.0);
        self.component_apply_rate = comp_rate.clamp(0.0, 1.0);
        self
    }

    /// Biases phase selection towards churn/teardown so that deletions make
    /// up well over half of the mutations once the graph is built — the
    /// profile the parallel batch-deletion path is measured and tested on.
    pub fn delete_heavy(mut self) -> Self {
        self.mutate_bias = 0.85;
        self
    }

    /// Dense small-component profile: every insert burst is a clique over a
    /// small window, and mutation phases dominate, so repeated tree-edge
    /// deletions inside those dense pockets drive the survivors' HDT levels
    /// up *between* the long delete runs.  Combine with a small vertex
    /// universe: this is the shape that exercises the rebuild escape
    /// hatch's level handling, where a bug needs bumped non-tree edges plus
    /// a rebuild plus a targeted later delete to surface — a composition
    /// uniform random traces rarely hit.
    pub fn level_churn(mut self) -> Self {
        self.mutate_bias = 0.7;
        self.clique_bias = true;
        self
    }

    /// Generates the trace: a leading `AddVertices` bootstrap (consumers
    /// start from an **empty** engine) followed by exactly
    /// [`with_ops`](Self::with_ops) operations.
    pub fn generate(&self) -> Vec<GraphOp> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut n = self.initial_vertices.max(2);
        let mut ops: Vec<GraphOp> = Vec::with_capacity(self.ops + 1);
        ops.push(GraphOp::AddVertices(n));
        let mut live: Vec<(usize, usize)> = Vec::new();
        let mut live_set: HashSet<(usize, usize)> = HashSet::new();
        while ops.len() < self.ops + 1 {
            let phase = self.pick_phase(&mut rng, live.len());
            let len = rng.random_range(16..(self.ops / 8).max(17));
            for _ in 0..len {
                if ops.len() > self.ops {
                    break;
                }
                // cross-cutting sprinkles first: growth / weights / invalid
                if n < self.max_vertices && rng.random::<f64>() < 0.004 {
                    let grow = rng.random_range(1..8usize).min(self.max_vertices - n);
                    ops.push(GraphOp::AddVertices(grow));
                    n += grow;
                    continue;
                }
                if rng.random::<f64>() < self.weight_rate {
                    // occasionally out of range, exercising the rejection
                    let v = rng.random_range(0..n + 2);
                    ops.push(GraphOp::SetWeight(v, rng.random_range(-100..100)));
                    continue;
                }
                if rng.random::<f64>() < self.path_apply_rate {
                    let (u, v) = if rng.random_bool(0.05) {
                        (rng.random_range(0..n), n + rng.random_range(0..4usize))
                    // rejected
                    } else {
                        // random pairs are frequently disconnected: benign skip
                        (rng.random_range(0..n), rng.random_range(0..n))
                    };
                    ops.push(GraphOp::PathApply(u, v, rng.random_range(-50..50i64)));
                    continue;
                }
                if rng.random::<f64>() < self.component_apply_rate {
                    let v = if rng.random_bool(0.05) {
                        n + rng.random_range(0..4usize) // rejected
                    } else {
                        rng.random_range(0..n)
                    };
                    ops.push(GraphOp::ComponentApply(v, rng.random_range(-50..50i64)));
                    continue;
                }
                if rng.random::<f64>() < self.invalid_rate {
                    ops.push(self.invalid_op(&mut rng, n));
                    continue;
                }
                let delete = match phase {
                    Phase::Churn => rng.random_bool(0.5),
                    // the clique-biased profile tears down in dense blocks:
                    // long consecutive delete runs are what arm the
                    // batch-delete bulk path (and the rebuild hatch) at all
                    Phase::Teardown if self.clique_bias => rng.random_bool(0.95),
                    Phase::Teardown => rng.random_bool(0.75),
                    _ => rng.random_bool(0.05),
                };
                if delete {
                    ops.push(self.delete_op(&mut rng, n, &mut live, &mut live_set));
                } else {
                    let (u, v) = self.insert_endpoints(&mut rng, n, phase);
                    ops.push(GraphOp::InsertEdge(u, v));
                    if u != v && live_set.insert((u.min(v), u.max(v))) {
                        live.push((u.min(v), u.max(v)));
                    }
                }
            }
        }
        ops
    }

    /// The trace as batches of at most `batch_size` ops each, preserving
    /// order (the bootstrap rides the first batch), so replaying the batches
    /// in order replays the trace exactly.
    pub fn batches(&self, batch_size: usize) -> Vec<Vec<GraphOp>> {
        let ops = self.generate();
        ops.chunks(batch_size.max(1))
            .map(<[GraphOp]>::to_vec)
            .collect()
    }

    fn pick_phase(&self, rng: &mut StdRng, live: usize) -> Phase {
        if live > 4 && rng.random::<f64>() < self.mutate_bias {
            return if rng.random_bool(0.55) {
                Phase::Teardown
            } else {
                Phase::Churn
            };
        }
        if self.clique_bias {
            return Phase::CliqueBurst;
        }
        match rng.random_range(0..4) {
            0 => Phase::StarBurst,
            1 => Phase::ChainBurst,
            2 => Phase::CliqueBurst,
            _ => Phase::RandomBurst,
        }
    }

    /// Endpoints for one insertion under the current phase's topology.
    fn insert_endpoints(&self, rng: &mut StdRng, n: usize, phase: Phase) -> (usize, usize) {
        match phase {
            Phase::StarBurst => {
                // hub chosen per-op from a small pool so stars overlap
                let hub = rng.random_range(0..8.min(n));
                (hub, rng.random_range(0..n))
            }
            Phase::ChainBurst => {
                let i = rng.random_range(0..n - 1);
                (i, i + 1)
            }
            Phase::CliqueBurst => {
                // all pairs of a small window: almost every edge after the
                // first few closes a cycle
                let base = rng.random_range(0..n);
                let k = 12.min(n);
                (
                    (base + rng.random_range(0..k)) % n,
                    (base + rng.random_range(0..k)) % n,
                )
            }
            _ => (rng.random_range(0..n), rng.random_range(0..n)),
        }
    }

    /// One deletion: mostly a live edge (tree and non-tree alike), sometimes
    /// a random pair (usually missing), occasionally a *repeat* of a live
    /// edge kept in the pool so a later delete of the same edge is a benign
    /// skip.
    fn delete_op(
        &self,
        rng: &mut StdRng,
        n: usize,
        live: &mut Vec<(usize, usize)>,
        live_set: &mut HashSet<(usize, usize)>,
    ) -> GraphOp {
        if !live.is_empty() && rng.random_bool(0.8) {
            let idx = rng.random_range(0..live.len());
            let (u, v) = live[idx];
            if rng.random_bool(0.9) {
                live.swap_remove(idx);
                live_set.remove(&(u, v));
            } // else: keep it listed — a later pick emits a duplicate delete
            GraphOp::DeleteEdge(u, v)
        } else {
            GraphOp::DeleteEdge(rng.random_range(0..n), rng.random_range(0..n))
        }
    }

    fn invalid_op(&self, rng: &mut StdRng, n: usize) -> GraphOp {
        match rng.random_range(0..4) {
            0 => {
                let v = rng.random_range(0..n);
                GraphOp::InsertEdge(v, v)
            }
            1 => {
                let v = rng.random_range(0..n);
                GraphOp::DeleteEdge(v, v)
            }
            2 => GraphOp::InsertEdge(rng.random_range(0..n), n + rng.random_range(0..5usize)),
            _ => GraphOp::DeleteEdge(n + rng.random_range(0..5usize), rng.random_range(0..n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn traces_are_reproducible_from_the_seed() {
        let a = FuzzTraceGen::new(99).with_ops(2_000).generate();
        let b = FuzzTraceGen::new(99).with_ops(2_000).generate();
        assert_eq!(a, b);
        let c = FuzzTraceGen::new(100).with_ops(2_000).generate();
        assert_ne!(a, c, "different seeds give different traces");
    }

    #[test]
    fn traces_have_the_advertised_length_and_bootstrap() {
        let g = FuzzTraceGen::new(3).with_ops(1_234).with_vertices(32);
        let ops = g.generate();
        assert_eq!(ops.len(), 1_235);
        assert_eq!(ops[0], GraphOp::AddVertices(32));
        let batches = g.batches(100);
        let flat: Vec<GraphOp> = batches.iter().flatten().copied().collect();
        assert_eq!(flat, ops);
        assert!(batches.iter().all(|b| !b.is_empty() && b.len() <= 100));
    }

    #[test]
    fn traces_cross_every_op_kind() {
        let ops = FuzzTraceGen::new(1)
            .with_ops(5_000)
            .with_bulk_applies(0.02, 0.015)
            .generate();
        let mut counts = [0usize; 6];
        for op in &ops {
            match op {
                GraphOp::AddVertices(..) => counts[0] += 1,
                GraphOp::InsertEdge(..) => counts[1] += 1,
                GraphOp::DeleteEdge(..) => counts[2] += 1,
                GraphOp::SetWeight(..) => counts[3] += 1,
                GraphOp::PathApply(..) => counts[4] += 1,
                GraphOp::ComponentApply(..) => counts[5] += 1,
            }
        }
        assert!(counts.iter().all(|&c| c > 0), "counts={counts:?}");
        // invalid ops show up too
        assert!(
            ops.iter().any(|op| matches!(op,
                GraphOp::InsertEdge(u, v) | GraphOp::DeleteEdge(u, v) if u == v)),
            "self loops present"
        );
        // …including bulk applies deliberately out of range at emission time
        let mut n = 0usize;
        let mut oob = 0usize;
        for op in &ops {
            match *op {
                GraphOp::AddVertices(k) => n += k,
                GraphOp::PathApply(u, v, _) if u >= n || v >= n => oob += 1,
                GraphOp::ComponentApply(v, _) if v >= n => oob += 1,
                _ => {}
            }
        }
        assert!(oob > 0, "out-of-range bulk applies present");
        // bulk applies stay opt-in: the default profile emits none
        let plain = FuzzTraceGen::new(1).with_ops(5_000).generate();
        assert!(!plain
            .iter()
            .any(|op| matches!(op, GraphOp::PathApply(..) | GraphOp::ComponentApply(..))));
    }

    #[test]
    fn delete_heavy_traces_are_actually_delete_heavy() {
        let ops = FuzzTraceGen::new(5)
            .with_ops(8_000)
            .delete_heavy()
            .generate();
        let inserts = ops
            .iter()
            .filter(|o| matches!(o, GraphOp::InsertEdge(..)))
            .count();
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, GraphOp::DeleteEdge(..)))
            .count();
        assert!(
            deletes * 2 >= inserts,
            "deletes={deletes} vs inserts={inserts}"
        );
        assert!(deletes > 2_000, "deletes={deletes}");
    }

    #[test]
    fn level_churn_traces_are_reproducible_and_mutation_heavy() {
        let g = FuzzTraceGen::new(17)
            .with_ops(3_000)
            .with_vertices(24)
            .with_max_vertices(24)
            .level_churn();
        let ops = g.generate();
        assert_eq!(ops, g.generate());
        let deletes = ops
            .iter()
            .filter(|o| matches!(o, GraphOp::DeleteEdge(..)))
            .count();
        assert!(deletes > 500, "deletes={deletes}");
    }

    #[test]
    fn growth_never_exceeds_the_cap() {
        let cap = 80;
        let ops = FuzzTraceGen::new(11)
            .with_ops(6_000)
            .with_vertices(64)
            .with_max_vertices(cap)
            .generate();
        let total: usize = ops
            .iter()
            .filter_map(|op| match op {
                GraphOp::AddVertices(k) => Some(*k),
                _ => None,
            })
            .sum();
        assert!(total <= cap, "grew to {total} > cap {cap}");
    }
}
