//! Zipf-attachment trees for the diameter-sweep experiment (Figure 6 and
//! Figure 16 of the paper).
//!
//! The paper generates trees by having node `i` pick a target in `[0, i)`
//! according to a Zipf distribution with parameter `alpha` and then randomly
//! permuting node ids.  As `alpha` grows, attachment concentrates on the
//! lowest-numbered vertices and the diameter shrinks towards a star.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::forests::permute_labels;
use crate::Forest;

/// Samples targets `j ∈ [0, limit)` with probability proportional to
/// `1 / (j + 1)^alpha` using a precomputed prefix-sum table and binary search.
#[derive(Clone, Debug)]
pub struct ZipfSampler {
    prefix: Vec<f64>,
}

impl ZipfSampler {
    /// Builds a sampler able to draw targets below any `limit <= max_n`.
    pub fn new(max_n: usize, alpha: f64) -> Self {
        let mut prefix = Vec::with_capacity(max_n + 1);
        prefix.push(0.0);
        let mut acc = 0.0;
        for j in 0..max_n {
            acc += 1.0 / ((j + 1) as f64).powf(alpha);
            prefix.push(acc);
        }
        Self { prefix }
    }

    /// Draws a target in `[0, limit)`.
    pub fn sample(&self, limit: usize, rng: &mut StdRng) -> usize {
        assert!(limit >= 1 && limit < self.prefix.len());
        let total = self.prefix[limit];
        let r: f64 = rng.random_range(0.0..total);
        // Find the smallest j with prefix[j + 1] > r.
        let mut lo = 0usize;
        let mut hi = limit - 1;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if self.prefix[mid + 1] > r {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        lo
    }
}

/// Generates the diameter-sweep tree with `n` vertices and Zipf parameter
/// `alpha` (α = 0 behaves like a uniformly random recursive tree; large α
/// approaches a star).
pub fn zipf_tree(n: usize, alpha: f64, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    if n <= 1 {
        return Forest {
            n,
            edges: Vec::new(),
        };
    }
    let sampler = ZipfSampler::new(n, alpha);
    let mut edges = Vec::with_capacity(n - 1);
    for i in 1..n {
        let j = sampler.sample(i, &mut rng);
        edges.push((j, i));
    }
    permute_labels(Forest { n, edges }, &mut rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_trees_are_forests() {
        for alpha in [0.0, 0.5, 1.0, 1.5, 2.0] {
            let f = zipf_tree(2000, alpha, 5);
            assert!(f.is_forest());
            assert_eq!(f.edges.len(), 1999);
        }
    }

    #[test]
    fn diameter_decreases_with_alpha() {
        let low = zipf_tree(5000, 0.0, 9).diameter();
        let high = zipf_tree(5000, 2.5, 9).diameter();
        assert!(
            high < low,
            "expected diameter to shrink with alpha: {} vs {}",
            high,
            low
        );
        assert!(
            high <= 10,
            "alpha = 2.5 should be close to a star: {}",
            high
        );
    }

    #[test]
    fn sampler_respects_limit() {
        let sampler = ZipfSampler::new(100, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for limit in 1..100 {
            for _ in 0..10 {
                assert!(sampler.sample(limit, &mut rng) < limit);
            }
        }
    }

    #[test]
    fn sampler_is_biased_toward_small_targets() {
        let sampler = ZipfSampler::new(1000, 2.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut zero_count = 0;
        for _ in 0..1000 {
            if sampler.sample(1000, &mut rng) == 0 {
                zero_count += 1;
            }
        }
        assert!(
            zero_count > 400,
            "alpha = 2 should mostly pick 0: {}",
            zero_count
        );
    }
}
