//! Spanning forest extraction, matching the paper's two regimes:
//! breadth-first spanning forests (BFS) and random-incremental spanning
//! forests (RIS).

use std::collections::VecDeque;

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{Forest, Graph};

/// Breadth-first spanning forest of `graph`, starting each component's BFS at
/// a random vertex.  BFS forests of low-diameter graphs are themselves
/// low-diameter, which is exactly the property Figure 5/8 exploit.
pub fn bfs_forest(graph: &Graph, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    let adj = graph.adjacency();
    let n = graph.n;
    let mut order: Vec<usize> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut visited = vec![false; n];
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for &start in &order {
        if visited[start] {
            continue;
        }
        visited[start] = true;
        let mut q = VecDeque::from([start]);
        while let Some(x) = q.pop_front() {
            for &y in &adj[x] {
                if !visited[y] {
                    visited[y] = true;
                    edges.push((x, y));
                    q.push_back(y);
                }
            }
        }
    }
    Forest { n, edges }
}

/// Random incremental spanning forest: insert the graph's edges in a random
/// order and keep each edge whose endpoints are not yet connected.
pub fn ris_forest(graph: &Graph, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut order: Vec<usize> = (0..graph.edges.len()).collect();
    order.shuffle(&mut rng);
    let mut parent: Vec<usize> = (0..graph.n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut edges = Vec::with_capacity(graph.n.saturating_sub(1));
    for idx in order {
        let (u, v) = graph.edges[idx];
        let (ru, rv) = (find(&mut parent, u), find(&mut parent, v));
        if ru != rv {
            // randomised union keeps the forest's shape unbiased
            if rng.random_bool(0.5) {
                parent[ru] = rv;
            } else {
                parent[rv] = ru;
            }
            edges.push((u, v));
        }
    }
    Forest { n: graph.n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graphs::{power_law_graph, road_grid_graph};

    #[test]
    fn bfs_forest_is_spanning() {
        let g = road_grid_graph(20, 1);
        let f = bfs_forest(&g, 2);
        assert!(f.is_forest());
        // the grid (with 97% edge retention) is essentially connected: the
        // forest should cover almost every vertex
        assert!(f.edges.len() >= g.n - 10);
    }

    #[test]
    fn ris_forest_is_spanning() {
        let g = power_law_graph(10, 8, 4);
        let f = ris_forest(&g, 5);
        assert!(f.is_forest());
        assert!(!f.edges.is_empty());
    }

    #[test]
    fn bfs_forest_of_low_diameter_graph_is_shallow() {
        let g = power_law_graph(12, 16, 6);
        let f = bfs_forest(&g, 7);
        assert!(f.is_forest());
        // BFS trees have depth = eccentricity of the root; a power-law graph's
        // giant component has tiny diameter.
        assert!(f.diameter() < 40, "diameter {}", f.diameter());
    }

    #[test]
    fn spanning_forests_are_deterministic() {
        let g = road_grid_graph(15, 9);
        assert_eq!(bfs_forest(&g, 3).edges, bfs_forest(&g, 3).edges);
        assert_eq!(ris_forest(&g, 3).edges, ris_forest(&g, 3).edges);
    }
}
