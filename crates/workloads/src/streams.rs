//! Dynamic edge streams: the live insert/delete/query traces that drive the
//! general-graph connectivity engine.
//!
//! The static graph generators of [`crate::graphs`] describe *snapshots*; a
//! connectivity engine consumes *streams*.  The generators here turn those
//! snapshots into deterministic operation traces:
//!
//! * [`sliding_window_stream`] replays a graph's edges in generation order
//!   through a sliding lifetime window — the natural trace for
//!   [`crate::temporal_graph`], whose edge order *is* time — so the engine
//!   sees every edge inserted once and deleted once;
//! * [`churn_stream`] keeps a configurable fraction of a graph's edges live
//!   and flips random edges in and out forever, modelling link
//!   failure/repair on a fixed topology (roads, grids).
//!
//! Both interleave connectivity queries at a configurable rate.

use dyntree_primitives::ops::GraphOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Edge, Graph};

/// One operation of a dynamic-graph trace.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Insert edge `(u, v)`.
    Insert(usize, usize),
    /// Delete edge `(u, v)`.
    Delete(usize, usize),
    /// Ask whether `u` and `v` are connected.
    Query(usize, usize),
}

impl StreamOp {
    /// The typed [`GraphOp`] equivalent of a mutation; queries are reads and
    /// have none.
    pub fn as_graph_op(&self) -> Option<GraphOp> {
        match *self {
            StreamOp::Insert(u, v) => Some(GraphOp::InsertEdge(u, v)),
            StreamOp::Delete(u, v) => Some(GraphOp::DeleteEdge(u, v)),
            StreamOp::Query(..) => None,
        }
    }
}

/// A generated operation trace over vertices `0..n`.
#[derive(Clone, Debug)]
pub struct EdgeStream {
    /// Number of vertices.
    pub n: usize,
    /// The operations, in order.
    pub ops: Vec<StreamOp>,
    /// Human-readable name (`"<graph>-window"` / `"<graph>-churn"`).
    pub name: String,
}

impl EdgeStream {
    /// Number of operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Counts of (inserts, deletes, queries).
    pub fn op_counts(&self) -> (usize, usize, usize) {
        let mut c = (0, 0, 0);
        for op in &self.ops {
            match op {
                StreamOp::Insert(..) => c.0 += 1,
                StreamOp::Delete(..) => c.1 += 1,
                StreamOp::Query(..) => c.2 += 1,
            }
        }
        c
    }

    /// The whole trace as one [`GraphOp`] transaction: a leading
    /// `AddVertices(n)` (so the consumer can start from an **empty** graph)
    /// followed by every mutation in stream order.  Queries are reads, not
    /// `GraphOp`s, and are skipped; answer them between batches instead.
    pub fn to_graph_ops(&self) -> Vec<GraphOp> {
        let mut out = Vec::with_capacity(self.ops.len() + 1);
        out.push(GraphOp::AddVertices(self.n));
        out.extend(self.ops.iter().filter_map(StreamOp::as_graph_op));
        out
    }

    /// The trace as [`GraphOp`] batches of at most `batch_size` mutations
    /// each (the first prefixed with the `AddVertices(n)` bootstrap).
    /// Mutation order is preserved across batch boundaries, so applying the
    /// batches in order replays the stream exactly; queries are skipped as
    /// in [`to_graph_ops`](Self::to_graph_ops).
    pub fn graph_op_batches(&self, batch_size: usize) -> Vec<Vec<GraphOp>> {
        let batch_size = batch_size.max(1);
        let mut batches = vec![vec![GraphOp::AddVertices(self.n)]];
        let mut in_last = 0; // mutations in the last batch (bootstrap excluded)
        for op in self.ops.iter().filter_map(StreamOp::as_graph_op) {
            if in_last == batch_size {
                batches.push(Vec::with_capacity(batch_size));
                in_last = 0;
            }
            batches
                .last_mut()
                .expect("at least the bootstrap batch")
                .push(op);
            in_last += 1;
        }
        batches
    }
}

/// Replays `graph.edges` in order through a sliding lifetime window: each
/// edge is inserted when its position arrives and deleted once `window`
/// younger edges have been inserted.  Edges still live at the end are deleted
/// in age order, so every edge is inserted and deleted exactly once.
/// `query_rate` ∈ [0, 1] is the probability of emitting one query (between
/// random endpoints of recent edges) after each insertion — at most one
/// query per insertion; values outside the domain are clamped.
pub fn sliding_window_stream(
    graph: &Graph,
    window: usize,
    query_rate: f64,
    seed: u64,
) -> EdgeStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let window = window.max(1);
    let query_rate = query_rate.clamp(0.0, 1.0);
    let mut ops = Vec::with_capacity(graph.edges.len() * 2);
    let mut live: std::collections::VecDeque<Edge> = std::collections::VecDeque::new();
    for &(u, v) in &graph.edges {
        ops.push(StreamOp::Insert(u, v));
        live.push_back((u, v));
        if live.len() > window {
            let (a, b) = live.pop_front().expect("window is non-empty");
            ops.push(StreamOp::Delete(a, b));
        }
        if rng.random::<f64>() < query_rate {
            let &(a, _) = live
                .get(rng.random_range(0..live.len()))
                .expect("live edge");
            let &(_, b) = live
                .get(rng.random_range(0..live.len()))
                .expect("live edge");
            ops.push(StreamOp::Query(a, b));
        }
    }
    while let Some((a, b)) = live.pop_front() {
        ops.push(StreamOp::Delete(a, b));
    }
    EdgeStream {
        n: graph.n,
        ops,
        name: format!("{}-window{}", graph.name, window),
    }
}

/// Builds the whole graph, then performs `rounds` failure/repair flips: each
/// round deletes one random live edge or re-inserts one random failed edge,
/// keeping roughly `live_fraction` of the edges alive.  `query_rate` ∈
/// [0, 1] is the probability of one query per round (at most one; clamped).
pub fn churn_stream(
    graph: &Graph,
    rounds: usize,
    live_fraction: f64,
    query_rate: f64,
    seed: u64,
) -> EdgeStream {
    let mut rng = StdRng::seed_from_u64(seed);
    let query_rate = query_rate.clamp(0.0, 1.0);
    let mut ops = Vec::with_capacity(graph.edges.len() + rounds * 2);
    let mut live: Vec<Edge> = graph.edges.clone();
    let mut failed: Vec<Edge> = Vec::new();
    for &(u, v) in &graph.edges {
        ops.push(StreamOp::Insert(u, v));
    }
    let target = ((graph.edges.len() as f64) * live_fraction.clamp(0.05, 1.0)) as usize;
    for _ in 0..rounds {
        if live.is_empty() && failed.is_empty() {
            // edgeless graph: there is nothing to churn
            break;
        }
        let delete = if failed.is_empty() {
            true
        } else if live.is_empty() {
            false
        } else {
            // bias flips towards the live-fraction target
            let p = if live.len() > target { 0.7 } else { 0.3 };
            rng.random_bool(p)
        };
        if delete {
            let idx = rng.random_range(0..live.len());
            let (u, v) = live.swap_remove(idx);
            ops.push(StreamOp::Delete(u, v));
            failed.push((u, v));
        } else {
            let idx = rng.random_range(0..failed.len());
            let (u, v) = failed.swap_remove(idx);
            ops.push(StreamOp::Insert(u, v));
            live.push((u, v));
        }
        if rng.random::<f64>() < query_rate {
            let a = rng.random_range(0..graph.n);
            let b = rng.random_range(0..graph.n);
            ops.push(StreamOp::Query(a, b));
        }
    }
    EdgeStream {
        n: graph.n,
        ops,
        name: format!("{}-churn", graph.name),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::temporal_graph;

    #[test]
    fn window_stream_inserts_and_deletes_every_edge_once() {
        let g = temporal_graph(500, 3, 5);
        let s = sliding_window_stream(&g, 64, 0.25, 7);
        let (ins, del, q) = s.op_counts();
        assert_eq!(ins, g.edges.len());
        assert_eq!(del, g.edges.len());
        assert!(q > 0);
        // deletions follow insertions (every delete targets a live edge)
        let mut live = std::collections::HashSet::new();
        for op in &s.ops {
            match *op {
                StreamOp::Insert(u, v) => assert!(live.insert((u, v)), "double insert"),
                StreamOp::Delete(u, v) => assert!(live.remove(&(u, v)), "delete of dead edge"),
                StreamOp::Query(..) => {}
            }
        }
        assert!(live.is_empty(), "all edges deleted at the end");
    }

    #[test]
    fn churn_stream_keeps_edges_valid() {
        let g = temporal_graph(300, 2, 9);
        let s = churn_stream(&g, 2_000, 0.8, 0.1, 11);
        let mut live = std::collections::HashSet::new();
        for op in &s.ops {
            match *op {
                StreamOp::Insert(u, v) => assert!(live.insert((u, v))),
                StreamOp::Delete(u, v) => assert!(live.remove(&(u, v))),
                StreamOp::Query(a, b) => assert!(a < s.n && b < s.n),
            }
        }
    }

    #[test]
    fn streams_on_edgeless_graphs_are_empty_not_panicking() {
        let g = crate::Graph {
            n: 10,
            edges: Vec::new(),
            name: "EMPTY",
        };
        assert!(churn_stream(&g, 100, 0.9, 0.5, 3).is_empty());
        assert!(sliding_window_stream(&g, 8, 0.5, 3).is_empty());
    }

    #[test]
    fn graph_op_emission_covers_every_mutation() {
        use dyntree_primitives::ops::GraphOp;
        let g = temporal_graph(200, 3, 4);
        let s = sliding_window_stream(&g, 32, 0.3, 5);
        let (ins, del, _) = s.op_counts();
        let ops = s.to_graph_ops();
        assert_eq!(ops[0], GraphOp::AddVertices(s.n));
        assert_eq!(ops.len(), 1 + ins + del);
        // batched emission preserves order and content exactly
        let batches = s.graph_op_batches(57);
        let flat: Vec<GraphOp> = batches.iter().flatten().copied().collect();
        assert_eq!(flat, ops);
        assert_eq!(batches[0].len(), 58, "bootstrap rides the first batch");
        for b in &batches[1..] {
            assert!(!b.is_empty() && b.len() <= 57);
        }
    }

    #[test]
    fn streams_are_deterministic() {
        let g = temporal_graph(200, 3, 1);
        let a = sliding_window_stream(&g, 32, 0.5, 2);
        let b = sliding_window_stream(&g, 32, 0.5, 2);
        assert_eq!(a.ops, b.ops);
    }
}
