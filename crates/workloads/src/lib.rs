//! Workload generators reproducing the inputs of the paper's evaluation
//! (Section 6): synthetic trees of varying diameter, Zipf-attachment trees for
//! the diameter sweep, and synthetic stand-ins for the real-world graphs of
//! Table 2 from which BFS and random-incremental spanning forests are
//! extracted.
//!
//! All generators are deterministic given a seed.

pub mod forests;
pub mod fuzz;
pub mod graphs;
pub mod serve;
pub mod spanning;
pub mod streams;
pub mod zipf;

pub use forests::{
    binary_tree, dandelion, kary_tree, path_tree, preferential_attachment_tree, random_tree,
    random_tree_degree3, star_tree, SyntheticTree,
};
pub use fuzz::FuzzTraceGen;
pub use graphs::{power_law_graph, road_grid_graph, social_rmat_graph, temporal_graph, Graph};
pub use serve::{ServeMix, ServeMixGen, ServeQuery};
pub use spanning::{bfs_forest, ris_forest};
pub use streams::{churn_stream, sliding_window_stream, EdgeStream, StreamOp};
pub use zipf::{zipf_tree, ZipfSampler};

/// An edge of a generated tree or graph.
pub type Edge = (usize, usize);

/// A generated forest: number of vertices plus its edge list.
#[derive(Clone, Debug)]
pub struct Forest {
    /// Number of vertices (`0..n`).
    pub n: usize,
    /// Edges of the forest (no duplicates, no self-loops, acyclic).
    pub edges: Vec<Edge>,
}

impl Forest {
    /// Diameter (in edges) of the largest component, computed by double BFS.
    /// Intended for tests and reporting, not for hot paths.
    pub fn diameter(&self) -> usize {
        let adj = self.adjacency();
        let mut seen = vec![false; self.n];
        let mut best = 0;
        for s in 0..self.n {
            if seen[s] {
                continue;
            }
            // first BFS finds the farthest vertex and marks the component
            let (far, _) = bfs_far(&adj, s, Some(&mut seen));
            let (_, d) = bfs_far(&adj, far, None);
            best = best.max(d);
        }
        best
    }

    /// Builds an adjacency-list view of the forest.
    pub fn adjacency(&self) -> Vec<Vec<usize>> {
        let mut adj = vec![Vec::new(); self.n];
        for &(u, v) in &self.edges {
            adj[u].push(v);
            adj[v].push(u);
        }
        adj
    }

    /// Maximum vertex degree.
    pub fn max_degree(&self) -> usize {
        self.adjacency().iter().map(|a| a.len()).max().unwrap_or(0)
    }

    /// Asserts that the edge list really is a forest (used by tests).
    pub fn is_forest(&self) -> bool {
        let mut dsu = dyntree_primitives_dsu::Dsu::new(self.n);
        self.edges.iter().all(|&(u, v)| u != v && dsu.union(u, v))
    }
}

// Small shim so this crate does not need a hard dependency on the primitives
// crate just for the forest validity check.
mod dyntree_primitives_dsu {
    pub struct Dsu {
        parent: Vec<usize>,
    }
    impl Dsu {
        pub fn new(n: usize) -> Self {
            Self {
                parent: (0..n).collect(),
            }
        }
        fn find(&mut self, x: usize) -> usize {
            if self.parent[x] != x {
                let r = self.find(self.parent[x]);
                self.parent[x] = r;
            }
            self.parent[x]
        }
        pub fn union(&mut self, a: usize, b: usize) -> bool {
            let (ra, rb) = (self.find(a), self.find(b));
            if ra == rb {
                return false;
            }
            self.parent[ra] = rb;
            true
        }
    }
}

fn bfs_far(adj: &[Vec<usize>], start: usize, mut seen: Option<&mut Vec<bool>>) -> (usize, usize) {
    use std::collections::VecDeque;
    let mut dist = vec![usize::MAX; adj.len()];
    dist[start] = 0;
    if let Some(seen) = seen.as_deref_mut() {
        seen[start] = true;
    }
    let mut q = VecDeque::from([start]);
    let mut best = (start, 0);
    while let Some(x) = q.pop_front() {
        if dist[x] > best.1 {
            best = (x, dist[x]);
        }
        for &y in &adj[x] {
            if dist[y] == usize::MAX {
                dist[y] = dist[x] + 1;
                if let Some(seen) = seen.as_deref_mut() {
                    seen[y] = true;
                }
                q.push_back(y);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_diameter_of_path() {
        let f = path_tree(10);
        assert_eq!(f.diameter(), 9);
        assert!(f.is_forest());
    }

    #[test]
    fn forest_diameter_of_star() {
        let f = star_tree(10);
        assert_eq!(f.diameter(), 2);
        assert_eq!(f.max_degree(), 9);
    }
}
