//! Synthetic tree generators used by Figures 5, 7, 8 and 9 of the paper:
//! paths, perfect binary trees, perfect k-ary trees, stars, dandelions,
//! random degree-3 trees, unbounded-degree random trees and preferential
//! attachment trees.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::Forest;

/// The synthetic tree families of the evaluation, in the order the paper's
/// figures list them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyntheticTree {
    /// A path on `n` vertices (maximum diameter).
    Path,
    /// A perfect binary tree.
    Binary,
    /// A perfect 64-ary tree.
    KAry64,
    /// A star: one centre adjacent to all other vertices (diameter 2).
    Star,
    /// A dandelion: a path whose last vertex is the centre of a star.
    Dandelion,
    /// A random tree with maximum degree 3.
    Random3,
    /// A uniformly random recursive tree (unbounded degree).
    Random,
    /// A preferential attachment tree.
    PrefAttach,
}

impl SyntheticTree {
    /// All families, in figure order.
    pub const ALL: [SyntheticTree; 8] = [
        SyntheticTree::Path,
        SyntheticTree::Binary,
        SyntheticTree::KAry64,
        SyntheticTree::Star,
        SyntheticTree::Dandelion,
        SyntheticTree::Random3,
        SyntheticTree::Random,
        SyntheticTree::PrefAttach,
    ];

    /// Short label used in benchmark output (matches the paper's x-axis).
    pub fn label(&self) -> &'static str {
        match self {
            SyntheticTree::Path => "Path",
            SyntheticTree::Binary => "Binary",
            SyntheticTree::KAry64 => "64-ary",
            SyntheticTree::Star => "Star",
            SyntheticTree::Dandelion => "Dand",
            SyntheticTree::Random3 => "Random3",
            SyntheticTree::Random => "Random",
            SyntheticTree::PrefAttach => "P-Attach",
        }
    }

    /// Generates an instance of this family with `n` vertices.
    pub fn generate(&self, n: usize, seed: u64) -> Forest {
        match self {
            SyntheticTree::Path => path_tree(n),
            SyntheticTree::Binary => binary_tree(n),
            SyntheticTree::KAry64 => kary_tree(n, 64),
            SyntheticTree::Star => star_tree(n),
            SyntheticTree::Dandelion => dandelion(n),
            SyntheticTree::Random3 => random_tree_degree3(n, seed),
            SyntheticTree::Random => random_tree(n, seed),
            SyntheticTree::PrefAttach => preferential_attachment_tree(n, seed),
        }
    }
}

/// A path `0 - 1 - 2 - ... - (n-1)`.
pub fn path_tree(n: usize) -> Forest {
    let edges = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
    Forest { n, edges }
}

/// A perfect binary tree laid out in heap order.
pub fn binary_tree(n: usize) -> Forest {
    kary_tree(n, 2)
}

/// A perfect `k`-ary tree laid out in heap order (vertex `i > 0` is attached
/// to `(i - 1) / k`).
pub fn kary_tree(n: usize, k: usize) -> Forest {
    assert!(k >= 1);
    let edges = (1..n).map(|i| ((i - 1) / k, i)).collect();
    Forest { n, edges }
}

/// A star with centre `0`.
pub fn star_tree(n: usize) -> Forest {
    let edges = (1..n).map(|i| (0, i)).collect();
    Forest { n, edges }
}

/// A dandelion: the first `n / 2` vertices form a path (the stem) and the
/// remaining vertices attach to the end of the stem as leaves (the head).
/// This mixes a high-diameter part with a very high degree vertex, which is
/// exactly the case ternarization-based structures struggle with.
pub fn dandelion(n: usize) -> Forest {
    if n <= 2 {
        return path_tree(n);
    }
    let stem = n / 2;
    let mut edges: Vec<(usize, usize)> = (0..stem - 1).map(|i| (i, i + 1)).collect();
    for v in stem..n {
        edges.push((stem - 1, v));
    }
    Forest { n, edges }
}

/// A uniformly random recursive tree: vertex `i` attaches to a uniformly
/// random earlier vertex.  Labels are then randomly permuted so vertex ids
/// carry no structural information.
pub fn random_tree(n: usize, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    for i in 1..n {
        let j = rng.random_range(0..i);
        edges.push((j, i));
    }
    permute_labels(Forest { n, edges }, &mut rng)
}

/// A random tree in which every vertex has degree at most 3.
pub fn random_tree_degree3(n: usize, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    let mut degree = vec![0usize; n];
    // Vertices that can still accept an extra edge.
    let mut available: Vec<usize> = vec![0];
    for i in 1..n {
        let slot = rng.random_range(0..available.len());
        let j = available[slot];
        edges.push((j, i));
        degree[j] += 1;
        degree[i] += 1;
        if degree[j] >= 3 {
            available.swap_remove(slot);
        }
        if degree[i] < 3 {
            available.push(i);
        }
    }
    permute_labels(Forest { n, edges }, &mut rng)
}

/// A preferential attachment tree: vertex `i` attaches to an earlier vertex
/// with probability proportional to its current degree.
pub fn preferential_attachment_tree(n: usize, seed: u64) -> Forest {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut edges = Vec::with_capacity(n.saturating_sub(1));
    // endpoint multiset: each edge contributes both endpoints, so sampling a
    // uniform entry is degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::with_capacity(2 * n);
    for i in 1..n {
        let j = if endpoints.is_empty() {
            0
        } else if rng.random_bool(0.1) {
            // small uniform component keeps early vertices from starving
            rng.random_range(0..i)
        } else {
            endpoints[rng.random_range(0..endpoints.len())]
        };
        edges.push((j, i));
        endpoints.push(j);
        endpoints.push(i);
    }
    permute_labels(Forest { n, edges }, &mut rng)
}

/// Randomly relabels the vertices of a forest.
pub(crate) fn permute_labels(forest: Forest, rng: &mut StdRng) -> Forest {
    let mut perm: Vec<usize> = (0..forest.n).collect();
    perm.shuffle(rng);
    let edges = forest
        .edges
        .into_iter()
        .map(|(u, v)| (perm[u], perm[v]))
        .collect();
    Forest { n: forest.n, edges }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_families_are_forests() {
        for family in SyntheticTree::ALL {
            let f = family.generate(500, 7);
            assert!(f.is_forest(), "{:?} generated a non-forest", family);
            assert_eq!(f.edges.len(), 499, "{:?} edge count", family);
        }
    }

    #[test]
    fn degree3_respects_bound() {
        let f = random_tree_degree3(2000, 3);
        assert!(f.max_degree() <= 3);
        assert!(f.is_forest());
    }

    #[test]
    fn star_and_path_diameters() {
        assert_eq!(path_tree(100).diameter(), 99);
        assert_eq!(star_tree(100).diameter(), 2);
        assert!(binary_tree(127).diameter() <= 14);
        assert!(kary_tree(1000, 64).diameter() <= 6);
    }

    #[test]
    fn dandelion_shape() {
        let f = dandelion(100);
        assert!(f.is_forest());
        assert_eq!(f.max_degree(), 51);
        assert!(f.diameter() >= 49);
    }

    #[test]
    fn preferential_attachment_has_hubs() {
        let f = preferential_attachment_tree(5000, 11);
        assert!(f.is_forest());
        assert!(
            f.max_degree() >= 10,
            "expected a hub, got {}",
            f.max_degree()
        );
    }

    #[test]
    fn generators_are_deterministic() {
        let a = random_tree(1000, 42);
        let b = random_tree(1000, 42);
        assert_eq!(a.edges, b.edges);
        let c = random_tree(1000, 43);
        assert_ne!(a.edges, c.edges);
    }

    #[test]
    fn tiny_inputs() {
        for family in SyntheticTree::ALL {
            for n in [0usize, 1, 2, 3] {
                let f = family.generate(n, 1);
                assert!(f.is_forest());
                assert_eq!(f.edges.len(), n.saturating_sub(1));
            }
        }
    }
}
