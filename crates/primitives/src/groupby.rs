//! Grouping and deduplication primitives.
//!
//! The paper uses a parallel *semisort* \[28\] to group directed edge updates by
//! their endpoint before applying them to adjacency lists (Algorithm 3 line 1,
//! Algorithm 4 line 1).  A semisort only guarantees that equal keys end up
//! adjacent; a stable parallel sort gives the same guarantee with
//! deterministic output, which is what we use here.

use rayon::prelude::*;

use crate::worth_parallel;

/// Groups `(key, value)` records so that all records with the same key are
/// adjacent, and returns the grouped vector together with the start offsets of
/// each group (the last offset equals the length of the vector).
///
/// Keys are grouped in ascending order.  The work is `O(k log k)` and the
/// depth poly-logarithmic, which is within the budget the paper assigns to
/// semisort for every place it is used (the grouped batches are always of size
/// `O(k)` where `k` is the batch size).
pub fn group_by_key<K, V>(mut records: Vec<(K, V)>) -> (Vec<(K, V)>, Vec<usize>)
where
    K: Ord + Send + Sync + Copy,
    V: Send + Sync,
{
    if worth_parallel(records.len()) {
        records.par_sort_by_key(|(k, _)| *k);
    } else {
        records.sort_by_key(|(k, _)| *k);
    }
    let offsets = boundaries(&records);
    (records, offsets)
}

/// Sequential variant of [`group_by_key`], used on tiny batches and inside
/// already-parallel regions.
pub fn group_by_key_seq<K, V>(mut records: Vec<(K, V)>) -> (Vec<(K, V)>, Vec<usize>)
where
    K: Ord + Copy,
{
    records.sort_by_key(|(k, _)| *k);
    let offsets = boundaries(&records);
    (records, offsets)
}

fn boundaries<K: Ord + Copy, V>(records: &[(K, V)]) -> Vec<usize> {
    let mut offsets = Vec::new();
    let mut i = 0;
    while i < records.len() {
        offsets.push(i);
        let key = records[i].0;
        while i < records.len() && records[i].0 == key {
            i += 1;
        }
    }
    offsets.push(records.len());
    offsets
}

/// Removes duplicates from an unsorted vector of keys (the paper's
/// `MapToParents` / `MapToChildren` steps are always followed by a parallel
/// remove-duplicates pass).
pub fn remove_duplicates<K: Ord + Send + Sync + Copy>(mut keys: Vec<K>) -> Vec<K> {
    if worth_parallel(keys.len()) {
        keys.par_sort_unstable();
    } else {
        keys.sort_unstable();
    }
    keys.dedup();
    keys
}

/// Removes duplicates from a vector that is already sorted.
pub fn dedup_sorted<K: PartialEq>(mut keys: Vec<K>) -> Vec<K> {
    keys.dedup();
    keys
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn groups_small_batch() {
        let records = vec![(3u32, 'a'), (1, 'b'), (3, 'c'), (2, 'd'), (1, 'e')];
        let (grouped, offsets) = group_by_key(records);
        assert_eq!(offsets, vec![0, 2, 3, 5]);
        assert_eq!(grouped[0].0, 1);
        assert_eq!(grouped[2].0, 2);
        assert_eq!(grouped[3].0, 3);
    }

    #[test]
    fn groups_empty_batch() {
        let (grouped, offsets) = group_by_key::<u32, ()>(Vec::new());
        assert!(grouped.is_empty());
        assert_eq!(offsets, vec![0]);
    }

    #[test]
    fn groups_single_key() {
        let records: Vec<(u8, usize)> = (0..100).map(|i| (7u8, i)).collect();
        let (grouped, offsets) = group_by_key(records);
        assert_eq!(grouped.len(), 100);
        assert_eq!(offsets, vec![0, 100]);
    }

    #[test]
    fn groups_large_batch_matches_sequential() {
        let records: Vec<(u32, u32)> = (0..10_000u32).map(|i| (i % 97, i)).collect();
        let (par, par_off) = group_by_key(records.clone());
        let (seq, seq_off) = group_by_key_seq(records);
        assert_eq!(par_off, seq_off);
        let par_keys: Vec<u32> = par.iter().map(|(k, _)| *k).collect();
        let seq_keys: Vec<u32> = seq.iter().map(|(k, _)| *k).collect();
        assert_eq!(par_keys, seq_keys);
    }

    #[test]
    fn removes_duplicates() {
        let keys = vec![5u64, 1, 5, 2, 2, 9, 1];
        assert_eq!(remove_duplicates(keys), vec![1, 2, 5, 9]);
    }

    #[test]
    fn removes_duplicates_large() {
        let keys: Vec<u64> = (0..50_000).map(|i| i % 123).collect();
        let out = remove_duplicates(keys);
        assert_eq!(out.len(), 123);
        assert_eq!(out[0], 0);
        assert_eq!(out[122], 122);
    }

    #[test]
    fn dedup_sorted_works() {
        assert_eq!(dedup_sorted(vec![1, 1, 2, 3, 3, 3]), vec![1, 2, 3]);
    }
}
