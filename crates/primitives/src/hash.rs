//! A fast deterministic hasher for the engines' integer-keyed maps.
//!
//! The standard library's default hasher is SipHash behind a per-process
//! random seed — HashDoS-resistant, but several times slower than needed
//! for maps keyed by vertex-id pairs the workload controls anyway, and the
//! random seed makes iteration order differ between runs.  This is the
//! classic multiply-rotate scheme (the rustc "Fx" hash): one rotate, one
//! xor and one multiply per word, fully deterministic, so map iteration
//! order is a pure function of the insertion history.  Nothing in the
//! engines *relies* on that order (the determinism contract is enforced by
//! sorted structures, DESIGN.md §12) — but deterministic beats randomized
//! when reproducing a trace under a debugger.
//!
//! Not DoS-resistant; use only for keys the process itself generates.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Multiply-rotate hasher over native words.  See the module docs.
#[derive(Clone, Copy, Debug, Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`]; zero-sized, `Default`-constructible.
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` with the fast deterministic hasher.  Construct with
/// `FxHashMap::default()` or [`fx_map_with_capacity`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// `HashSet` with the fast deterministic hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

/// `FxHashMap::with_capacity` (custom-hasher maps lack the inherent fn).
#[inline]
pub fn fx_map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// `FxHashSet::with_capacity` (custom-hasher sets lack the inherent fn).
#[inline]
pub fn fx_set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::BuildHasher;

    #[test]
    fn deterministic_across_instances() {
        let a = FxBuildHasher::default().hash_one((17usize, 42usize));
        let b = FxBuildHasher::default().hash_one((17usize, 42usize));
        assert_eq!(a, b);
        assert_ne!(a, FxBuildHasher::default().hash_one((42usize, 17usize)));
    }

    #[test]
    fn map_round_trips_pair_keys() {
        let mut m: FxHashMap<(usize, usize), u32> = fx_map_with_capacity(64);
        for u in 0..40usize {
            for v in u + 1..40 {
                m.insert((u, v), (u * 41 + v) as u32);
            }
        }
        for u in 0..40usize {
            for v in u + 1..40 {
                assert_eq!(m.get(&(u, v)), Some(&((u * 41 + v) as u32)));
            }
        }
        assert_eq!(m.len(), 40 * 39 / 2);
    }

    #[test]
    fn uneven_byte_tails_hash_differently() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(b"abcdefghi"), h(b"abcdefghj"));
        assert_ne!(h(b"abcdefgh"), h(b"abcdefghi"));
    }
}
