//! Parallel list ranking.
//!
//! The batch reclustering step of the paper (Section 5.1, "Parallel
//! Reclustering") computes a maximal matching over collections of chains by
//! list-ranking the chains and matching even positions with their successors.
//! This module provides a simple work-efficient pointer-jumping list ranker.
//! For the chain lengths that occur in batch updates (`O(k)` total) the
//! pointer-jumping variant is more than adequate.

use rayon::prelude::*;

use crate::worth_parallel;

/// A node of a linked list given by the index of its successor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ListNode {
    /// Index of the successor node, or `usize::MAX` for the tail.
    pub next: usize,
}

impl ListNode {
    /// Sentinel marking "no successor".
    pub const NIL: usize = usize::MAX;
}

/// Computes, for every node of a collection of disjoint linked lists, its rank
/// (distance in hops) from the head of its list.
///
/// `next[i]` is the successor of node `i` or [`ListNode::NIL`].  Nodes that
/// are not part of any list should simply not be referenced; they receive the
/// rank they'd have as singleton heads (zero).
///
/// Uses pointer jumping: `O(n log n)` work, `O(log n)` depth.  The paper uses
/// an `O(n)`-work ranker; the extra log factor is irrelevant at the chain
/// sizes produced by batch updates and keeps the code simple and obviously
/// correct.
pub fn list_rank(next: &[usize]) -> Vec<usize> {
    let n = next.len();
    if n == 0 {
        return Vec::new();
    }
    // rank[i] accumulates the number of hops jumped over so far.
    let mut rank = vec![0usize; n];
    let mut jump: Vec<usize> = next.to_vec();

    // `prev_of[i]` tells us whether i is a head (nobody points at it).
    let mut is_head = vec![true; n];
    for &nx in next {
        if nx != ListNode::NIL {
            is_head[nx] = false;
        }
    }
    // Ranks are measured from the head, so we instead compute distance to the
    // head by reversing the list direction: build predecessor pointers and
    // jump over them.
    let mut prev = vec![ListNode::NIL; n];
    for (i, &nx) in next.iter().enumerate() {
        if nx != ListNode::NIL {
            prev[nx] = i;
        }
    }
    jump.copy_from_slice(&prev);
    for r in rank.iter_mut() {
        *r = 0;
    }
    let mut active = true;
    while active {
        let results: Vec<(usize, usize)> = if worth_parallel(n) {
            (0..n)
                .into_par_iter()
                .map(|i| step(i, &jump, &rank))
                .collect()
        } else {
            (0..n).map(|i| step(i, &jump, &rank)).collect()
        };
        active = false;
        let mut new_jump = vec![ListNode::NIL; n];
        for (i, (nj, nr)) in results.into_iter().enumerate() {
            if nj != jump[i] || nr != rank[i] {
                active = true;
            }
            new_jump[i] = nj;
            rank[i] = nr;
        }
        jump = new_jump;
    }
    let _ = is_head;
    rank
}

#[inline]
fn step(i: usize, jump: &[usize], rank: &[usize]) -> (usize, usize) {
    let j = jump[i];
    if j == ListNode::NIL {
        (ListNode::NIL, rank[i])
    } else {
        (jump[j], rank[i] + rank[j] + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_single_chain() {
        // 0 -> 1 -> 2 -> 3
        let next = vec![1, 2, 3, ListNode::NIL];
        assert_eq!(list_rank(&next), vec![0, 1, 2, 3]);
    }

    #[test]
    fn ranks_two_chains() {
        // chain A: 0 -> 2 -> 4 ; chain B: 1 -> 3
        let next = vec![2, 3, 4, ListNode::NIL, ListNode::NIL];
        assert_eq!(list_rank(&next), vec![0, 0, 1, 1, 2]);
    }

    #[test]
    fn ranks_singletons() {
        let next = vec![ListNode::NIL; 5];
        assert_eq!(list_rank(&next), vec![0; 5]);
    }

    #[test]
    fn ranks_long_chain() {
        let n = 10_000;
        let next: Vec<usize> = (0..n)
            .map(|i| if i + 1 < n { i + 1 } else { ListNode::NIL })
            .collect();
        let ranks = list_rank(&next);
        for (i, r) in ranks.iter().enumerate() {
            assert_eq!(*r, i);
        }
    }

    #[test]
    fn empty_input() {
        assert!(list_rank(&[]).is_empty());
    }
}
