//! A slab that supports disjoint parallel mutation.
//!
//! The batch-parallel update algorithms (Algorithms 3 and 4) repeatedly apply
//! independent modifications to *distinct* clusters: every deleted cluster is
//! removed from the adjacency lists of its (distinct) neighbours, every new
//! parent has its adjacency list populated, and so on.  After the planning
//! phase groups the modifications by target, the targets are pairwise
//! distinct, and mutating them concurrently is safe.  Rust's borrow checker
//! cannot see that the indices are distinct, so [`SharedSlab`] provides a
//! narrowly-scoped escape hatch whose safety contract is exactly
//! "the caller passes distinct indices".

use std::cell::UnsafeCell;

/// A fixed-size collection of `T` values that can hand out mutable references
/// to *distinct* slots from multiple threads at once.
pub struct SharedSlab<T> {
    slots: Vec<UnsafeCell<T>>,
}

// SAFETY: access is only allowed through `get_mut_distinct`, whose contract
// requires distinct indices per concurrent caller, and through `&mut self`
// methods, which have exclusive access.
unsafe impl<T: Send> Sync for SharedSlab<T> {}
unsafe impl<T: Send> Send for SharedSlab<T> {}

impl<T> SharedSlab<T> {
    /// Wraps a vector of values.
    pub fn new(values: Vec<T>) -> Self {
        Self {
            slots: values.into_iter().map(UnsafeCell::new).collect(),
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the slab is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Returns a shared reference to slot `idx`.
    ///
    /// # Safety
    /// The caller must guarantee no concurrent mutable access to `idx`.
    pub unsafe fn get(&self, idx: usize) -> &T {
        &*self.slots[idx].get()
    }

    /// Returns a mutable reference to slot `idx` without taking `&mut self`.
    ///
    /// # Safety
    /// The caller must guarantee that no two concurrent calls use the same
    /// index and that no concurrent shared access observes `idx`.
    #[allow(clippy::mut_from_ref)]
    pub unsafe fn get_mut_distinct(&self, idx: usize) -> &mut T {
        &mut *self.slots[idx].get()
    }

    /// Exclusive access to a slot (safe; requires `&mut self`).
    pub fn get_mut(&mut self, idx: usize) -> &mut T {
        self.slots[idx].get_mut()
    }

    /// Unwraps the slab back into a vector.
    pub fn into_inner(self) -> Vec<T> {
        self.slots.into_iter().map(UnsafeCell::into_inner).collect()
    }
}

impl<T: Clone> SharedSlab<T> {
    /// Clones the current contents into a plain vector.
    pub fn snapshot(&mut self) -> Vec<T> {
        self.slots.iter_mut().map(|c| c.get_mut().clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn parallel_disjoint_writes() {
        let slab = SharedSlab::new(vec![0u64; 10_000]);
        (0..slab.len()).into_par_iter().for_each(|i| {
            // SAFETY: every index is visited exactly once.
            unsafe {
                *slab.get_mut_distinct(i) = i as u64 * 3;
            }
        });
        let values = slab.into_inner();
        for (i, v) in values.iter().enumerate() {
            assert_eq!(*v, i as u64 * 3);
        }
    }

    #[test]
    fn sequential_accessors() {
        let mut slab = SharedSlab::new(vec![1, 2, 3]);
        *slab.get_mut(1) = 42;
        assert_eq!(slab.snapshot(), vec![1, 42, 3]);
        assert_eq!(slab.len(), 3);
        assert!(!slab.is_empty());
    }
}
