//! Union-find (disjoint set union) with path compression and union by size.
//!
//! Used by the workload generators (random incremental spanning forests) and
//! by several tests as an independent connectivity oracle.

/// A classic disjoint-set-union structure over `0..n`.
#[derive(Clone, Debug)]
pub struct Dsu {
    parent: Vec<usize>,
    size: Vec<usize>,
    components: usize,
}

impl Dsu {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
            size: vec![1; n],
            components: n,
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Number of disjoint sets.
    pub fn components(&self) -> usize {
        self.components
    }

    /// Representative of the set containing `x`.
    pub fn find(&mut self, x: usize) -> usize {
        let mut root = x;
        while self.parent[root] != root {
            root = self.parent[root];
        }
        let mut cur = x;
        while self.parent[cur] != root {
            let next = self.parent[cur];
            self.parent[cur] = root;
            cur = next;
        }
        root
    }

    /// Merges the sets containing `a` and `b`; returns `true` if they were
    /// previously different sets.
    pub fn union(&mut self, a: usize, b: usize) -> bool {
        let (mut ra, mut rb) = (self.find(a), self.find(b));
        if ra == rb {
            return false;
        }
        if self.size[ra] < self.size[rb] {
            std::mem::swap(&mut ra, &mut rb);
        }
        self.parent[rb] = ra;
        self.size[ra] += self.size[rb];
        self.components -= 1;
        true
    }

    /// Whether `a` and `b` are in the same set.
    pub fn same(&mut self, a: usize, b: usize) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn set_size(&mut self, x: usize) -> usize {
        let r = self.find(x);
        self.size[r]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_find_basics() {
        let mut dsu = Dsu::new(6);
        assert_eq!(dsu.components(), 6);
        assert!(dsu.union(0, 1));
        assert!(dsu.union(1, 2));
        assert!(!dsu.union(0, 2));
        assert!(dsu.same(0, 2));
        assert!(!dsu.same(0, 3));
        assert_eq!(dsu.set_size(2), 3);
        assert_eq!(dsu.components(), 4);
        assert_eq!(dsu.len(), 6);
    }
}
