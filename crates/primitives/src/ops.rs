//! The typed operations vocabulary of the batch-first public API.
//!
//! The connectivity engine (and anything else that maintains a dynamic graph)
//! speaks in [`GraphOp`]s: growable vertex sets, edge insertions/deletions and
//! weight updates, submitted one at a time or as whole batches.  Every
//! operation resolves to an [`OpOutcome`] describing *what actually happened*
//! — an insert may land as a tree or non-tree edge, a delete may split a
//! component — and every failure is a typed [`GraphError`], never a panic and
//! never an ambiguous `false`.
//!
//! Batch submission returns a [`BatchReport`]: the per-op outcomes in order
//! plus aggregate counters (applied / skipped / rejected, vertex and
//! component counts before and after).  "Skipped" is reserved for the two
//! benign idempotent cases — inserting an edge that is already live,
//! deleting one that is not — so that replaying a batch is safe; everything
//! else (self loops, out-of-range vertices, unweighted backends) is
//! "rejected".

use std::fmt;

use crate::telemetry::BatchTelemetry;

/// Why a graph operation or query could not be applied.
///
/// The two *benign* variants — [`DuplicateEdge`](GraphError::DuplicateEdge)
/// and [`MissingEdge`](GraphError::MissingEdge) — mark idempotent no-ops and
/// are counted as "skipped" in a [`BatchReport`]; every other variant is a
/// genuine rejection.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// The edge would join a vertex to itself.
    SelfLoop {
        /// The offending vertex.
        v: usize,
    },
    /// A vertex id is not (yet) part of the graph.
    VertexOutOfRange {
        /// The offending vertex.
        v: usize,
        /// Current number of vertices (valid ids are `0..len`).
        len: usize,
    },
    /// The inserted edge is already live.
    DuplicateEdge {
        /// Smaller endpoint (canonical orientation).
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// The deleted edge is not live.
    MissingEdge {
        /// Smaller endpoint (canonical orientation).
        u: usize,
        /// Larger endpoint.
        v: usize,
    },
    /// The backend does not maintain vertex weights.
    Unweighted,
    /// The backend cannot answer this query family (e.g. spanning-tree path
    /// aggregates on the ternarized topology backend, whose answers would be
    /// inexact, or component aggregates on link-cut trees).
    UnsupportedQuery,
    /// A path operation's endpoints lie in different components.  Benign:
    /// like a missing-edge delete, there is simply no path to update, so
    /// replaying the op is an idempotent no-op.
    Disconnected {
        /// One endpoint.
        u: usize,
        /// The other endpoint.
        v: usize,
    },
}

impl GraphError {
    /// Whether the error marks a benign idempotent no-op (duplicate insert or
    /// missing delete) rather than an invalid request.  Benign errors are
    /// counted as "skipped" in a [`BatchReport`], the rest as "rejected".
    pub fn is_benign(self) -> bool {
        matches!(
            self,
            GraphError::DuplicateEdge { .. }
                | GraphError::MissingEdge { .. }
                | GraphError::Disconnected { .. }
        )
    }
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            GraphError::SelfLoop { v } => write!(f, "self loop at vertex {v}"),
            GraphError::VertexOutOfRange { v, len } => {
                write!(f, "vertex {v} out of range (graph has {len} vertices)")
            }
            GraphError::DuplicateEdge { u, v } => write!(f, "edge ({u},{v}) is already live"),
            GraphError::MissingEdge { u, v } => write!(f, "edge ({u},{v}) is not live"),
            GraphError::Unweighted => write!(f, "backend does not maintain vertex weights"),
            GraphError::UnsupportedQuery => write!(f, "backend cannot answer this query"),
            GraphError::Disconnected { u, v } => {
                write!(f, "vertices {u} and {v} are not connected")
            }
        }
    }
}

impl std::error::Error for GraphError {}

/// Whether a live edge is part of the maintained spanning forest or a
/// non-tree (cycle) edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// The edge joined two components and entered the spanning forest.
    Tree,
    /// The edge closed a cycle and is kept as a non-tree edge.
    NonTree,
}

/// What a successful edge deletion did.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct DeleteOutcome {
    /// Whether the deleted edge was in the spanning forest.
    pub kind: EdgeKind,
    /// Whether the deletion split a component (only possible for tree edges
    /// with no replacement).
    pub split: bool,
}

/// One operation of a graph-mutation batch, generic over the vertex-weight
/// type `W` (defaults to the workspace's `i64` convention).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum GraphOp<W = i64> {
    /// Append `count` fresh isolated vertices to the vertex set.
    AddVertices(usize),
    /// Insert edge `(u, v)`.
    InsertEdge(usize, usize),
    /// Delete edge `(u, v)`.
    DeleteEdge(usize, usize),
    /// Set the weight of vertex `v` to `w`.
    SetWeight(usize, W),
    /// Apply the backend monoid's bulk action, interpreted from the weight
    /// delta `w`, to every vertex on the tree path from `u` to `v`
    /// (inclusive).  Benignly skipped when the endpoints are disconnected.
    PathApply(usize, usize, W),
    /// Apply the bulk action interpreted from `w` to every vertex of `v`'s
    /// component.
    ComponentApply(usize, W),
}

/// What actually happened to one [`GraphOp`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OpOutcome {
    /// `count` vertices were appended; the new ids are `first..first + count`.
    VerticesAdded {
        /// First new vertex id.
        first: usize,
        /// Number of vertices appended.
        count: usize,
    },
    /// The edge was inserted, as a tree or non-tree edge.
    EdgeInserted {
        /// Whether the edge entered the spanning forest.
        kind: EdgeKind,
    },
    /// The edge was deleted.
    EdgeDeleted {
        /// Whether the edge was in the spanning forest.
        kind: EdgeKind,
        /// Whether the deletion split a component.
        split: bool,
    },
    /// The vertex weight was recorded.
    WeightSet,
    /// A bulk action was applied along a tree path.
    PathApplied {
        /// Number of vertices the action touched (both endpoints included;
        /// `1` when the endpoints coincide).
        count: u64,
    },
    /// A bulk action was applied to a whole component.
    ComponentApplied {
        /// Number of vertices the action touched (≥ 1: the anchor itself).
        count: u64,
    },
    /// Benign idempotent no-op (duplicate insert / missing delete /
    /// disconnected path op).
    Skipped(GraphError),
    /// Invalid request (self loop, out-of-range vertex, unweighted backend).
    Rejected(GraphError),
}

impl OpOutcome {
    /// Routes an error to [`Skipped`](OpOutcome::Skipped) or
    /// [`Rejected`](OpOutcome::Rejected) by its
    /// [benign-ness](GraphError::is_benign).
    pub fn from_error(e: GraphError) -> Self {
        if e.is_benign() {
            OpOutcome::Skipped(e)
        } else {
            OpOutcome::Rejected(e)
        }
    }

    /// Whether the operation was applied (mutated the graph).
    pub fn is_applied(&self) -> bool {
        !matches!(self, OpOutcome::Skipped(_) | OpOutcome::Rejected(_))
    }

    /// Whether the operation was a benign no-op.
    pub fn is_skipped(&self) -> bool {
        matches!(self, OpOutcome::Skipped(_))
    }

    /// Whether the operation was rejected as invalid.
    pub fn is_rejected(&self) -> bool {
        matches!(self, OpOutcome::Rejected(_))
    }

    /// The error carried by a skipped or rejected outcome.
    pub fn error(&self) -> Option<GraphError> {
        match *self {
            OpOutcome::Skipped(e) | OpOutcome::Rejected(e) => Some(e),
            _ => None,
        }
    }
}

/// The result of applying a batch of [`GraphOp`]s: per-op outcomes in batch
/// order plus aggregate counters.
///
/// ```
/// use dyntree_primitives::ops::{BatchReport, EdgeKind, GraphError, OpOutcome};
///
/// let mut report = BatchReport::new(4, 4);
/// report.record(OpOutcome::EdgeInserted { kind: EdgeKind::Tree });
/// report.record(OpOutcome::from_error(GraphError::DuplicateEdge { u: 0, v: 1 }));
/// report.record(OpOutcome::from_error(GraphError::SelfLoop { v: 2 }));
/// report.close(4, 3);
/// assert_eq!((report.applied, report.skipped, report.rejected), (1, 1, 1));
/// assert_eq!(report.components_before - report.components_after, 1);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BatchReport {
    /// One outcome per submitted op, in order.
    pub outcomes: Vec<OpOutcome>,
    /// Number of ops that mutated the graph.
    pub applied: usize,
    /// Number of benign no-ops (duplicate inserts, missing deletes).
    pub skipped: usize,
    /// Number of invalid ops (self loops, out-of-range vertices, ...).
    pub rejected: usize,
    /// Vertex count before the batch.
    pub vertices_before: usize,
    /// Vertex count after the batch.
    pub vertices_after: usize,
    /// Connected-component count before the batch.
    pub components_before: usize,
    /// Connected-component count after the batch.
    pub components_after: usize,
    /// Engine version (monotone batch counter) *after* this batch was
    /// applied.  Serves as the canonical epoch id for snapshot publication:
    /// a snapshot published from this batch carries exactly this number.
    pub version: u64,
    /// Per-batch telemetry delta, attached only when the engine's
    /// [`Telemetry`](crate::Telemetry) handle is enabled.  Contains wall
    /// timings, so reports with telemetry attached are not byte-comparable
    /// across runs (counters are; see the determinism contract).
    pub telemetry: Option<BatchTelemetry>,
}

impl BatchReport {
    /// An empty report opened on the pre-batch vertex and component counts.
    pub fn new(vertices_before: usize, components_before: usize) -> Self {
        BatchReport {
            vertices_before,
            vertices_after: vertices_before,
            components_before,
            components_after: components_before,
            ..Default::default()
        }
    }

    /// Appends one outcome, updating the aggregate counters.
    pub fn record(&mut self, outcome: OpOutcome) {
        if outcome.is_applied() {
            self.applied += 1;
        } else if outcome.is_skipped() {
            self.skipped += 1;
        } else {
            self.rejected += 1;
        }
        self.outcomes.push(outcome);
    }

    /// Seals the report with the post-batch vertex and component counts.
    pub fn close(&mut self, vertices_after: usize, components_after: usize) {
        self.vertices_after = vertices_after;
        self.components_after = components_after;
    }

    /// Number of ops in the batch.
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the batch was empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }
}

impl fmt::Display for BatchReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ops: {} applied, {} skipped, {} rejected | vertices {} -> {} | components {} -> {} | v{}",
            self.len(),
            self.applied,
            self.skipped,
            self.rejected,
            self.vertices_before,
            self.vertices_after,
            self.components_before,
            self.components_after,
            self.version,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benign_errors_are_skipped_the_rest_rejected() {
        assert!(GraphError::DuplicateEdge { u: 0, v: 1 }.is_benign());
        assert!(GraphError::MissingEdge { u: 0, v: 1 }.is_benign());
        assert!(!GraphError::SelfLoop { v: 3 }.is_benign());
        assert!(!GraphError::VertexOutOfRange { v: 9, len: 4 }.is_benign());
        assert!(!GraphError::Unweighted.is_benign());
        assert!(!GraphError::UnsupportedQuery.is_benign());
        assert!(GraphError::Disconnected { u: 0, v: 1 }.is_benign());
        assert!(OpOutcome::from_error(GraphError::MissingEdge { u: 0, v: 1 }).is_skipped());
        assert!(OpOutcome::from_error(GraphError::Unweighted).is_rejected());
        assert!(OpOutcome::from_error(GraphError::Disconnected { u: 0, v: 1 }).is_skipped());
        assert!(OpOutcome::PathApplied { count: 3 }.is_applied());
        assert!(OpOutcome::ComponentApplied { count: 1 }.is_applied());
    }

    #[test]
    fn report_counters_track_outcomes() {
        let mut r = BatchReport::new(10, 10);
        r.record(OpOutcome::VerticesAdded {
            first: 10,
            count: 2,
        });
        r.record(OpOutcome::EdgeInserted {
            kind: EdgeKind::Tree,
        });
        r.record(OpOutcome::EdgeDeleted {
            kind: EdgeKind::NonTree,
            split: false,
        });
        r.record(OpOutcome::WeightSet);
        r.record(OpOutcome::Skipped(GraphError::DuplicateEdge { u: 1, v: 2 }));
        r.record(OpOutcome::Rejected(GraphError::SelfLoop { v: 0 }));
        r.close(12, 11);
        r.version = 7;
        assert_eq!(r.len(), 6);
        assert_eq!((r.applied, r.skipped, r.rejected), (4, 1, 1));
        assert_eq!(r.vertices_after, 12);
        assert_eq!(r.components_after, 11);
        assert!(!r.is_empty());
        let line = r.to_string();
        assert!(line.contains("4 applied") && line.contains("1 rejected"));
        assert!(line.ends_with("| v7"));
    }

    #[test]
    fn errors_render_their_context() {
        assert_eq!(
            GraphError::VertexOutOfRange { v: 7, len: 3 }.to_string(),
            "vertex 7 out of range (graph has 3 vertices)"
        );
        assert_eq!(
            GraphError::DuplicateEdge { u: 1, v: 2 }.to_string(),
            "edge (1,2) is already live"
        );
        assert_eq!(OpOutcome::WeightSet.error(), None);
        assert_eq!(
            OpOutcome::Rejected(GraphError::Unweighted).error(),
            Some(GraphError::Unweighted)
        );
        assert_eq!(
            GraphError::Disconnected { u: 4, v: 9 }.to_string(),
            "vertices 4 and 9 are not connected"
        );
    }
}
