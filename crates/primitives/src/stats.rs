//! Small measurement helpers shared by the benchmark harness.

/// Exact number of heap bytes owned by a `Vec<T>` (capacity, not length).
pub fn vec_bytes<T>(v: &Vec<T>) -> usize {
    v.capacity() * std::mem::size_of::<T>()
}

/// Streaming mean / min / max accumulator used by the benchmark binaries to
/// summarise repeated trials without storing them.
#[derive(Clone, Debug, Default)]
pub struct OnlineStats {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Arithmetic mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Minimum observation (`NaN` when empty).
    pub fn min(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    /// Maximum observation (`NaN` when empty).
    pub fn max(&self) -> f64 {
        if self.count == 0 {
            f64::NAN
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_accumulate() {
        let mut s = OnlineStats::new();
        for x in [1.0, 2.0, 3.0, 4.0] {
            s.push(x);
        }
        assert_eq!(s.count(), 4);
        assert!((s.mean() - 2.5).abs() < 1e-12);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 4.0);
    }

    #[test]
    fn empty_stats() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
    }

    #[test]
    fn vec_bytes_counts_capacity() {
        let mut v: Vec<u64> = Vec::with_capacity(16);
        v.push(1);
        assert_eq!(vec_bytes(&v), 16 * 8);
    }
}
