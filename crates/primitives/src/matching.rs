//! Maximal matching over disjoint chains.
//!
//! During reclustering, the clusters that are not handled by the "high degree
//! absorbs its degree-1 neighbours" rule form disjoint paths (chains).  The
//! paper computes a maximal matching over these chains with list ranking and
//! pairs even ranks with their successors; since distinct chains are
//! independent, we match each chain greedily and process the chains in
//! parallel, which has identical output quality (a maximal matching) and
//! `O(total length)` work.

use rayon::prelude::*;

use crate::worth_parallel;

/// A matched pair (or an unmatched singleton) produced by chain matching.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChainMatch<T> {
    /// Two adjacent chain elements are matched with each other.
    Pair(T, T),
    /// The element could not be matched (odd element of its chain).
    Single(T),
}

/// Greedily matches consecutive elements of a single chain.
///
/// Returns one [`ChainMatch`] per element pair; the final element of an
/// odd-length chain is reported as [`ChainMatch::Single`].
pub fn match_chain_greedy<T: Copy>(chain: &[T]) -> Vec<ChainMatch<T>> {
    let mut out = Vec::with_capacity(chain.len() / 2 + 1);
    let mut i = 0;
    while i + 1 < chain.len() {
        out.push(ChainMatch::Pair(chain[i], chain[i + 1]));
        i += 2;
    }
    if i < chain.len() {
        out.push(ChainMatch::Single(chain[i]));
    }
    out
}

/// Matches every chain of a collection of disjoint chains, in parallel across
/// chains.  The matching within each chain is the greedy maximal matching.
pub fn match_chains_parallel<T: Copy + Send + Sync>(chains: &[Vec<T>]) -> Vec<ChainMatch<T>> {
    if worth_parallel(chains.len()) {
        chains
            .par_iter()
            .flat_map_iter(|chain| match_chain_greedy(chain))
            .collect()
    } else {
        chains
            .iter()
            .flat_map(|chain| match_chain_greedy(chain))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_even_chain() {
        let m = match_chain_greedy(&[1, 2, 3, 4]);
        assert_eq!(m, vec![ChainMatch::Pair(1, 2), ChainMatch::Pair(3, 4)]);
    }

    #[test]
    fn matches_odd_chain() {
        let m = match_chain_greedy(&[1, 2, 3]);
        assert_eq!(m, vec![ChainMatch::Pair(1, 2), ChainMatch::Single(3)]);
    }

    #[test]
    fn matches_singleton_chain() {
        let m = match_chain_greedy(&[9]);
        assert_eq!(m, vec![ChainMatch::Single(9)]);
    }

    #[test]
    fn matches_empty_chain() {
        let m: Vec<ChainMatch<u32>> = match_chain_greedy(&[]);
        assert!(m.is_empty());
    }

    #[test]
    fn matching_is_maximal() {
        // In a maximal matching over a path, no two adjacent elements are both
        // unmatched.
        for len in 0..20usize {
            let chain: Vec<usize> = (0..len).collect();
            let matches = match_chain_greedy(&chain);
            let mut matched = vec![false; len];
            for m in &matches {
                if let ChainMatch::Pair(a, b) = m {
                    matched[*a] = true;
                    matched[*b] = true;
                }
            }
            for w in matched.windows(2) {
                assert!(w[0] || w[1], "two adjacent unmatched elements");
            }
        }
    }

    #[test]
    fn parallel_matches_all_chains() {
        let chains: Vec<Vec<u32>> = (0..100).map(|i| (0..i).collect()).collect();
        let matches = match_chains_parallel(&chains);
        let covered: usize = matches
            .iter()
            .map(|m| match m {
                ChainMatch::Pair(_, _) => 2,
                ChainMatch::Single(_) => 1,
            })
            .sum();
        let total: usize = chains.iter().map(|c| c.len()).sum();
        assert_eq!(covered, total);
    }
}
