//! Parallel-execution configuration: grain sizes and worker fan-out.
//!
//! Every parallel path in the workspace sits behind a *grain check*: below a
//! threshold batch size, scheduling overhead exceeds the work, so the code
//! takes the sequential path it would use anyway.  With the rayon shim now
//! backed by a real pool ([`rayon::current_num_threads`] reports the true
//! size), these thresholds are load-bearing, so they live here as one
//! documented, overridable [`ParallelConfig`] instead of scattered
//! constants.  The engine layers thread a config through their batch entry
//! points; the free function [`worth_parallel`] keeps the historical
//! call-site API and uses the defaults.
//!
//! Changing the grain/fan-out knobs never changes *results* — only which of
//! two byte-identical code paths (sequential or chunked-parallel) computes
//! them.  The one exception is the opt-in
//! [`rebuild_threshold`](ParallelConfig::rebuild_threshold): a non-zero
//! threshold trades byte-identical replacement choices for a *canonical
//! outcome* contract (same components, same live edges — spanning-tree
//! membership of individual edges may differ), in exchange for wholesale
//! component rebuilds when a batch deletes most of a component's tree edges.

/// Default minimum batch length before any batch layer goes parallel.
/// Measured against the cost of waking pool workers for a chunk: below ~2k
/// items even a 2-chunk fan-out loses to the plain loop.
pub const PAR_GRAIN: usize = 2048;

/// Default minimum number of items per worker chunk in the batch pre-pass.
/// Smaller chunks would multiply per-chunk fixed costs (a sparse DSU
/// allocation, one queue round-trip) past the work they carry.
pub const CHUNK_GRAIN: usize = 512;

/// Default minimum delete-run length before the batch-deletion layers go
/// parallel.  Matches [`PAR_GRAIN`], but deliberately a separate knob: the
/// delete pre-pass saves no live probes (classification only reads state the
/// engine already holds) — its payoff is *offloading* classification to pool
/// workers, so the pool-dispatch cost needs long runs to amortize.  Measured
/// on the `SCALE-64k` bench trace, fanning out its 1024-op delete bursts
/// cost 20 %+ apply throughput at wide fan-out on an oversubscribed host,
/// while the 3072-op bursts of `SCALE-DEL-64k` run at parity or better.
pub const DELETE_GRAIN: usize = 2048;

/// Tunables for the parallel batch paths.
///
/// `threads == 0` (the default) means "use the whole rayon pool"; any other
/// value caps the fan-out of the configured component without touching the
/// global pool — the `parallel_scaling` benchmark uses this to measure the
/// same pool at several effective widths in one process.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker fan-out cap; 0 = the rayon pool size.
    pub threads: usize,
    /// Minimum batch length before the batch layers go parallel.
    pub batch_grain: usize,
    /// Minimum number of items per pre-pass chunk.
    pub chunk_grain: usize,
    /// Minimum consecutive-delete run length before the batch-deletion
    /// classification pre-pass goes parallel.  Independent of
    /// [`batch_grain`](Self::batch_grain): the delete pre-pass only offloads
    /// work the sequential walk would do anyway (no live probes saved), so
    /// its dispatch cost amortizes later than the insert pre-pass's.
    pub delete_grain: usize,
    /// Rebuild escape hatch, in **percent** of a component's vertex count:
    /// when one delete run's certified tree deletions inside a component
    /// reach this fraction of its size, the engine skips the per-edge HDT
    /// replacement searches and rebuilds that component's spanning forest
    /// wholesale from the surviving edges.  `0` (the default) disables the
    /// hatch and keeps the byte-identity contract; any non-zero value opts
    /// into the *canonical outcome* contract (same component partition, same
    /// live edge set — which edges are tree vs non-tree may differ from the
    /// one-at-a-time walk).  Stored as an integer percentage so the config
    /// stays `Copy + Eq`.
    pub rebuild_threshold: usize,
}

impl Default for ParallelConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            batch_grain: PAR_GRAIN,
            chunk_grain: CHUNK_GRAIN,
            delete_grain: DELETE_GRAIN,
            rebuild_threshold: 0,
        }
    }
}

impl ParallelConfig {
    /// A config that forces every gated path sequential regardless of pool
    /// size (the 1-thread reference the determinism tests compare against).
    pub fn sequential() -> Self {
        Self {
            threads: 1,
            ..Self::default()
        }
    }

    /// Default grains with an explicit fan-out cap.
    pub fn with_threads(threads: usize) -> Self {
        Self {
            threads,
            ..Self::default()
        }
    }

    /// The fan-out this config asks for: its own `threads`, or the pool size
    /// when unset.  Deliberately **not** clamped to the pool: a cap above
    /// the pool size still splits batches into that many chunks (they just
    /// share the available workers), so tests can force the chunked code
    /// paths deterministically even on a single-threaded pool — where the
    /// chunks run inline, byte-identical by construction.
    pub fn effective_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }

    /// Whether a batch of `len` items is worth processing in parallel under
    /// this config.
    #[inline]
    pub fn worth(&self, len: usize) -> bool {
        len >= self.batch_grain && self.effective_and_wide()
    }

    /// Whether a consecutive-delete run of `len` ops is worth the parallel
    /// classification pre-pass under this config (gated on
    /// [`delete_grain`](Self::delete_grain) instead of the insert grain).
    #[inline]
    pub fn worth_delete(&self, len: usize) -> bool {
        len >= self.delete_grain && self.effective_and_wide()
    }

    /// Number of chunks to split a `len`-item batch into: at most one per
    /// effective thread, and never so many that a chunk drops below
    /// [`chunk_grain`](Self::chunk_grain) items.
    pub fn chunks_for(&self, len: usize) -> usize {
        let by_grain = len / self.chunk_grain.max(1);
        self.effective_threads().min(by_grain).max(1)
    }

    fn effective_and_wide(&self) -> bool {
        // `threads == 1` pins sequential even on a wide pool; a capped
        // config on a 1-thread pool is still sequential.
        self.effective_threads() > 1
    }

    /// Builder-style variant setting the
    /// [`rebuild_threshold`](Self::rebuild_threshold) percentage.
    pub fn with_rebuild_threshold(mut self, percent: usize) -> Self {
        self.rebuild_threshold = percent;
        self
    }

    /// Whether the rebuild escape hatch is enabled at all (any non-zero
    /// threshold opts into the canonical-outcome contract).
    #[inline]
    pub fn rebuild_enabled(&self) -> bool {
        self.rebuild_threshold > 0
    }

    /// Whether `tree_deletions` certified tree-edge deletions inside a
    /// component of `component_size` vertices trip the rebuild hatch:
    /// `tree_deletions / component_size ≥ rebuild_threshold %`.  Always
    /// `false` when the hatch is disabled or the component is empty.
    #[inline]
    pub fn rebuild_worth(&self, tree_deletions: usize, component_size: usize) -> bool {
        self.rebuild_threshold > 0
            && component_size > 0
            && tree_deletions.saturating_mul(100) >= component_size * self.rebuild_threshold
    }
}

/// Splits `0..len` into `chunks` contiguous ranges whose lengths differ by
/// at most one (never an empty or out-of-bounds range for `chunks ≤ len`).
/// The one canonical balanced split for every chunked batch path — a
/// hand-rolled ceil-division split once sent trailing chunks past the end
/// of the batch.
pub fn chunk_ranges(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    let chunks = chunks.max(1);
    let (base, rem) = (len / chunks, len % chunks);
    let mut ranges = Vec::with_capacity(chunks);
    let mut lo = 0;
    for c in 0..chunks {
        let hi = lo + base + usize::from(c < rem);
        ranges.push((lo, hi));
        lo = hi;
    }
    ranges
}

/// Returns `true` when a batch of `len` items is worth processing in
/// parallel under the default grain ([`PAR_GRAIN`]) on the global pool.
#[inline]
pub fn worth_parallel(len: usize) -> bool {
    ParallelConfig::default().worth(len)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_batches_stay_sequential_at_any_width() {
        // The dead-constant regression this module fixes: grains must gate
        // even when a wide fan-out is requested.
        for threads in [0, 1, 2, 8, 64] {
            let cfg = ParallelConfig::with_threads(threads);
            assert!(!cfg.worth(0));
            assert!(!cfg.worth(1));
            assert!(!cfg.worth(PAR_GRAIN - 1), "threads={threads}");
        }
    }

    #[test]
    fn sequential_config_never_parallelizes() {
        let cfg = ParallelConfig::sequential();
        assert!(!cfg.worth(usize::MAX));
        assert_eq!(cfg.effective_threads(), 1);
    }

    #[test]
    fn fan_out_is_bounded_by_pool_and_grain() {
        let cfg = ParallelConfig {
            threads: 4,
            batch_grain: 8,
            chunk_grain: 16,
            ..ParallelConfig::default()
        };
        assert_eq!(cfg.chunks_for(0), 1);
        assert_eq!(cfg.chunks_for(31), 1);
        assert!(cfg.chunks_for(32) <= 2);
        assert!(cfg.chunks_for(10_000) <= 4, "cap respected");
        // an explicit cap is honoured verbatim (not clamped to the pool), so
        // tests can force the chunked paths on any machine
        let wide = ParallelConfig::with_threads(1024);
        assert_eq!(wide.effective_threads(), 1024);
        assert!(wide.worth(wide.batch_grain));
    }

    #[test]
    fn chunk_ranges_partition_exactly_even_when_oversplit() {
        for (len, chunks) in [(0, 1), (1, 1), (10, 3), (100, 64), (12, 8), (81, 10)] {
            let ranges = chunk_ranges(len, chunks);
            assert_eq!(ranges.len(), chunks.max(1));
            let mut expect = 0;
            for &(lo, hi) in &ranges {
                assert_eq!(lo, expect, "len={len} chunks={chunks}");
                assert!(hi >= lo && hi <= len, "len={len} chunks={chunks}");
                expect = hi;
            }
            assert_eq!(expect, len);
        }
    }

    #[test]
    fn delete_grain_gates_independently_of_the_insert_grain() {
        let cfg = ParallelConfig::with_threads(8);
        assert!(!cfg.worth_delete(cfg.delete_grain - 1));
        assert!(cfg.worth_delete(cfg.delete_grain));
        // the knobs are independent: a config can engage deletes on short
        // runs while keeping inserts sequential, and vice versa
        let tuned = ParallelConfig {
            delete_grain: 64,
            batch_grain: 1 << 20,
            ..cfg
        };
        assert!(tuned.worth_delete(64));
        assert!(!tuned.worth(64));
        // sequential configs never fan deletes out either
        assert!(!ParallelConfig::sequential().worth_delete(usize::MAX));
    }

    #[test]
    fn rebuild_threshold_is_off_by_default_and_gates_by_percent() {
        let cfg = ParallelConfig::default();
        assert!(!cfg.rebuild_enabled());
        assert!(
            !cfg.rebuild_worth(usize::MAX / 100, 1),
            "disabled hatch never fires"
        );
        let half = ParallelConfig::default().with_rebuild_threshold(50);
        assert!(half.rebuild_enabled());
        assert!(half.rebuild_worth(50, 100));
        assert!(half.rebuild_worth(51, 100));
        assert!(!half.rebuild_worth(49, 100));
        assert!(!half.rebuild_worth(0, 0), "empty component never trips");
        // a 100% threshold needs deletions ≥ the component size
        let all = ParallelConfig::default().with_rebuild_threshold(100);
        assert!(!all.rebuild_worth(99, 100));
        assert!(all.rebuild_worth(100, 100));
    }

    #[test]
    fn worth_parallel_matches_default_config() {
        for len in [0, 1, PAR_GRAIN - 1, PAR_GRAIN, 10 * PAR_GRAIN] {
            assert_eq!(worth_parallel(len), ParallelConfig::default().worth(len));
        }
    }
}
