//! The algebraic aggregation layer shared by every forest in the workspace.
//!
//! Section 4.2 of the paper phrases augmented values as *commutative monoid*
//! aggregates over vertex weights, splitting them into invertible ones (sums,
//! counts — a deleted child's contribution can be subtracted back out) and
//! non-invertible ones (min/max — a deletion forces recomputation from the
//! surviving children).  This module is the workspace-wide home of that
//! abstraction: a [`Monoid`] describes how per-vertex weights lift into
//! aggregate values and how those values combine; [`Agg`] packages a monoid
//! value with the structural counters (vertex count, edge count) every query
//! also needs.
//!
//! All forests — UFO trees, topology trees, link-cut trees, Euler tour trees
//! and the naive oracle — are generic over a [`CommutativeMonoid`] and answer
//! path / subtree / component queries as `Agg<M>`, so a new aggregate (e.g.
//! the [`MaxEdge`] argmax monoid behind dynamic MST maintenance) is one
//! marker type away from working across the whole stack, connectivity engine
//! included.

use std::fmt::Debug;
use std::marker::PhantomData;
use std::ops::Deref;

/// A monoid over vertex weights: an identity element and an associative
/// `combine`.
///
/// Implementors are zero-sized *marker* types (usually uninhabited enums);
/// the data lives in the associated `Weight` (per-vertex input) and `Value`
/// (aggregate) types.  `lift` injects a weight into the aggregate domain.
///
/// Laws (checked by `tests/monoid_laws.rs`):
/// * `combine(IDENTITY, a) == a == combine(a, IDENTITY)`
/// * `combine(a, combine(b, c)) == combine(combine(a, b), c)`
///
/// **Saturation caveat:** the shipped sum-based monoids harden against
/// overflow with saturating adds, which makes their `combine` associative
/// only away from the `i64` boundary (e.g. `[MAX, 1, -1]` folds to `MAX-1`
/// left-to-right but `MAX` right-to-left).  Min/max/argmax stay exactly
/// lawful everywhere.  Keep weights within `i64::MIN/2..i64::MAX/2` of
/// total magnitude when exact cross-structure agreement matters.
pub trait Monoid: Copy + Clone + Debug + PartialEq + Eq + Send + Sync + 'static {
    /// Per-vertex input weight.  `Default` is the weight of a fresh vertex.
    type Weight: Copy + Clone + Debug + Default + PartialEq + Send + Sync + 'static;
    /// Aggregate value.
    type Value: Copy + Clone + Debug + PartialEq + Send + Sync + 'static;
    /// The update-map monoid whose elements act on this monoid's weights and
    /// values (lazy bulk updates, DESIGN.md §13).  Monoids with no meaningful
    /// bulk update use [`NoAction`], whose `from_delta` declines every delta.
    type Update: Action<Self>;

    /// Name used in diagnostics and benchmark output.
    const NAME: &'static str;

    /// The identity element of `combine`.
    const IDENTITY: Self::Value;

    /// Injects a single vertex weight into the aggregate domain.
    fn lift(w: Self::Weight) -> Self::Value;

    /// Associative combination of two aggregates.
    fn combine(a: Self::Value, b: Self::Value) -> Self::Value;
}

/// Marker for monoids whose `combine` is commutative.
///
/// Every forest requires this: cluster merges (UFO/topology), tour rotations
/// (Euler) and lazy path reversal (link-cut) all reorder the elements being
/// folded, which is only sound when the fold is order-insensitive.
pub trait CommutativeMonoid: Monoid {}

/// Marker for commutative monoids with an inverse (Section 4.2's *invertible*
/// aggregates): a part's contribution can be subtracted from a total without
/// refolding the rest.
pub trait InvertibleMonoid: CommutativeMonoid {
    /// Removes `part`'s contribution from `total`.
    ///
    /// Law: `uncombine(combine(a, b), b) == a` (up to saturation at the
    /// extremes of the value domain).
    fn uncombine(total: Self::Value, part: Self::Value) -> Self::Value;
}

/// The weight type of a monoid (bound-shortening alias).
pub type WeightOf<M> = <M as Monoid>::Weight;
/// The value type of a monoid (bound-shortening alias).
pub type ValueOf<M> = <M as Monoid>::Value;
/// The update-action type of a monoid (bound-shortening alias).
pub type ActionOf<M> = <M as Monoid>::Update;

// ---------------------------------------------------------------------------
// Actions: the update-map monoid behind lazy bulk updates
// ---------------------------------------------------------------------------

/// A monoid of *update maps* acting on a [`Monoid`]'s weights and values —
/// the algebra behind lazy path/subtree/component updates (DESIGN.md §13).
///
/// An action is a pending tag a tree node can hold: "every weight below me
/// has `self` applied to it, lazily".  For that to be sound the laws below
/// must hold (checked by `crates/primitives/tests/action_laws.rs`):
///
/// * **Monoid:** `compose` is associative with identity [`Action::IDENTITY`].
/// * **Action:** `compose(f, g).act_weight(w) == f.act_weight(g.act_weight(w))`
///   — composing tags is the same as applying them innermost-first.
/// * **Distributivity:** acting on an aggregate equals aggregating the acted
///   weights: for disjoint folds `a` (over `ca` vertices) and `b` (over `cb`),
///   `f.act_value(combine(a, b), ca + cb)
///    == combine(f.act_value(a, ca), f.act_value(b, cb))`.
///
/// **Saturation caveat:** the shipped actions harden arithmetic with
/// saturating ops, exactly like the shipped monoids, so the laws above are
/// exact only away from the `i64` boundary and degrade to pinned values at
/// it (see `boundary_saturation_is_consistent` in the tests).
///
/// The `count == 0` aggregate (empty or all-phantom) must be a fixed point
/// of `act_value`: monoid identities like `min = i64::MAX` are sentinels,
/// not data, and shifting them would corrupt later combines.
pub trait Action<M: Monoid>: Copy + Clone + Debug + PartialEq + Eq + Send + Sync + 'static {
    /// Name used in diagnostics and benchmark output.
    const NAME: &'static str;

    /// The do-nothing action: identity of `compose`, fixed point of `act_*`.
    const IDENTITY: Self;

    /// Sequential composition: the single action equivalent to applying
    /// `inner` first, then `outer`.
    fn compose(outer: Self, inner: Self) -> Self;

    /// Applies the action to a single vertex weight.
    fn act_weight(self, w: M::Weight) -> M::Weight;

    /// Applies the action to an aggregate folded over `count` non-phantom
    /// vertices, in `O(1)`.  When `count == 0` the value must be returned
    /// unchanged.
    fn act_value(self, v: M::Value, count: u64) -> M::Value;

    /// Interprets a per-op weight delta (the payload of bulk graph ops) as
    /// an action, or `None` when this monoid supports no bulk updates —
    /// the typed decline the ops layer turns into `UnsupportedQuery`.
    fn from_delta(delta: M::Weight) -> Option<Self>;

    /// Whether this action is the identity (skippable without tagging).
    fn is_identity(self) -> bool {
        self == Self::IDENTITY
    }
}

/// The trivial action: does nothing, declines every delta.  The `Update`
/// type of monoids without a meaningful bulk update (e.g. [`Pair`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct NoAction;

impl<M: Monoid> Action<M> for NoAction {
    const NAME: &'static str = "none";
    const IDENTITY: NoAction = NoAction;
    fn compose(_outer: Self, _inner: Self) -> Self {
        NoAction
    }
    fn act_weight(self, w: M::Weight) -> M::Weight {
        w
    }
    fn act_value(self, v: M::Value, _count: u64) -> M::Value {
        v
    }
    fn from_delta(_delta: M::Weight) -> Option<Self> {
        None
    }
}

/// Uniform additive shift: every weight in range gains the same constant.
/// Acts on [`SumMinMax`], [`I64Min`], [`I64Max`] and [`MaxEdge`] (shifting
/// all candidates by the same amount preserves the argmax carrier away from
/// the saturation boundary; the [`WeightedId::NONE`] sentinel is left
/// untouched).  `compose` is a saturating add, consistent with the monoids'
/// own saturating arithmetic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub struct AddConst(pub i64);

impl AddConst {
    /// `self.0 · count` with the count clamped into `i64`, saturating.
    #[inline]
    fn times(self, count: u64) -> i64 {
        self.0
            .saturating_mul(i64::try_from(count).unwrap_or(i64::MAX))
    }
}

impl Action<SumMinMax> for AddConst {
    const NAME: &'static str = "add-const";
    const IDENTITY: AddConst = AddConst(0);
    fn compose(outer: Self, inner: Self) -> Self {
        AddConst(outer.0.saturating_add(inner.0))
    }
    fn act_weight(self, w: i64) -> i64 {
        w.saturating_add(self.0)
    }
    fn act_value(self, v: WeightStats, count: u64) -> WeightStats {
        if count == 0 {
            return v;
        }
        WeightStats {
            sum: v.sum.saturating_add(self.times(count)),
            min: v.min.saturating_add(self.0),
            max: v.max.saturating_add(self.0),
        }
    }
    fn from_delta(delta: i64) -> Option<Self> {
        Some(AddConst(delta))
    }
}

impl Action<I64Min> for AddConst {
    const NAME: &'static str = "add-const";
    const IDENTITY: AddConst = AddConst(0);
    fn compose(outer: Self, inner: Self) -> Self {
        AddConst(outer.0.saturating_add(inner.0))
    }
    fn act_weight(self, w: i64) -> i64 {
        w.saturating_add(self.0)
    }
    fn act_value(self, v: i64, count: u64) -> i64 {
        if count == 0 {
            return v;
        }
        v.saturating_add(self.0)
    }
    fn from_delta(delta: i64) -> Option<Self> {
        Some(AddConst(delta))
    }
}

impl Action<I64Max> for AddConst {
    const NAME: &'static str = "add-const";
    const IDENTITY: AddConst = AddConst(0);
    fn compose(outer: Self, inner: Self) -> Self {
        AddConst(outer.0.saturating_add(inner.0))
    }
    fn act_weight(self, w: i64) -> i64 {
        w.saturating_add(self.0)
    }
    fn act_value(self, v: i64, count: u64) -> i64 {
        if count == 0 {
            return v;
        }
        v.saturating_add(self.0)
    }
    fn from_delta(delta: i64) -> Option<Self> {
        Some(AddConst(delta))
    }
}

impl Action<MaxEdge> for AddConst {
    const NAME: &'static str = "add-const";
    const IDENTITY: AddConst = AddConst(0);
    fn compose(outer: Self, inner: Self) -> Self {
        AddConst(outer.0.saturating_add(inner.0))
    }
    fn act_weight(self, w: WeightedId) -> WeightedId {
        // the NONE sentinel carries no weight to shift
        if w.is_some() {
            WeightedId {
                weight: w.weight.saturating_add(self.0),
                id: w.id,
            }
        } else {
            w
        }
    }
    fn act_value(self, v: WeightedId, count: u64) -> WeightedId {
        if count == 0 {
            return v;
        }
        Action::<MaxEdge>::act_weight(self, v)
    }
    /// The delta of a `MaxEdge` bulk op is carried in the `weight` field of
    /// a [`WeightedId`]; its `id` is ignored.
    fn from_delta(delta: WeightedId) -> Option<Self> {
        Some(AddConst(delta.weight))
    }
}

/// Affine update on saturating sums: `w ← mul·w + add`.  Closed under
/// composition (`f ∘ g = {mul: f.mul·g.mul, add: f.mul·g.add + f.add}`),
/// with every product and sum saturating — consistent with [`I64Sum`]'s own
/// saturating `combine`/`uncombine`, so boundary behaviour degrades the
/// same way on both sides of a differential test.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct AffineSum {
    /// Multiplicative part, applied first.
    pub mul: i64,
    /// Additive part, applied second.
    pub add: i64,
}

impl Action<I64Sum> for AffineSum {
    const NAME: &'static str = "affine-sum";
    const IDENTITY: AffineSum = AffineSum { mul: 1, add: 0 };
    fn compose(outer: Self, inner: Self) -> Self {
        AffineSum {
            mul: outer.mul.saturating_mul(inner.mul),
            add: outer
                .mul
                .saturating_mul(inner.add)
                .saturating_add(outer.add),
        }
    }
    fn act_weight(self, w: i64) -> i64 {
        self.mul.saturating_mul(w).saturating_add(self.add)
    }
    fn act_value(self, v: i64, count: u64) -> i64 {
        if count == 0 {
            return v;
        }
        let n = i64::try_from(count).unwrap_or(i64::MAX);
        self.mul
            .saturating_mul(v)
            .saturating_add(self.add.saturating_mul(n))
    }
    /// A plain delta is the affine map with `mul = 1`.
    fn from_delta(delta: i64) -> Option<Self> {
        Some(AffineSum { mul: 1, add: delta })
    }
}

// ---------------------------------------------------------------------------
// Shipped monoids
// ---------------------------------------------------------------------------

/// Value of the [`SumMinMax`] monoid: saturating sum plus min and max.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightStats {
    /// Saturating sum of the weights.
    pub sum: i64,
    /// Minimum weight (`i64::MAX` when empty).
    pub min: i64,
    /// Maximum weight (`i64::MIN` when empty).
    pub max: i64,
}

/// The workspace's historical default aggregate: `i64` sum, min and max in
/// one pass.  Not invertible as a whole (min/max are not), commutative.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SumMinMax {}

impl Monoid for SumMinMax {
    type Weight = i64;
    type Value = WeightStats;
    type Update = AddConst;
    const NAME: &'static str = "sum+min+max";
    const IDENTITY: WeightStats = WeightStats {
        sum: 0,
        min: i64::MAX,
        max: i64::MIN,
    };
    fn lift(w: i64) -> WeightStats {
        WeightStats {
            sum: w,
            min: w,
            max: w,
        }
    }
    fn combine(a: WeightStats, b: WeightStats) -> WeightStats {
        WeightStats {
            sum: a.sum.saturating_add(b.sum),
            min: a.min.min(b.min),
            max: a.max.max(b.max),
        }
    }
}
impl CommutativeMonoid for SumMinMax {}

/// Saturating `i64` sum — the canonical invertible aggregate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum I64Sum {}

impl Monoid for I64Sum {
    type Weight = i64;
    type Value = i64;
    type Update = AffineSum;
    const NAME: &'static str = "sum";
    const IDENTITY: i64 = 0;
    fn lift(w: i64) -> i64 {
        w
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.saturating_add(b)
    }
}
impl CommutativeMonoid for I64Sum {}
impl InvertibleMonoid for I64Sum {
    /// Exact away from the saturation boundary; saturating at the extremes.
    fn uncombine(total: i64, part: i64) -> i64 {
        total.saturating_sub(part)
    }
}

/// `i64` minimum — non-invertible (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum I64Min {}

impl Monoid for I64Min {
    type Weight = i64;
    type Value = i64;
    type Update = AddConst;
    const NAME: &'static str = "min";
    const IDENTITY: i64 = i64::MAX;
    fn lift(w: i64) -> i64 {
        w
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.min(b)
    }
}
impl CommutativeMonoid for I64Min {}

/// `i64` maximum — non-invertible (Section 4.2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum I64Max {}

impl Monoid for I64Max {
    type Weight = i64;
    type Value = i64;
    type Update = AddConst;
    const NAME: &'static str = "max";
    const IDENTITY: i64 = i64::MIN;
    fn lift(w: i64) -> i64 {
        w
    }
    fn combine(a: i64, b: i64) -> i64 {
        a.max(b)
    }
}
impl CommutativeMonoid for I64Max {}

/// A weight tagged with the identity of its carrier — the value of the
/// [`MaxEdge`] argmax monoid.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct WeightedId {
    /// The weight being maximised over.
    pub weight: i64,
    /// Identifier of the vertex (or subdivision vertex standing in for an
    /// edge) that carries `weight`.
    pub id: usize,
}

impl WeightedId {
    /// "No carrier": the identity of [`MaxEdge`].  The id `usize::MAX` is
    /// *reserved* as this sentinel — real carriers must use smaller ids.
    pub const NONE: WeightedId = WeightedId {
        weight: i64::MIN,
        id: usize::MAX,
    };

    /// Whether this value actually names a carrier.
    pub fn is_some(&self) -> bool {
        self.id != usize::MAX
    }
}

impl Default for WeightedId {
    /// Fresh vertices carry the identity, so they never win an argmax.
    fn default() -> Self {
        WeightedId::NONE
    }
}

/// Argmax over tagged weights: `combine` keeps the heavier carrier (ties
/// break towards the *smaller* id, deterministically, so the reserved
/// [`WeightedId::NONE`] sentinel — weight `i64::MIN`, id `usize::MAX` —
/// loses to every real carrier, including ones of weight `i64::MIN`).
/// This is the monoid behind max-edge-on-path queries — the primitive of
/// dynamic MST maintenance (`examples/dynamic_mst.rs`), with each edge
/// represented by a subdivision vertex carrying the edge weight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MaxEdge {}

impl Monoid for MaxEdge {
    type Weight = WeightedId;
    type Value = WeightedId;
    type Update = AddConst;
    const NAME: &'static str = "max-edge";
    const IDENTITY: WeightedId = WeightedId::NONE;
    fn lift(w: WeightedId) -> WeightedId {
        w
    }
    fn combine(a: WeightedId, b: WeightedId) -> WeightedId {
        // max by weight, ties to the smaller id: a total-order selection,
        // hence associative and commutative, with NONE as the least element
        if (b.weight, std::cmp::Reverse(b.id)) > (a.weight, std::cmp::Reverse(a.id)) {
            b
        } else {
            a
        }
    }
}
impl CommutativeMonoid for MaxEdge {}

/// Product of two monoids over the same weight type: both aggregates are
/// maintained in one pass.  Commutative iff both factors are.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pair<A, B>(PhantomData<(A, B)>);

impl<A: Monoid, B: Monoid<Weight = A::Weight>> Monoid for Pair<A, B> {
    type Weight = A::Weight;
    type Value = (A::Value, B::Value);
    // No componentwise action ships: a lawful `Pair` update would need both
    // factors to agree on one delta interpretation.  Declined instead.
    type Update = NoAction;
    const NAME: &'static str = "pair";
    const IDENTITY: (A::Value, B::Value) = (A::IDENTITY, B::IDENTITY);
    fn lift(w: Self::Weight) -> Self::Value {
        (A::lift(w), B::lift(w))
    }
    fn combine(a: Self::Value, b: Self::Value) -> Self::Value {
        (A::combine(a.0, b.0), B::combine(a.1, b.1))
    }
}
impl<A: CommutativeMonoid, B: CommutativeMonoid<Weight = A::Weight>> CommutativeMonoid
    for Pair<A, B>
{
}

// ---------------------------------------------------------------------------
// Agg
// ---------------------------------------------------------------------------

/// A monoid aggregate plus the structural counters every forest query also
/// reports: the number of (non-phantom) vertices folded in and the number of
/// edges crossed.
///
/// `Agg<M>` derefs to `M::Value`, so component accesses read naturally —
/// `agg.sum` / `agg.min` / `agg.max` for [`SumMinMax`] — while `agg.count`
/// and `agg.edges` are direct fields.  Counter arithmetic saturates, as does
/// every shipped monoid's `combine`, so `i64::MAX`-weighted inputs degrade
/// to pinned values instead of overflowing (see `tests/weighted_differential.rs`).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Agg<M: Monoid> {
    /// The combined monoid value.
    pub value: M::Value,
    /// Number of non-phantom vertices folded into `value`.
    pub count: u64,
    /// Number of edges crossed (path queries) — 0 for single vertices.
    pub edges: u64,
}

impl<M: Monoid> Agg<M> {
    /// Aggregate of an empty vertex set.
    pub const IDENTITY: Agg<M> = Agg {
        value: M::IDENTITY,
        count: 0,
        edges: 0,
    };

    /// Aggregate of a single vertex of weight `w`.
    pub fn vertex(w: M::Weight) -> Self {
        Agg {
            value: M::lift(w),
            count: 1,
            edges: 0,
        }
    }

    /// Aggregate of a single vertex, or the identity when the vertex is a
    /// phantom (ternarization helper slots contribute nothing).
    pub fn vertex_if(w: M::Weight, phantom: bool) -> Self {
        if phantom {
            Self::IDENTITY
        } else {
            Self::vertex(w)
        }
    }

    /// Combines two aggregates (values via the monoid, counters saturating).
    pub fn combine(a: Self, b: Self) -> Self {
        Agg {
            value: M::combine(a.value, b.value),
            count: a.count.saturating_add(b.count),
            edges: a.edges.saturating_add(b.edges),
        }
    }

    /// Adds one edge crossing to the aggregate.
    pub fn cross_edge(mut self) -> Self {
        self.edges = self.edges.saturating_add(1);
        self
    }
}

impl<M: Monoid> Deref for Agg<M> {
    type Target = M::Value;
    /// Transparent access to the monoid value's components (`agg.sum`,
    /// `agg.max`, ... for [`SumMinMax`]); the structural counters stay
    /// direct fields.
    fn deref(&self) -> &M::Value {
        &self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_min_max_combines() {
        let a = Agg::<SumMinMax>::vertex(3);
        let b = Agg::<SumMinMax>::vertex(-1).cross_edge();
        let c = Agg::combine(a, b);
        assert_eq!(c.sum, 2);
        assert_eq!(c.min, -1);
        assert_eq!(c.max, 3);
        assert_eq!(c.edges, 1);
        assert_eq!(c.count, 2);
        let d = Agg::combine(c, Agg::IDENTITY);
        assert_eq!(d, c);
    }

    #[test]
    fn phantom_vertices_contribute_identity() {
        let a = Agg::<SumMinMax>::vertex_if(5, false);
        let b = Agg::<SumMinMax>::vertex_if(100, true);
        let c = Agg::combine(a, b);
        assert_eq!(c.sum, 5);
        assert_eq!(c.count, 1);
        let d = Agg::combine(c, Agg::vertex(-2));
        assert_eq!(d.min, -2);
        assert_eq!(d.max, 5);
        assert_eq!(d.count, 2);
    }

    #[test]
    fn saturating_sum_at_extremes() {
        let a = Agg::<SumMinMax>::vertex(i64::MAX);
        let c = Agg::combine(a, a);
        assert_eq!(c.sum, i64::MAX, "sum saturates instead of wrapping");
        assert_eq!(c.max, i64::MAX);
        let lo = Agg::<SumMinMax>::vertex(i64::MIN);
        assert_eq!(Agg::combine(lo, lo).sum, i64::MIN);
        assert_eq!(I64Sum::combine(i64::MAX, 1), i64::MAX);
        assert_eq!(I64Sum::uncombine(i64::MIN, 1), i64::MIN);
    }

    #[test]
    fn max_edge_argmax_keeps_carrier() {
        let e1 = WeightedId { weight: 7, id: 1 };
        let e2 = WeightedId { weight: 9, id: 2 };
        assert_eq!(MaxEdge::combine(e1, e2), e2);
        assert_eq!(MaxEdge::combine(e2, e1), e2);
        assert_eq!(MaxEdge::combine(e1, MaxEdge::IDENTITY), e1);
        // the identity loses even to a minimum-weight real carrier
        let floor = WeightedId {
            weight: i64::MIN,
            id: 3,
        };
        assert_eq!(MaxEdge::combine(MaxEdge::IDENTITY, floor), floor);
        assert_eq!(MaxEdge::combine(floor, MaxEdge::IDENTITY), floor);
        assert!(!WeightedId::NONE.is_some());
        assert!(e1.is_some());
        assert_eq!(WeightedId::default(), WeightedId::NONE);
    }

    #[test]
    fn pair_runs_both_factors() {
        type SumAndMax = Pair<I64Sum, I64Max>;
        let a = SumAndMax::lift(4);
        let b = SumAndMax::lift(-2);
        let c = SumAndMax::combine(a, b);
        assert_eq!(c, (2, 4));
        assert_eq!(SumAndMax::combine(c, SumAndMax::IDENTITY), c);
    }

    #[test]
    fn invertible_sum_roundtrip() {
        let t = I64Sum::combine(10, 32);
        assert_eq!(I64Sum::uncombine(t, 32), 10);
    }

    #[test]
    fn uncombine_pins_the_saturation_boundary() {
        // "Exact away from the saturation boundary" — pin exactly what the
        // boundary does so a refactor can't silently change it to wrapping.
        assert_eq!(I64Sum::uncombine(i64::MIN, 1), i64::MIN);
        assert_eq!(I64Sum::uncombine(i64::MAX, -1), i64::MAX);
        assert_eq!(I64Sum::uncombine(i64::MIN, -1), i64::MIN + 1);
        assert_eq!(I64Sum::uncombine(i64::MAX, 1), i64::MAX - 1);
        // the classic roundtrip failure at the boundary: combine saturates,
        // so uncombine cannot recover the pre-saturation operand
        let t = I64Sum::combine(i64::MAX, 1);
        assert_eq!(I64Sum::uncombine(t, 1), i64::MAX - 1);
    }

    #[test]
    fn action_identity_and_composition_laws() {
        type A = ActionOf<SumMinMax>;
        let id = <A as Action<SumMinMax>>::IDENTITY;
        let f = AddConst(5);
        let g = AddConst(-3);
        assert_eq!(<A as Action<SumMinMax>>::compose(f, id), f);
        assert_eq!(<A as Action<SumMinMax>>::compose(id, f), f);
        // action law: compose then act == act innermost-first
        for w in [-7i64, 0, 42] {
            assert_eq!(
                Action::<SumMinMax>::act_weight(<A as Action<SumMinMax>>::compose(f, g), w),
                Action::<SumMinMax>::act_weight(f, Action::<SumMinMax>::act_weight(g, w)),
            );
        }
        assert!(Action::<SumMinMax>::is_identity(AddConst(0)));
        assert!(!Action::<SumMinMax>::is_identity(f));
    }

    #[test]
    fn add_const_distributes_over_sum_min_max() {
        let a = Agg::<SumMinMax>::combine(Agg::vertex(3), Agg::vertex(-1));
        let f = AddConst(10);
        let acted = Action::<SumMinMax>::act_value(f, a.value, a.count);
        let refolded = SumMinMax::combine(SumMinMax::lift(13), SumMinMax::lift(9));
        assert_eq!(acted, refolded);
        // the empty aggregate is a fixed point: sentinels stay sentinels
        let id = Action::<SumMinMax>::act_value(f, SumMinMax::IDENTITY, 0);
        assert_eq!(id, SumMinMax::IDENTITY);
    }

    #[test]
    fn affine_sum_composes_and_acts() {
        let f = AffineSum { mul: 2, add: 3 }; // w ← 2w + 3
        let g = AffineSum { mul: -1, add: 5 }; // w ← -w + 5
        let fg = Action::<I64Sum>::compose(f, g);
        assert_eq!(fg, AffineSum { mul: -2, add: 13 });
        for w in [-4i64, 0, 9] {
            assert_eq!(
                Action::<I64Sum>::act_weight(fg, w),
                Action::<I64Sum>::act_weight(f, Action::<I64Sum>::act_weight(g, w)),
            );
        }
        // aggregate action: 2·sum + 3·count
        assert_eq!(Action::<I64Sum>::act_value(f, 10, 4), 32);
        assert_eq!(
            Action::<I64Sum>::act_value(f, 7, 0),
            7,
            "count-0 fixed point"
        );
        assert_eq!(
            <AffineSum as Action<I64Sum>>::from_delta(6),
            Some(AffineSum { mul: 1, add: 6 })
        );
    }

    #[test]
    fn boundary_saturation_is_consistent() {
        // Action composition saturates exactly like acting twice does once
        // both sides have pinned: composing a huge shift with anything stays
        // pinned at the boundary, and acting with it pins the weight — the
        // same end state the two-step application reaches.
        let big = AddConst(i64::MAX);
        let fg = <AddConst as Action<SumMinMax>>::compose(big, AddConst(1));
        assert_eq!(fg, AddConst(i64::MAX), "compose saturates, not wraps");
        assert_eq!(Action::<SumMinMax>::act_weight(fg, 1), i64::MAX);
        assert_eq!(
            Action::<SumMinMax>::act_weight(big, Action::<SumMinMax>::act_weight(AddConst(1), 1)),
            i64::MAX
        );
        // same for the affine action's multiplicative path
        let hot = AffineSum {
            mul: i64::MAX,
            add: i64::MAX,
        };
        let squared = Action::<I64Sum>::compose(hot, hot);
        assert_eq!(
            squared,
            AffineSum {
                mul: i64::MAX,
                add: i64::MAX
            }
        );
        assert_eq!(Action::<I64Sum>::act_weight(squared, 2), i64::MAX);
        assert_eq!(
            Action::<I64Sum>::act_weight(hot, i64::MIN),
            i64::MIN + i64::MAX
        );
        // MaxEdge: the NONE sentinel never shifts, real carriers pin
        let shifted = Action::<MaxEdge>::act_weight(AddConst(5), WeightedId::NONE);
        assert_eq!(shifted, WeightedId::NONE);
        let top = WeightedId {
            weight: i64::MAX,
            id: 2,
        };
        assert_eq!(
            Action::<MaxEdge>::act_weight(AddConst(1), top),
            WeightedId {
                weight: i64::MAX,
                id: 2
            }
        );
    }

    #[test]
    fn no_action_declines_deltas() {
        type P = Pair<I64Sum, I64Max>;
        assert_eq!(<ActionOf<P> as Action<P>>::from_delta(7), None);
        let v = P::lift(4);
        assert_eq!(Action::<P>::act_value(NoAction, v, 1), v);
        assert_eq!(Action::<P>::act_weight(NoAction, 9), 9);
    }
}
