//! Parallel building blocks used throughout the UFO-trees reproduction.
//!
//! The paper's algorithms (Sections 2 and 5) rely on a small number of
//! primitives: *semisort* (group records by key), duplicate removal,
//! *list ranking* over linked chains, maximal matching over chains, and
//! parallel hash-table style batched set updates.  This crate provides
//! practical Rust equivalents on top of [`rayon`]'s fork-join runtime, which
//! matches the binary fork-join model the paper analyses.
//!
//! The implementations intentionally favour deterministic results (sorting
//! based grouping rather than hashing) so that differential tests against the
//! naive oracle are reproducible.

pub mod algebra;
pub mod dsu;
pub mod groupby;
pub mod hash;
pub mod listrank;
pub mod matching;
pub mod ops;
pub mod par;
pub mod slab;
pub mod stats;
pub mod telemetry;

pub use algebra::{
    Action, ActionOf, AddConst, AffineSum, Agg, CommutativeMonoid, InvertibleMonoid, Monoid,
    NoAction,
};
pub use dsu::Dsu;
pub use groupby::{dedup_sorted, group_by_key, group_by_key_seq, remove_duplicates};
pub use listrank::{list_rank, ListNode};
pub use matching::{match_chain_greedy, match_chains_parallel, ChainMatch};
pub use ops::{BatchReport, DeleteOutcome, EdgeKind, GraphError, GraphOp, OpOutcome};
pub use par::{chunk_ranges, worth_parallel, ParallelConfig, CHUNK_GRAIN, DELETE_GRAIN, PAR_GRAIN};
pub use slab::SharedSlab;
pub use stats::{vec_bytes, OnlineStats};
pub use telemetry::{BatchTelemetry, Counter, Phase, Telemetry, TelemetrySnapshot};
