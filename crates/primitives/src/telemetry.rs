//! Zero-overhead-when-disabled engine telemetry: relaxed atomic counters and
//! a hierarchical phase timer behind a cloneable [`Telemetry`] handle.
//!
//! Design (DESIGN.md §9):
//! * with the `telemetry` cargo feature **off**, [`Telemetry`] is a unit
//!   struct and every hook is an empty inline function — the instrumented
//!   code compiles to exactly what it was before this module existed;
//! * with the feature **on** but the handle disabled (the default), every
//!   hook is one `Option` branch on a pointer-sized field;
//! * with the handle enabled, counters are relaxed atomic adds and phase
//!   spans are two `Instant` reads plus two relaxed adds per enter/exit.
//!
//! Snapshots ([`TelemetrySnapshot`]) are always compiled, so downstream
//! structs such as `BatchReport` keep the same shape in both feature states.
//! Export is serde-free JSON, hand-rolled in the same idiom as the bench
//! crate's `baseline.rs`.

#[cfg(feature = "telemetry")]
use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(feature = "telemetry")]
use std::sync::Arc;
#[cfg(feature = "telemetry")]
use std::time::Instant;

// ---------------------------------------------------------------------------
// Counter / phase taxonomy
// ---------------------------------------------------------------------------

/// Deterministic algorithm counters.  Everything here counts *work the
/// algorithm decided to do*, never wall time, so the determinism contract
/// extends to counters: at a fixed [`ParallelConfig`](crate::ParallelConfig)
/// the whole set is byte-identical across pool widths, and the core HDT
/// counters (searches/scans/bumps/splits/drains) are identical across *any*
/// fan-out because the engine's choices are canonical.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Replacement searches started (one per tree-edge delete).
    ReplacementSearches,
    /// Non-tree edges inspected across all replacement-search bucket scans.
    ReplacementEdgesScanned,
    /// Searches that found a replacement edge and promoted it.
    ReplacementPromotions,
    /// Tree edges pushed one level down during smaller-side traversal.
    LevelBumpsTree,
    /// Non-tree edges pushed one level down after a failed bucket probe.
    LevelBumpsNonTree,
    /// Vertices enumerated on the smaller side of a severed tree edge.
    SmallerSideVertices,
    /// Components split by a delete with no replacement.
    ComponentSplits,
    /// Insert certificates issued by the parallel pre-pass.
    InsertCertificatesIssued,
    /// Insert walk steps that trusted a pre-pass certificate.
    InsertCertificatesUsed,
    /// Insert walk steps answered by the chunk-local DSU alone.
    InsertDsuHits,
    /// Live connectivity probes avoided (certificate or DSU hit).
    LiveProbesSaved,
    /// Snapshot connectivity probes issued by the insert pre-pass.
    SnapshotProbes,
    /// Delete classifications issued by the parallel pre-pass.
    DeleteCertificatesIssued,
    /// Non-tree deletes drained without touching the spanning structure.
    DeleteNonTreeDrained,
    /// Delete certificates invalidated by an earlier promotion in the batch.
    DeleteCertificatesStale,
    /// Replacement searches executed on pool workers as part of an
    /// independent-component fan-out (the canonical-order sequential walk
    /// replays their logs, so this is batch machinery, not HDT structure).
    SearchesFannedOut,
    /// Wholesale component rebuilds taken by the escape hatch instead of
    /// per-edge replacement searches.
    RebuildsTaken,
    /// Replacement-search scratch buffers served from the reusable per-engine
    /// arena instead of a fresh allocation.
    ScratchArenaReuses,
    /// Snapshots published by a serving engine (one per applied batch plus
    /// the epoch-0 bootstrap).  Serving counters form a third family: they
    /// are deterministic for a fixed writer trace but depend on how many
    /// reader handles run, so the differential harness pins both.
    SnapshotsPublished,
    /// Queries answered by `ReadHandle`s against a published snapshot.
    ReaderQueriesServed,
    /// Reader refreshes that found the cached epoch stale and caught up to a
    /// newer published snapshot.
    StaleEpochReads,
}

impl Counter {
    /// Every counter, in canonical export order.
    pub const ALL: [Counter; 21] = [
        Counter::ReplacementSearches,
        Counter::ReplacementEdgesScanned,
        Counter::ReplacementPromotions,
        Counter::LevelBumpsTree,
        Counter::LevelBumpsNonTree,
        Counter::SmallerSideVertices,
        Counter::ComponentSplits,
        Counter::InsertCertificatesIssued,
        Counter::InsertCertificatesUsed,
        Counter::InsertDsuHits,
        Counter::LiveProbesSaved,
        Counter::SnapshotProbes,
        Counter::DeleteCertificatesIssued,
        Counter::DeleteNonTreeDrained,
        Counter::DeleteCertificatesStale,
        Counter::SearchesFannedOut,
        Counter::RebuildsTaken,
        Counter::ScratchArenaReuses,
        Counter::SnapshotsPublished,
        Counter::ReaderQueriesServed,
        Counter::StaleEpochReads,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Counter::ReplacementSearches => "replacement_searches",
            Counter::ReplacementEdgesScanned => "replacement_edges_scanned",
            Counter::ReplacementPromotions => "replacement_promotions",
            Counter::LevelBumpsTree => "level_bumps_tree",
            Counter::LevelBumpsNonTree => "level_bumps_nontree",
            Counter::SmallerSideVertices => "smaller_side_vertices",
            Counter::ComponentSplits => "component_splits",
            Counter::InsertCertificatesIssued => "insert_certificates_issued",
            Counter::InsertCertificatesUsed => "insert_certificates_used",
            Counter::InsertDsuHits => "insert_dsu_hits",
            Counter::LiveProbesSaved => "live_probes_saved",
            Counter::SnapshotProbes => "snapshot_probes",
            Counter::DeleteCertificatesIssued => "delete_certificates_issued",
            Counter::DeleteNonTreeDrained => "delete_nontree_drained",
            Counter::DeleteCertificatesStale => "delete_certificates_stale",
            Counter::SearchesFannedOut => "searches_fanned_out",
            Counter::RebuildsTaken => "rebuilds_taken",
            Counter::ScratchArenaReuses => "scratch_arena_reuses",
            Counter::SnapshotsPublished => "snapshots_published",
            Counter::ReaderQueriesServed => "reader_queries_served",
            Counter::StaleEpochReads => "stale_epoch_reads",
        }
    }
}

/// Hierarchical phases of one `apply` call.  Each phase accumulates wall
/// nanos independently; the static [`parent`](Phase::parent) links let
/// consumers render the tree and check that children sum to ≤ the parent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// The whole batch-apply call (root of the tree).
    Apply,
    /// Parallel insert pre-pass (chunk DSUs + snapshot certificates).
    InsertPrePass,
    /// Sequential insert walk consuming the pre-pass plan.
    InsertWalk,
    /// Parallel delete classification pre-pass.
    DeleteClassify,
    /// Sequential delete walk consuming the classification.
    DeleteWalk,
    /// Grouped non-tree bucket drain (inside the delete walk).
    NonTreeDrain,
    /// HDT replacement search after a severed tree edge.
    ReplacementSearch,
    /// Smaller-side enumeration + tree-edge level bumps (inside the search).
    SmallerSide,
    /// Parallel fan-out of independent-component replacement searches
    /// (inside the delete walk; the canonical replay is charged here too).
    SearchFanOut,
    /// Wholesale component rebuild taken by the escape hatch (inside the
    /// delete walk).
    Rebuild,
    /// Building and publishing an immutable serving snapshot after a batch
    /// (inside the apply span, charged by the serving layer).
    SnapshotBuild,
}

impl Phase {
    /// Every phase, in canonical export order.
    pub const ALL: [Phase; 11] = [
        Phase::Apply,
        Phase::InsertPrePass,
        Phase::InsertWalk,
        Phase::DeleteClassify,
        Phase::DeleteWalk,
        Phase::NonTreeDrain,
        Phase::ReplacementSearch,
        Phase::SmallerSide,
        Phase::SearchFanOut,
        Phase::Rebuild,
        Phase::SnapshotBuild,
    ];

    /// Stable snake_case name used in snapshots and JSON.
    pub fn name(self) -> &'static str {
        match self {
            Phase::Apply => "apply",
            Phase::InsertPrePass => "insert_pre_pass",
            Phase::InsertWalk => "insert_walk",
            Phase::DeleteClassify => "delete_classify",
            Phase::DeleteWalk => "delete_walk",
            Phase::NonTreeDrain => "nontree_drain",
            Phase::ReplacementSearch => "replacement_search",
            Phase::SmallerSide => "smaller_side",
            Phase::SearchFanOut => "search_fan_out",
            Phase::Rebuild => "rebuild",
            Phase::SnapshotBuild => "snapshot_build",
        }
    }

    /// Parent phase in the timing tree (`None` for the root).
    pub fn parent(self) -> Option<Phase> {
        match self {
            Phase::Apply => None,
            Phase::InsertPrePass
            | Phase::InsertWalk
            | Phase::DeleteClassify
            | Phase::DeleteWalk => Some(Phase::Apply),
            Phase::NonTreeDrain | Phase::ReplacementSearch => Some(Phase::DeleteWalk),
            Phase::SmallerSide => Some(Phase::ReplacementSearch),
            Phase::SearchFanOut | Phase::Rebuild => Some(Phase::DeleteWalk),
            Phase::SnapshotBuild => Some(Phase::Apply),
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshots (always compiled)
// ---------------------------------------------------------------------------

/// Accumulated time and entry count for one phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PhaseStat {
    /// Phase name (stable snake_case).
    pub phase: &'static str,
    /// Parent phase name, `None` for the root.
    pub parent: Option<&'static str>,
    /// Total wall nanoseconds accumulated inside the phase.
    pub nanos: u64,
    /// Number of times the phase was entered.
    pub enters: u64,
}

/// A point-in-time copy of every counter and phase accumulator.
///
/// Always compiled (even without the `telemetry` feature) so that report
/// types embedding it keep one shape; without the feature it can only ever
/// be [`zeroed`](TelemetrySnapshot::zeroed).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TelemetrySnapshot {
    /// `(name, value)` per counter, in [`Counter::ALL`] order.
    pub counters: Vec<(&'static str, u64)>,
    /// Per-phase stats, in [`Phase::ALL`] order.
    pub phases: Vec<PhaseStat>,
}

impl TelemetrySnapshot {
    /// A snapshot with the full taxonomy and every value zero.
    pub fn zeroed() -> TelemetrySnapshot {
        TelemetrySnapshot {
            counters: Counter::ALL.iter().map(|c| (c.name(), 0)).collect(),
            phases: Phase::ALL
                .iter()
                .map(|p| PhaseStat {
                    phase: p.name(),
                    parent: p.parent().map(Phase::name),
                    nanos: 0,
                    enters: 0,
                })
                .collect(),
        }
    }

    /// Value of the named counter (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map_or(0, |&(_, v)| v)
    }

    /// Stats for the named phase, if present.
    pub fn phase(&self, name: &str) -> Option<&PhaseStat> {
        self.phases.iter().find(|p| p.phase == name)
    }

    /// Positional difference `self - earlier` (saturating), for turning two
    /// cumulative snapshots into a per-batch delta.
    pub fn delta_since(&self, earlier: &TelemetrySnapshot) -> TelemetrySnapshot {
        let counters = self
            .counters
            .iter()
            .map(|&(name, v)| (name, v.saturating_sub(earlier.counter(name))))
            .collect();
        let phases = self
            .phases
            .iter()
            .map(|p| {
                let (en, ee) = earlier
                    .phase(p.phase)
                    .map_or((0, 0), |e| (e.nanos, e.enters));
                PhaseStat {
                    phase: p.phase,
                    parent: p.parent,
                    nanos: p.nanos.saturating_sub(en),
                    enters: p.enters.saturating_sub(ee),
                }
            })
            .collect();
        TelemetrySnapshot { counters, phases }
    }

    /// One-line fingerprint of the *counters only* (no timings), used by the
    /// determinism tests and the fuzz harness: equal work → equal string.
    pub fn counters_fingerprint(&self) -> String {
        let mut s = String::new();
        for &(name, v) in &self.counters {
            if !s.is_empty() {
                s.push(' ');
            }
            s.push_str(name);
            s.push('=');
            s.push_str(&v.to_string());
        }
        s
    }

    /// Serialises to JSON (serde-free, same idiom as the bench baselines).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [\n");
        for (i, &(name, v)) in self.counters.iter().enumerate() {
            let sep = if i + 1 == self.counters.len() {
                ""
            } else {
                ","
            };
            out.push_str(&format!(
                "    {{\"counter\": \"{name}\", \"value\": {v}}}{sep}\n"
            ));
        }
        out.push_str("  ],\n  \"phases\": [\n");
        for (i, p) in self.phases.iter().enumerate() {
            let sep = if i + 1 == self.phases.len() { "" } else { "," };
            let parent = p.parent.unwrap_or("");
            out.push_str(&format!(
                "    {{\"phase\": \"{}\", \"parent\": \"{}\", \"nanos\": {}, \"enters\": {}}}{sep}\n",
                p.phase, parent, p.nanos, p.enters
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses the output of [`to_json`](Self::to_json).  Tolerates unknown
    /// whitespace but not unknown counter/phase names (a renamed counter
    /// must fail loudly, not silently drop a column).
    pub fn parse(text: &str) -> Result<TelemetrySnapshot, String> {
        let mut snap = TelemetrySnapshot::zeroed();
        for obj in json_objects(text) {
            if let Some(name) = json_str_field(&obj, "counter") {
                let value = json_u64_field(&obj, "value")
                    .ok_or_else(|| format!("counter {name:?} has no value"))?;
                let slot = snap
                    .counters
                    .iter_mut()
                    .find(|(n, _)| *n == name)
                    .ok_or_else(|| format!("unknown counter {name:?}"))?;
                slot.1 = value;
            } else if let Some(name) = json_str_field(&obj, "phase") {
                let nanos = json_u64_field(&obj, "nanos")
                    .ok_or_else(|| format!("phase {name:?} has no nanos"))?;
                let enters = json_u64_field(&obj, "enters")
                    .ok_or_else(|| format!("phase {name:?} has no enters"))?;
                let slot = snap
                    .phases
                    .iter_mut()
                    .find(|p| p.phase == name)
                    .ok_or_else(|| format!("unknown phase {name:?}"))?;
                slot.nanos = nanos;
                slot.enters = enters;
            } else {
                return Err(format!("object with neither counter nor phase: {obj}"));
            }
        }
        Ok(snap)
    }
}

impl std::fmt::Display for TelemetrySnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{:<26} {:>14} {:>10}", "phase", "nanos", "enters")?;
        for p in &self.phases {
            let depth = {
                let mut d = 0;
                let mut cur = p.parent;
                while let Some(parent) = cur {
                    d += 1;
                    cur = self.phase(parent).and_then(|q| q.parent);
                }
                d
            };
            writeln!(
                f,
                "{:<26} {:>14} {:>10}",
                format!("{}{}", "  ".repeat(depth), p.phase),
                p.nanos,
                p.enters
            )?;
        }
        writeln!(f, "{:<42} {:>10}", "counter", "value")?;
        for &(name, v) in &self.counters {
            writeln!(f, "{name:<42} {v:>10}")?;
        }
        Ok(())
    }
}

// --- minimal JSON helpers (same hand-rolled idiom as bench/baseline.rs) ----

/// Splits a JSON document into its `{...}` leaf objects (no nesting inside).
fn json_objects(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = None;
    for (i, ch) in text.char_indices() {
        match ch {
            '{' => {
                depth += 1;
                if depth == 2 {
                    start = Some(i);
                }
            }
            '}' => {
                if depth == 2 {
                    if let Some(s) = start.take() {
                        out.push(text[s..=i].to_string());
                    }
                }
                depth = depth.saturating_sub(1);
            }
            _ => {}
        }
    }
    out
}

fn json_str_field(obj: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let rest = rest.strip_prefix('"')?;
    let end = rest.find('"')?;
    Some(rest[..end].to_string())
}

fn json_u64_field(obj: &str, key: &str) -> Option<u64> {
    let pat = format!("\"{key}\"");
    let at = obj.find(&pat)? + pat.len();
    let rest = obj[at..].trim_start().strip_prefix(':')?.trim_start();
    let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
    digits.parse().ok()
}

// ---------------------------------------------------------------------------
// Per-batch attachment
// ---------------------------------------------------------------------------

/// Per-batch telemetry delta attached to a `BatchReport` when the engine's
/// handle is enabled.  Contains timings, so attaching it makes full-report
/// equality run-dependent — the engine only does so when explicitly enabled.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BatchTelemetry {
    /// Counter and phase deltas accumulated by this batch alone.
    pub delta: TelemetrySnapshot,
}

// ---------------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------------

#[cfg(feature = "telemetry")]
struct Inner {
    counters: [AtomicU64; Counter::ALL.len()],
    phase_nanos: [AtomicU64; Phase::ALL.len()],
    phase_enters: [AtomicU64; Phase::ALL.len()],
}

#[cfg(feature = "telemetry")]
impl Inner {
    fn new() -> Inner {
        Inner {
            counters: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_nanos: std::array::from_fn(|_| AtomicU64::new(0)),
            phase_enters: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

/// Cloneable telemetry handle.  Without the `telemetry` cargo feature this
/// is a unit struct and every method is an empty inline no-op; with it, a
/// disabled handle (the default) costs one `Option` branch per hook.
#[derive(Clone, Default)]
pub struct Telemetry {
    #[cfg(feature = "telemetry")]
    inner: Option<Arc<Inner>>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(if self.is_enabled() {
            "Telemetry(enabled)"
        } else {
            "Telemetry(disabled)"
        })
    }
}

impl Telemetry {
    /// A disabled handle (all hooks are no-ops).
    pub fn disabled() -> Telemetry {
        Telemetry::default()
    }

    /// An enabled handle with fresh accumulators.  Without the `telemetry`
    /// cargo feature this still returns a no-op handle.
    pub fn enabled() -> Telemetry {
        #[cfg(feature = "telemetry")]
        {
            Telemetry {
                inner: Some(Arc::new(Inner::new())),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        Telemetry {}
    }

    /// Enabled iff `DYNTREE_TELEMETRY` is `1` or `true` (checked once per
    /// process) *and* the cargo feature is compiled in.
    pub fn from_env() -> Telemetry {
        #[cfg(feature = "telemetry")]
        {
            use std::sync::OnceLock;
            static WANTED: OnceLock<bool> = OnceLock::new();
            let wanted = *WANTED.get_or_init(|| {
                std::env::var("DYNTREE_TELEMETRY")
                    .map(|v| {
                        let v = v.trim();
                        v == "1" || v.eq_ignore_ascii_case("true")
                    })
                    .unwrap_or(false)
            });
            if wanted {
                return Telemetry::enabled();
            }
        }
        Telemetry::disabled()
    }

    /// Whether this handle records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        #[cfg(feature = "telemetry")]
        {
            self.inner.is_some()
        }
        #[cfg(not(feature = "telemetry"))]
        false
    }

    /// Adds `n` to a counter (relaxed; no-op when disabled).
    #[inline]
    pub fn add(&self, counter: Counter, n: u64) {
        #[cfg(feature = "telemetry")]
        if let Some(inner) = &self.inner {
            inner.counters[counter as usize].fetch_add(n, Ordering::Relaxed);
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = (counter, n);
        }
    }

    /// Adds 1 to a counter.
    #[inline]
    pub fn incr(&self, counter: Counter) {
        self.add(counter, 1);
    }

    /// Enters a phase; time accrues until the returned guard drops.
    #[inline]
    #[must_use = "the span measures until the guard is dropped"]
    pub fn span(&self, phase: Phase) -> SpanGuard {
        #[cfg(feature = "telemetry")]
        {
            SpanGuard {
                active: self
                    .inner
                    .as_ref()
                    .map(|inner| (Arc::clone(inner), phase, Instant::now())),
            }
        }
        #[cfg(not(feature = "telemetry"))]
        {
            let _ = phase;
            SpanGuard {}
        }
    }

    /// Copies the current accumulator values (`None` when disabled).
    pub fn snapshot(&self) -> Option<TelemetrySnapshot> {
        #[cfg(feature = "telemetry")]
        if let Some(inner) = &self.inner {
            let mut snap = TelemetrySnapshot::zeroed();
            for (i, slot) in snap.counters.iter_mut().enumerate() {
                slot.1 = inner.counters[i].load(Ordering::Relaxed);
            }
            for (i, p) in snap.phases.iter_mut().enumerate() {
                p.nanos = inner.phase_nanos[i].load(Ordering::Relaxed);
                p.enters = inner.phase_enters[i].load(Ordering::Relaxed);
            }
            return Some(snap);
        }
        None
    }

    /// Zeroes every accumulator (no-op when disabled).
    pub fn reset(&self) {
        #[cfg(feature = "telemetry")]
        if let Some(inner) = &self.inner {
            for c in &inner.counters {
                c.store(0, Ordering::Relaxed);
            }
            for p in &inner.phase_nanos {
                p.store(0, Ordering::Relaxed);
            }
            for p in &inner.phase_enters {
                p.store(0, Ordering::Relaxed);
            }
        }
    }
}

/// RAII guard returned by [`Telemetry::span`]; accumulates elapsed wall
/// nanos and an enter count into the phase on drop.
pub struct SpanGuard {
    #[cfg(feature = "telemetry")]
    active: Option<(Arc<Inner>, Phase, Instant)>,
}

#[cfg(feature = "telemetry")]
impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some((inner, phase, start)) = self.active.take() {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            inner.phase_nanos[phase as usize].fetch_add(nanos, Ordering::Relaxed);
            inner.phase_enters[phase as usize].fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_snapshot_covers_full_taxonomy() {
        let snap = TelemetrySnapshot::zeroed();
        assert_eq!(snap.counters.len(), Counter::ALL.len());
        assert_eq!(snap.phases.len(), Phase::ALL.len());
        assert_eq!(snap.counter("replacement_searches"), 0);
        assert_eq!(snap.phase("apply").unwrap().parent, None);
        assert_eq!(
            snap.phase("smaller_side").unwrap().parent,
            Some("replacement_search")
        );
        assert_eq!(snap.phase("snapshot_build").unwrap().parent, Some("apply"));
        assert_eq!(snap.counter("snapshots_published"), 0);
        assert_eq!(snap.counter("reader_queries_served"), 0);
        assert_eq!(snap.counter("stale_epoch_reads"), 0);
    }

    #[test]
    fn json_round_trips() {
        let mut snap = TelemetrySnapshot::zeroed();
        snap.counters[0].1 = 42;
        snap.counters[14].1 = 7;
        snap.counters[Counter::ALL.len() - 1].1 = 9;
        snap.phases[0].nanos = 123_456_789;
        snap.phases[0].enters = 3;
        snap.phases[7].nanos = 11;
        snap.phases[7].enters = 1;
        snap.phases[Phase::ALL.len() - 1].nanos = 5;
        snap.phases[Phase::ALL.len() - 1].enters = 2;
        let json = snap.to_json();
        let back = TelemetrySnapshot::parse(&json).expect("round-trip parse");
        assert_eq!(back, snap);
    }

    #[test]
    fn parse_rejects_unknown_counter() {
        let json = r#"{"counters": [{"counter": "bogus", "value": 1}], "phases": []}"#;
        assert!(TelemetrySnapshot::parse(json).is_err());
    }

    #[test]
    fn delta_subtracts_positionally() {
        let mut earlier = TelemetrySnapshot::zeroed();
        earlier.counters[2].1 = 5;
        earlier.phases[1].nanos = 100;
        earlier.phases[1].enters = 2;
        let mut later = earlier.clone();
        later.counters[2].1 = 9;
        later.counters[3].1 = 1;
        later.phases[1].nanos = 150;
        later.phases[1].enters = 3;
        let d = later.delta_since(&earlier);
        assert_eq!(d.counter(Counter::ALL[2].name()), 4);
        assert_eq!(d.counter(Counter::ALL[3].name()), 1);
        let p = d.phase(Phase::ALL[1].name()).unwrap();
        assert_eq!((p.nanos, p.enters), (50, 1));
    }

    #[test]
    fn fingerprint_covers_every_counter() {
        let snap = TelemetrySnapshot::zeroed();
        let fp = snap.counters_fingerprint();
        for c in Counter::ALL {
            assert!(fp.contains(c.name()), "fingerprint missing {}", c.name());
        }
    }

    #[test]
    fn disabled_handle_is_inert() {
        let tel = Telemetry::disabled();
        tel.incr(Counter::ReplacementSearches);
        {
            let _g = tel.span(Phase::Apply);
        }
        assert!(!tel.is_enabled());
        assert!(tel.snapshot().is_none());
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn enabled_handle_accumulates() {
        let tel = Telemetry::enabled();
        assert!(tel.is_enabled());
        tel.add(Counter::ReplacementEdgesScanned, 10);
        tel.incr(Counter::ReplacementEdgesScanned);
        {
            let _apply = tel.span(Phase::Apply);
            let _search = tel.span(Phase::ReplacementSearch);
        }
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("replacement_edges_scanned"), 11);
        assert_eq!(snap.phase("apply").unwrap().enters, 1);
        assert!(
            snap.phase("apply").unwrap().nanos >= snap.phase("replacement_search").unwrap().nanos
        );
        tel.reset();
        let snap = tel.snapshot().unwrap();
        assert_eq!(snap.counter("replacement_edges_scanned"), 0);
        assert_eq!(snap.phase("apply").unwrap().enters, 0);
    }

    #[cfg(feature = "telemetry")]
    #[test]
    fn clones_share_accumulators() {
        let tel = Telemetry::enabled();
        let other = tel.clone();
        other.incr(Counter::ComponentSplits);
        assert_eq!(tel.snapshot().unwrap().counter("component_splits"), 1);
    }
}
