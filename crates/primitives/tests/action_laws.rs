//! Property tests for the [`Action`] laws (DESIGN.md §13): `compose` is an
//! associative monoid with `IDENTITY`, composing tags equals applying them
//! innermost-first, and acting on an aggregate distributes over `combine`.
//!
//! Inputs are drawn well inside the `i64` range because the shipped actions
//! saturate exactly like the shipped monoids do — the laws are exact only
//! away from the boundary (the boundary itself is pinned by unit tests in
//! `algebra.rs`).

use dyntree_primitives::algebra::{
    Action, ActionOf, AddConst, AffineSum, Agg, I64Sum, MaxEdge, Monoid, SumMinMax, WeightedId,
};
use proptest::prelude::*;
use proptest::TestCaseError;

const B: i64 = 1 << 20;

/// Folds `weights` into an `Agg` the way a forest would (no phantoms).
fn fold<M: Monoid>(weights: &[M::Weight]) -> Agg<M> {
    weights
        .iter()
        .fold(Agg::IDENTITY, |acc, &w| Agg::combine(acc, Agg::vertex(w)))
}

/// `AddConst`/`AffineSum` implement `Action<_>` for several monoids, so bare
/// method calls are ambiguous; these helpers pin the monoid via turbofish.
fn compose<M: Monoid>(f: ActionOf<M>, g: ActionOf<M>) -> ActionOf<M> {
    <ActionOf<M> as Action<M>>::compose(f, g)
}
fn act_w<M: Monoid>(f: ActionOf<M>, w: M::Weight) -> M::Weight {
    <ActionOf<M> as Action<M>>::act_weight(f, w)
}
fn act_v<M: Monoid>(f: ActionOf<M>, v: M::Value, count: u64) -> M::Value {
    <ActionOf<M> as Action<M>>::act_value(f, v, count)
}
fn ident<M: Monoid>() -> ActionOf<M> {
    <ActionOf<M> as Action<M>>::IDENTITY
}

/// One lawfulness pass for a single `(f, g, h, weights)` draw.
fn check_laws<M: Monoid>(
    f: ActionOf<M>,
    g: ActionOf<M>,
    h: ActionOf<M>,
    ws: &[M::Weight],
) -> Result<(), TestCaseError>
where
    M::Value: std::fmt::Debug,
{
    // monoid laws
    prop_assert_eq!(compose::<M>(f, ident::<M>()), f);
    prop_assert_eq!(compose::<M>(ident::<M>(), f), f);
    prop_assert_eq!(
        compose::<M>(f, compose::<M>(g, h)),
        compose::<M>(compose::<M>(f, g), h)
    );
    // action law on weights: compose-then-act == act innermost-first
    for &w in ws {
        prop_assert_eq!(
            act_w::<M>(compose::<M>(f, g), w),
            act_w::<M>(f, act_w::<M>(g, w))
        );
    }
    // distributivity: act-then-fold == fold-then-act
    let folded = fold::<M>(ws);
    let acted: Vec<M::Weight> = ws.iter().map(|&w| act_w::<M>(f, w)).collect();
    let refolded = fold::<M>(&acted);
    prop_assert_eq!(act_v::<M>(f, folded.value, folded.count), refolded.value);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn add_const_is_a_lawful_action(
        fgh in (-B..B, -B..B, -B..B),
        ws in proptest::collection::vec(-B..B, 0..24),
    ) {
        check_laws::<SumMinMax>(AddConst(fgh.0), AddConst(fgh.1), AddConst(fgh.2), &ws)?;
    }

    #[test]
    fn affine_sum_is_a_lawful_action(
        muls in (-4i64..5, -4i64..5, -4i64..5),
        adds in (-B..B, -B..B, -B..B),
        ws in proptest::collection::vec(-B..B, 0..24),
    ) {
        let f = AffineSum { mul: muls.0, add: adds.0 };
        let g = AffineSum { mul: muls.1, add: adds.1 };
        let h = AffineSum { mul: muls.2, add: adds.2 };
        check_laws::<I64Sum>(f, g, h, &ws)?;
    }

    #[test]
    fn add_const_preserves_the_argmax_carrier(
        fgh in (-B..B, -B..B, -B..B),
        raw in proptest::collection::vec((-B..B, 0usize..64), 1..24),
    ) {
        let ws: Vec<WeightedId> = raw
            .iter()
            .map(|&(weight, id)| WeightedId { weight, id })
            .collect();
        check_laws::<MaxEdge>(AddConst(fgh.0), AddConst(fgh.1), AddConst(fgh.2), &ws)?;
        // A uniform shift moves every candidate by the same amount, so the
        // winning carrier id must not change — the exact property the
        // dynamic-MST corridor decay relies on.
        let f = AddConst(fgh.0);
        let before = fold::<MaxEdge>(&ws);
        let acted: Vec<WeightedId> = ws.iter().map(|&w| act_w::<MaxEdge>(f, w)).collect();
        let after = fold::<MaxEdge>(&acted);
        prop_assert_eq!(after.value.id, before.value.id);
        // the sentinel stays a sentinel through any action
        prop_assert_eq!(act_w::<MaxEdge>(f, WeightedId::NONE), WeightedId::NONE);
    }
}
