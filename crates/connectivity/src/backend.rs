//! The [`SpanningBackend`] trait: what the connectivity engine needs from a
//! dynamic-tree structure, implemented here for every forest the workspace
//! ships.
//!
//! The engine owns the decision of *which* edges form the spanning forest;
//! the backend only ever sees link/cut operations that keep it a forest, so
//! any structure with link, cut and connectivity queries qualifies.  Optional
//! capabilities (component aggregates, vertex weights) have defaulted
//! methods; the engine falls back to its own tree-adjacency walks when a
//! backend opts out.

use dyntree_euler::{BatchEulerForest, EulerTourForest};
use dyntree_linkcut::LinkCutForest;
use dyntree_naive::NaiveForest;
use dyntree_seqs::DynSequence;
use ufo_forest::{TopologyForest, UfoForest};

/// A dynamic-tree structure able to host the spanning forest of a
/// [`DynConnectivity`](crate::DynConnectivity) engine.
///
/// Queries take `&mut self` because several backends (link-cut trees, Euler
/// tour trees) restructure themselves on reads.
pub trait SpanningBackend {
    /// Name used in benchmark output and diagnostics.
    const NAME: &'static str;

    /// Creates a forest of `n` isolated vertices.
    fn new(n: usize) -> Self;

    /// Inserts forest edge `(u, v)`.  The engine only calls this for edges
    /// that join two distinct trees; returns whether the backend accepted.
    fn link(&mut self, u: usize, v: usize) -> bool;

    /// Removes forest edge `(u, v)`; returns whether the edge was present.
    fn cut(&mut self, u: usize, v: usize) -> bool;

    /// Whether `u` and `v` are in the same tree.
    fn connected(&mut self, u: usize, v: usize) -> bool;

    /// Sets the weight of vertex `v` (ignored by unweighted backends).
    fn set_weight(&mut self, v: usize, w: i64) {
        let _ = (v, w);
    }

    /// Number of vertices in `v`'s tree, when the backend can answer faster
    /// than a forest walk.
    fn component_size(&mut self, v: usize) -> Option<u64> {
        let _ = v;
        None
    }

    /// Sum of vertex weights in `v`'s tree, when supported.
    fn component_sum(&mut self, v: usize) -> Option<i64> {
        let _ = v;
        None
    }

    /// Heap bytes owned by the backend (0 when not tracked).
    fn memory_bytes(&self) -> usize {
        0
    }
}

impl SpanningBackend for UfoForest {
    const NAME: &'static str = "ufo";

    fn new(n: usize) -> Self {
        UfoForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        UfoForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        UfoForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        UfoForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        UfoForest::set_weight(self, v, w);
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(UfoForest::component_size(self, v))
    }
    fn component_sum(&mut self, v: usize) -> Option<i64> {
        Some(self.engine().component_aggregate(v).sum)
    }
    fn memory_bytes(&self) -> usize {
        UfoForest::memory_bytes(self)
    }
}

impl SpanningBackend for TopologyForest {
    const NAME: &'static str = "topology";

    fn new(n: usize) -> Self {
        TopologyForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        TopologyForest::set_weight(self, v, w);
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(TopologyForest::component_size(self, v))
    }
    fn memory_bytes(&self) -> usize {
        TopologyForest::memory_bytes(self)
    }
}

impl SpanningBackend for LinkCutForest {
    const NAME: &'static str = "linkcut";

    fn new(n: usize) -> Self {
        LinkCutForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        LinkCutForest::set_weight(self, v, w);
    }
    fn memory_bytes(&self) -> usize {
        LinkCutForest::memory_bytes(self)
    }
}

impl<S: DynSequence> SpanningBackend for EulerTourForest<S> {
    const NAME: &'static str = "euler";

    fn new(n: usize) -> Self {
        EulerTourForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        EulerTourForest::set_weight(self, v, w);
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(EulerTourForest::component_size(self, v) as u64)
    }
    fn component_sum(&mut self, v: usize) -> Option<i64> {
        Some(EulerTourForest::component_sum(self, v))
    }
    fn memory_bytes(&self) -> usize {
        EulerTourForest::memory_bytes(self)
    }
}

impl<S: DynSequence> SpanningBackend for BatchEulerForest<S> {
    const NAME: &'static str = "euler-batch";

    fn new(n: usize) -> Self {
        BatchEulerForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().link(u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().cut(u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().connected(u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        self.forest_mut().set_weight(v, w);
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(self.forest_mut().component_size(v) as u64)
    }
    fn component_sum(&mut self, v: usize) -> Option<i64> {
        Some(self.forest_mut().component_sum(v))
    }
    fn memory_bytes(&self) -> usize {
        BatchEulerForest::memory_bytes(self)
    }
}

impl SpanningBackend for NaiveForest {
    const NAME: &'static str = "naive";

    fn new(n: usize) -> Self {
        NaiveForest::new(n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) {
        NaiveForest::set_weight(self, v, w);
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(NaiveForest::component_size(self, v) as u64)
    }
    fn component_sum(&mut self, v: usize) -> Option<i64> {
        Some(
            NaiveForest::component(self, v)
                .into_iter()
                .map(|x| self.weight(x))
                .sum(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyntree_seqs::TreapSequence;

    fn exercise<B: SpanningBackend>() {
        let mut b = B::new(4);
        assert!(b.link(0, 1));
        assert!(b.link(1, 2));
        assert!(b.connected(0, 2));
        assert!(!b.connected(0, 3));
        assert!(b.cut(0, 1));
        assert!(!b.connected(0, 2));
        if let Some(s) = b.component_size(1) {
            assert_eq!(s, 2);
        }
    }

    #[test]
    fn every_forest_implements_the_backend() {
        exercise::<UfoForest>();
        exercise::<TopologyForest>();
        exercise::<LinkCutForest>();
        exercise::<EulerTourForest<TreapSequence>>();
        exercise::<BatchEulerForest<TreapSequence>>();
        exercise::<NaiveForest>();
    }
}
