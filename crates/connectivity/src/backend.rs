//! The [`SpanningBackend`] trait: what the connectivity engine needs from a
//! dynamic-tree structure, implemented here for every forest the workspace
//! ships.
//!
//! The engine owns the decision of *which* edges form the spanning forest;
//! the backend only ever sees link/cut operations that keep it a forest, so
//! any structure with link, cut and connectivity queries qualifies.  Weighted
//! capabilities are part of the contract: each backend names the
//! [`CommutativeMonoid`] its vertex weights aggregate under (`Weights`) and
//! answers component / spanning-tree-path aggregates as `Agg<Weights>` when
//! it can.  `set_weight` returns a support flag, so the engine can
//! distinguish "aggregate is zero" from "backend is unweighted" instead of
//! silently returning wrong answers.

use dyntree_euler::{BatchEulerForest, EulerTourForest};
use dyntree_linkcut::LinkCutForest;
use dyntree_naive::NaiveForest;
use dyntree_primitives::algebra::{ActionOf, Agg, CommutativeMonoid, SumMinMax, WeightOf};
use dyntree_primitives::ops::EdgeKind;
use dyntree_seqs::DynSequence;
use ufo_forest::{TopologyForest, UfoForest};

/// A dynamic-tree structure able to host the spanning forest of a
/// [`DynConnectivity`](crate::DynConnectivity) engine.
///
/// Queries take `&mut self` because several backends (link-cut trees, Euler
/// tour trees) restructure themselves on reads; backends whose queries are
/// genuinely read-only can additionally expose
/// [`connected_snapshot`](Self::connected_snapshot), which the parallel
/// batch pre-pass probes from multiple threads at once.  Backends must be
/// `Send + Sync` so a shared reference can cross into the pool during that
/// pre-pass (all in-tree backends are plain owned data, so this is
/// automatic).
pub trait SpanningBackend: Send + Sync {
    /// The monoid the backend's vertex weights aggregate under.  Unweighted
    /// backends still pick one (conventionally [`SumMinMax`]) but report
    /// `WEIGHTED = false` and decline `set_weight`.
    type Weights: CommutativeMonoid;

    /// Name used in benchmark output and diagnostics.
    const NAME: &'static str;

    /// Whether the backend maintains vertex weights at all.  When `false`,
    /// `set_weight` returns `false` and the aggregate queries return `None`.
    const WEIGHTED: bool;

    /// Whether [`path_agg`](Self::path_agg) can answer (exactly).  `false`
    /// for the ternarized topology backend, whose spanning-tree path answers
    /// would be inexact at interior degree ≥ 4.  The engine uses this to
    /// report [`UnsupportedQuery`](dyntree_primitives::ops::GraphError)
    /// instead of conflating "unsupported" with "disconnected".
    const SUPPORTS_PATH_AGG: bool;

    /// Whether [`component_agg`](Self::component_agg) can answer.  `false`
    /// for link-cut trees, which aggregate preferred paths, not whole trees.
    const SUPPORTS_COMPONENT_AGG: bool;

    /// Whether [`connected_snapshot`](Self::connected_snapshot) answers
    /// (`Some`).  The batch layer runs its parallel insert pre-pass only
    /// when this is `true`: without snapshot probes the chunk-local DSU
    /// certificates are a strict subset of what the sequential walk's own
    /// prefix DSU already proves, so the fan-out would be pure overhead.
    const SNAPSHOT_QUERIES: bool = false;

    /// Whether [`path_apply`](Self::path_apply) can answer.  `true` only for
    /// backends whose path access exposes the path as one lazily-taggable
    /// unit (link-cut trees) or that walk it explicitly (the naive oracle);
    /// the contraction-based backends would need lazy tags threaded through
    /// their cluster merge trees, which they do not have (DESIGN.md §13).
    const SUPPORTS_PATH_APPLY: bool = false;

    /// Whether [`component_apply`](Self::component_apply) can answer.
    /// `true` for Euler tour trees (a component is one sequence, so the tag
    /// lands on its root in `O(log n)`) and the naive oracle.
    const SUPPORTS_COMPONENT_APPLY: bool = false;

    /// Whether [`subtree_apply`](Self::subtree_apply) can answer.  Currently
    /// only the naive oracle: Euler tours expose a subtree as a contiguous
    /// range but the range endpoints are edge arcs, not yet split-taggable
    /// through the backend surface.
    const SUPPORTS_SUBTREE_APPLY: bool = false;

    /// Creates a forest of `n` isolated vertices.
    fn new(n: usize) -> Self;

    /// Appends isolated vertices until the forest has `n` of them (a smaller
    /// `n` is a no-op).  The engine calls this for `AddVertices` ops, so
    /// every backend must support in-place growth.
    fn ensure_vertices(&mut self, n: usize);

    /// Inserts forest edge `(u, v)`.  The engine only calls this for edges
    /// that join two distinct trees; returns whether the backend accepted.
    fn link(&mut self, u: usize, v: usize) -> bool;

    /// Removes forest edge `(u, v)`; returns whether the edge was present.
    fn cut(&mut self, u: usize, v: usize) -> bool;

    /// Whether `u` and `v` are in the same tree.
    fn connected(&mut self, u: usize, v: usize) -> bool;

    /// Read-only connectivity probe against the current state, for backends
    /// whose queries do not restructure the tree.  `None` means "cannot
    /// answer without `&mut self`" (splay-based structures), and callers
    /// fall back to [`connected`](Self::connected).
    ///
    /// The batch layer calls this concurrently from pool workers during the
    /// insert pre-pass, always strictly before any mutation of the same
    /// batch, so implementations only need plain shared-read safety.
    fn connected_snapshot(&self, u: usize, v: usize) -> Option<bool> {
        let _ = (u, v);
        None
    }

    /// Read-only probe of the current spanning forest for the delete
    /// pre-pass: `Some(EdgeKind::Tree)` when `(u, v)` is an edge of the
    /// backend's forest, `Some(EdgeKind::NonTree)` when it is not (the
    /// caller combines this with its own edge registry to tell a live
    /// non-tree edge from a missing one), and `None` when the backend cannot
    /// answer without `&mut self` (splay-based structures, which also report
    /// [`SNAPSHOT_QUERIES`](Self::SNAPSHOT_QUERIES)` = false`).
    ///
    /// Like [`connected_snapshot`](Self::connected_snapshot), this is probed
    /// concurrently from pool workers, always strictly before any mutation
    /// of the same batch, so implementations only need plain shared-read
    /// safety.
    fn edge_kind_snapshot(&self, u: usize, v: usize) -> Option<EdgeKind> {
        let _ = (u, v);
        None
    }

    /// Sets the weight of vertex `v`.  Returns whether the backend actually
    /// recorded it; the default declines, so an unweighted backend can never
    /// silently swallow weights.
    fn set_weight(&mut self, v: usize, w: WeightOf<Self::Weights>) -> bool {
        let _ = (v, w);
        false
    }

    /// Returns the current weight of vertex `v`, or `None` when the backend
    /// is unweighted.  `&mut self` because splay-based backends may
    /// restructure (or push pending lazy tags) to read a single vertex.  The
    /// serving layer uses this to re-base its shadow weight table after bulk
    /// updates, whose effects cannot be replayed from the op stream alone.
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<Self::Weights>> {
        let _ = v;
        None
    }

    /// Applies `act` to every vertex weight on the spanning-tree path from
    /// `u` to `v` (inclusive; `u == v` touches one vertex) and returns the
    /// number of vertices updated, or `None` when `u` and `v` are
    /// disconnected.  Only called when
    /// [`SUPPORTS_PATH_APPLY`](Self::SUPPORTS_PATH_APPLY) is `true`; the
    /// default declines.
    fn path_apply(&mut self, u: usize, v: usize, act: ActionOf<Self::Weights>) -> Option<u64> {
        let _ = (u, v, act);
        None
    }

    /// Applies `act` to every vertex weight in `v`'s tree and returns the
    /// number of vertices updated (at least 1).  Only called when
    /// [`SUPPORTS_COMPONENT_APPLY`](Self::SUPPORTS_COMPONENT_APPLY) is
    /// `true`; the default declines with `None`.
    fn component_apply(&mut self, v: usize, act: ActionOf<Self::Weights>) -> Option<u64> {
        let _ = (v, act);
        None
    }

    /// Applies `act` to every vertex weight in the subtree of `v` away from
    /// `parent` and returns the number of vertices updated, or `None` when
    /// `(v, parent)` is not a forest edge.  Only called when
    /// [`SUPPORTS_SUBTREE_APPLY`](Self::SUPPORTS_SUBTREE_APPLY) is `true`.
    fn subtree_apply(
        &mut self,
        v: usize,
        parent: usize,
        act: ActionOf<Self::Weights>,
    ) -> Option<u64> {
        let _ = (v, parent, act);
        None
    }

    /// Number of vertices in `v`'s tree, when the backend can answer faster
    /// than a forest walk.
    fn component_size(&mut self, v: usize) -> Option<u64> {
        let _ = v;
        None
    }

    /// Monoid aggregate over `v`'s whole tree, when supported.
    fn component_agg(&mut self, v: usize) -> Option<Agg<Self::Weights>> {
        let _ = v;
        None
    }

    /// Monoid aggregate over the spanning-tree path from `u` to `v`, when
    /// supported.  Callers must check connectivity first; `None` means
    /// "unsupported or disconnected".
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<Self::Weights>> {
        let _ = (u, v);
        None
    }

    /// Writes one representative id per vertex into `out` — values that are
    /// equal iff the vertices are in the same tree — and returns `true`.
    /// The default declines with `false` (splay-based backends would need
    /// `&mut self` to walk themselves), and the engine falls back to a BFS
    /// over its own tree adjacency; either way the engine renumbers the raw
    /// representatives into canonical dense labels, so implementations may
    /// emit any ids they like (root vertex, top-cluster id, ...).
    ///
    /// Read-only by contract: the serving layer's snapshot builder calls it
    /// while reader threads hold older snapshots.
    fn export_components(&self, out: &mut Vec<usize>) -> bool {
        let _ = out;
        false
    }

    /// Heap bytes owned by the backend (0 when not tracked).
    fn memory_bytes(&self) -> usize {
        0
    }
}

impl<M: CommutativeMonoid> SpanningBackend for UfoForest<M> {
    type Weights = M;
    const NAME: &'static str = "ufo";
    const WEIGHTED: bool = true;
    const SUPPORTS_PATH_AGG: bool = true;
    const SUPPORTS_COMPONENT_AGG: bool = true;
    const SNAPSHOT_QUERIES: bool = true;

    fn new(n: usize) -> Self {
        UfoForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        UfoForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        UfoForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        UfoForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        UfoForest::connected(self, u, v)
    }
    fn connected_snapshot(&self, u: usize, v: usize) -> Option<bool> {
        Some(UfoForest::connected(self, u, v))
    }
    fn edge_kind_snapshot(&self, u: usize, v: usize) -> Option<EdgeKind> {
        Some(if UfoForest::has_edge(self, u, v) {
            EdgeKind::Tree
        } else {
            EdgeKind::NonTree
        })
    }
    fn set_weight(&mut self, v: usize, w: WeightOf<M>) -> bool {
        UfoForest::set_weight(self, v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<M>> {
        Some(UfoForest::weight(self, v))
    }
    // The bulk applies stay at their declining defaults: cluster aggregates
    // in the contraction engine have no lazy-tag channel (DESIGN.md §13).
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(UfoForest::component_size(self, v))
    }
    fn component_agg(&mut self, v: usize) -> Option<Agg<M>> {
        Some(UfoForest::component_aggregate(self, v))
    }
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        UfoForest::path_aggregate(self, u, v)
    }
    fn export_components(&self, out: &mut Vec<usize>) -> bool {
        let eng = self.engine();
        out.clear();
        out.extend((0..self.len()).map(|v| eng.top_cluster(v)));
        true
    }
    fn memory_bytes(&self) -> usize {
        UfoForest::memory_bytes(self)
    }
}

impl<M: CommutativeMonoid> SpanningBackend for TopologyForest<M> {
    type Weights = M;
    const NAME: &'static str = "topology";
    const WEIGHTED: bool = true;
    // Ternarized path answers are inexact at interior degree ≥ 4, so the
    // engine must treat path aggregates as unsupported here.
    const SUPPORTS_PATH_AGG: bool = false;
    const SUPPORTS_COMPONENT_AGG: bool = true;
    const SNAPSHOT_QUERIES: bool = true;

    fn new(n: usize) -> Self {
        TopologyForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        TopologyForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        TopologyForest::connected(self, u, v)
    }
    fn connected_snapshot(&self, u: usize, v: usize) -> Option<bool> {
        Some(TopologyForest::connected(self, u, v))
    }
    fn edge_kind_snapshot(&self, u: usize, v: usize) -> Option<EdgeKind> {
        Some(if TopologyForest::has_edge(self, u, v) {
            EdgeKind::Tree
        } else {
            EdgeKind::NonTree
        })
    }
    fn set_weight(&mut self, v: usize, w: WeightOf<M>) -> bool {
        TopologyForest::set_weight(self, v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<M>> {
        Some(TopologyForest::weight(self, v))
    }
    // Bulk applies decline, like ufo: the ternarized contraction engine has
    // no lazy-tag channel, and a component-wide action would also have to
    // skip phantom ternarization slots.
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(TopologyForest::component_size(self, v))
    }
    fn component_agg(&mut self, v: usize) -> Option<Agg<M>> {
        Some(TopologyForest::component_aggregate(self, v))
    }
    // path_agg deliberately stays at the unsupported default: ternarized path
    // aggregates are inexact for interior vertices of degree ≥ 4 (see
    // `TopologyForest::path_sum`), and the engine must not serve approximate
    // answers for a general graph's spanning-tree paths.
    fn export_components(&self, out: &mut Vec<usize>) -> bool {
        let eng = self.engine();
        out.clear();
        out.extend((0..self.len()).map(|v| eng.top_cluster(v)));
        true
    }
    fn memory_bytes(&self) -> usize {
        TopologyForest::memory_bytes(self)
    }
}

impl<M: CommutativeMonoid> SpanningBackend for LinkCutForest<M> {
    type Weights = M;
    const NAME: &'static str = "linkcut";
    const WEIGHTED: bool = true;
    const SUPPORTS_PATH_AGG: bool = true;
    // Link-cut trees aggregate preferred paths, not whole trees (Table 1's
    // "no subtree queries" row).
    const SUPPORTS_COMPONENT_AGG: bool = false;
    // Exposing the u–v path as one splay tree makes bulk path updates an
    // O(log n) lazy tag on its root.
    const SUPPORTS_PATH_APPLY: bool = true;
    // SNAPSHOT_QUERIES stays false: splaying restructures on every access,
    // so `connected_snapshot` / `edge_kind_snapshot` keep their declining
    // defaults and the batch layers take the sequential walk.

    fn new(n: usize) -> Self {
        LinkCutForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        LinkCutForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        LinkCutForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: WeightOf<M>) -> bool {
        LinkCutForest::set_weight(self, v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<M>> {
        Some(LinkCutForest::weight(self, v))
    }
    // component_agg stays `None`: link-cut trees aggregate preferred paths,
    // not whole trees (Table 1's "no subtree queries" row).
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        LinkCutForest::path_aggregate(self, u, v)
    }
    fn path_apply(&mut self, u: usize, v: usize, act: ActionOf<M>) -> Option<u64> {
        LinkCutForest::path_apply(self, u, v, act)
    }
    fn memory_bytes(&self) -> usize {
        LinkCutForest::memory_bytes(self)
    }
}

impl<M: CommutativeMonoid, S: DynSequence<M>> SpanningBackend for EulerTourForest<S, M> {
    type Weights = M;
    const NAME: &'static str = "euler";
    const WEIGHTED: bool = true;
    const SUPPORTS_PATH_AGG: bool = true;
    const SUPPORTS_COMPONENT_AGG: bool = true;
    // A component is one Euler tour sequence: the action is a lazy tag on
    // its root, O(log n).
    const SUPPORTS_COMPONENT_APPLY: bool = true;

    fn new(n: usize) -> Self {
        EulerTourForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        EulerTourForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        EulerTourForest::connected(self, u, v)
    }
    fn set_weight(&mut self, v: usize, w: WeightOf<M>) -> bool {
        EulerTourForest::set_weight(self, v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<M>> {
        Some(EulerTourForest::weight(self, v))
    }
    fn component_apply(&mut self, v: usize, act: ActionOf<M>) -> Option<u64> {
        Some(EulerTourForest::component_apply(self, v, act))
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(EulerTourForest::component_size(self, v) as u64)
    }
    fn component_agg(&mut self, v: usize) -> Option<Agg<M>> {
        Some(EulerTourForest::component_aggregate(self, v))
    }
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        // O(component) fallback walk; see `EulerTourForest::path_aggregate`.
        EulerTourForest::path_aggregate(self, u, v)
    }
    fn memory_bytes(&self) -> usize {
        EulerTourForest::memory_bytes(self)
    }
}

impl<S: DynSequence<SumMinMax>> SpanningBackend for BatchEulerForest<S> {
    type Weights = SumMinMax;
    const NAME: &'static str = "euler-batch";
    const WEIGHTED: bool = true;
    const SUPPORTS_PATH_AGG: bool = true;
    const SUPPORTS_COMPONENT_AGG: bool = true;
    const SUPPORTS_COMPONENT_APPLY: bool = true;

    fn new(n: usize) -> Self {
        BatchEulerForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        BatchEulerForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().link(u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().cut(u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        self.forest_mut().connected(u, v)
    }
    fn set_weight(&mut self, v: usize, w: i64) -> bool {
        self.forest_mut().set_weight(v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<i64> {
        Some(self.forest().weight(v))
    }
    fn component_apply(&mut self, v: usize, act: ActionOf<SumMinMax>) -> Option<u64> {
        Some(self.forest_mut().component_apply(v, act))
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(self.forest_mut().component_size(v) as u64)
    }
    fn component_agg(&mut self, v: usize) -> Option<Agg<SumMinMax>> {
        Some(self.forest_mut().component_aggregate(v))
    }
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<SumMinMax>> {
        self.forest_mut().path_aggregate(u, v)
    }
    fn memory_bytes(&self) -> usize {
        BatchEulerForest::memory_bytes(self)
    }
}

impl<M: CommutativeMonoid> SpanningBackend for NaiveForest<M> {
    type Weights = M;
    const NAME: &'static str = "naive";
    const WEIGHTED: bool = true;
    const SUPPORTS_PATH_AGG: bool = true;
    const SUPPORTS_COMPONENT_AGG: bool = true;
    const SNAPSHOT_QUERIES: bool = true;
    // The oracle walks vertex lists, so it supports every bulk apply — it is
    // the differential-testing reference for all of them.
    const SUPPORTS_PATH_APPLY: bool = true;
    const SUPPORTS_COMPONENT_APPLY: bool = true;
    const SUPPORTS_SUBTREE_APPLY: bool = true;

    fn new(n: usize) -> Self {
        NaiveForest::new(n)
    }
    fn ensure_vertices(&mut self, n: usize) {
        NaiveForest::ensure_vertices(self, n)
    }
    fn link(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::link(self, u, v)
    }
    fn cut(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::cut(self, u, v)
    }
    fn connected(&mut self, u: usize, v: usize) -> bool {
        NaiveForest::connected(self, u, v)
    }
    fn connected_snapshot(&self, u: usize, v: usize) -> Option<bool> {
        Some(NaiveForest::connected(self, u, v))
    }
    fn edge_kind_snapshot(&self, u: usize, v: usize) -> Option<EdgeKind> {
        Some(if NaiveForest::has_edge(self, u, v) {
            EdgeKind::Tree
        } else {
            EdgeKind::NonTree
        })
    }
    fn set_weight(&mut self, v: usize, w: WeightOf<M>) -> bool {
        NaiveForest::set_weight(self, v, w);
        true
    }
    fn vertex_weight(&mut self, v: usize) -> Option<WeightOf<M>> {
        Some(NaiveForest::weight(self, v))
    }
    fn path_apply(&mut self, u: usize, v: usize, act: ActionOf<M>) -> Option<u64> {
        NaiveForest::path_apply(self, u, v, act)
    }
    fn component_apply(&mut self, v: usize, act: ActionOf<M>) -> Option<u64> {
        Some(NaiveForest::component_apply(self, v, act))
    }
    fn subtree_apply(&mut self, v: usize, parent: usize, act: ActionOf<M>) -> Option<u64> {
        NaiveForest::subtree_apply(self, v, parent, act)
    }
    fn component_size(&mut self, v: usize) -> Option<u64> {
        Some(NaiveForest::component_size(self, v) as u64)
    }
    fn component_agg(&mut self, v: usize) -> Option<Agg<M>> {
        Some(NaiveForest::component_aggregate(self, v))
    }
    fn path_agg(&mut self, u: usize, v: usize) -> Option<Agg<M>> {
        NaiveForest::path_aggregate(self, u, v)
    }
    fn export_components(&self, out: &mut Vec<usize>) -> bool {
        NaiveForest::component_labels(self, out);
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dyntree_seqs::TreapSequence;

    fn exercise<B: SpanningBackend>() {
        let mut b = B::new(4);
        assert!(b.link(0, 1));
        assert!(b.link(1, 2));
        assert!(b.connected(0, 2));
        assert!(!b.connected(0, 3));
        assert!(b.cut(0, 1));
        assert!(!b.connected(0, 2));
        if let Some(s) = b.component_size(1) {
            assert_eq!(s, 2);
        }
    }

    fn exercise_weighted<B: SpanningBackend<Weights = SumMinMax>>() {
        let mut b = B::new(4);
        b.link(0, 1);
        b.link(1, 2);
        let recorded = b.set_weight(1, 7);
        assert_eq!(
            recorded,
            B::WEIGHTED,
            "{}: set_weight flag must match WEIGHTED",
            B::NAME
        );
        if let Some(agg) = b.component_agg(0) {
            assert_eq!(agg.sum, 7);
            assert_eq!(agg.count, 3);
        }
        if let Some(agg) = b.path_agg(0, 2) {
            assert_eq!(agg.sum, 7);
            assert_eq!(agg.edges, 2);
            assert_eq!(agg.max, 7);
        }
        assert!(
            b.path_agg(0, 3).is_none(),
            "{}: disconnected path must be None",
            B::NAME
        );
    }

    fn exercise_bulk_applies<B: SpanningBackend<Weights = SumMinMax>>() {
        use dyntree_primitives::algebra::AddConst;
        let mut b = B::new(5);
        b.link(0, 1);
        b.link(1, 2);
        b.link(3, 4);
        let mut expect = [0i64; 5];
        for (v, w) in expect.iter_mut().enumerate() {
            b.set_weight(v, v as i64);
            *w = v as i64;
        }
        let r = b.path_apply(0, 2, AddConst(10));
        assert_eq!(
            r.is_some(),
            B::SUPPORTS_PATH_APPLY,
            "{}: path_apply answers iff advertised",
            B::NAME
        );
        if B::SUPPORTS_PATH_APPLY {
            assert_eq!(r, Some(3), "{}", B::NAME);
            for w in expect.iter_mut().take(3) {
                *w += 10;
            }
            assert_eq!(
                b.path_apply(0, 3, AddConst(1)),
                None,
                "{}: disconnected pair is None",
                B::NAME
            );
            assert_eq!(
                b.path_apply(2, 2, AddConst(5)),
                Some(1),
                "{}: single-vertex path",
                B::NAME
            );
            expect[2] += 5;
        }
        let r = b.component_apply(4, AddConst(100));
        assert_eq!(
            r.is_some(),
            B::SUPPORTS_COMPONENT_APPLY,
            "{}: component_apply answers iff advertised",
            B::NAME
        );
        if B::SUPPORTS_COMPONENT_APPLY {
            assert_eq!(r, Some(2), "{}", B::NAME);
            expect[3] += 100;
            expect[4] += 100;
        }
        let r = b.subtree_apply(1, 0, AddConst(1000));
        assert_eq!(
            r.is_some(),
            B::SUPPORTS_SUBTREE_APPLY,
            "{}: subtree_apply answers iff advertised",
            B::NAME
        );
        if B::SUPPORTS_SUBTREE_APPLY {
            assert_eq!(r, Some(2), "{}", B::NAME);
            expect[1] += 1000;
            expect[2] += 1000;
            assert_eq!(
                b.subtree_apply(0, 2, AddConst(1)),
                None,
                "{}: not a forest edge",
                B::NAME
            );
        }
        if B::WEIGHTED {
            for (v, &w) in expect.iter().enumerate() {
                assert_eq!(b.vertex_weight(v), Some(w), "{}: vertex {v}", B::NAME);
            }
            if let Some(agg) = b.component_agg(0) {
                assert_eq!(agg.sum, expect[0] + expect[1] + expect[2], "{}", B::NAME);
            }
            if let Some(agg) = b.path_agg(0, 2) {
                assert_eq!(agg.sum, expect[0] + expect[1] + expect[2], "{}", B::NAME);
            }
        }
    }

    fn exercise_growth<B: SpanningBackend>() {
        let mut b = B::new(2);
        assert!(b.link(0, 1), "{}", B::NAME);
        b.ensure_vertices(5);
        assert!(b.connected(0, 1), "{}: old edge survives growth", B::NAME);
        assert!(!b.connected(0, 4), "{}: new vertex isolated", B::NAME);
        assert!(b.link(1, 4), "{}: link to grown vertex", B::NAME);
        assert!(b.connected(0, 4), "{}", B::NAME);
        if let Some(s) = b.component_size(4) {
            assert_eq!(s, 3, "{}", B::NAME);
        }
        assert!(b.cut(1, 4), "{}", B::NAME);
        assert!(!b.connected(0, 4), "{}", B::NAME);
        b.ensure_vertices(3); // shrinking is a no-op
        assert!(b.connected(0, 1), "{}", B::NAME);
    }

    #[test]
    fn every_backend_supports_growth() {
        exercise_growth::<UfoForest>();
        exercise_growth::<TopologyForest>();
        exercise_growth::<LinkCutForest>();
        exercise_growth::<EulerTourForest<TreapSequence>>();
        exercise_growth::<BatchEulerForest<TreapSequence>>();
        exercise_growth::<NaiveForest>();
    }

    #[test]
    fn growth_from_empty_forest() {
        fn go<B: SpanningBackend>() {
            let mut b = B::new(0);
            b.ensure_vertices(3);
            assert!(b.link(0, 2), "{}", B::NAME);
            assert!(b.connected(0, 2), "{}", B::NAME);
            assert!(!b.connected(0, 1), "{}", B::NAME);
        }
        go::<UfoForest>();
        go::<TopologyForest>();
        go::<LinkCutForest>();
        go::<EulerTourForest<TreapSequence>>();
        go::<BatchEulerForest<TreapSequence>>();
        go::<NaiveForest>();
    }

    #[test]
    fn grown_vertices_carry_weights() {
        fn go<B: SpanningBackend<Weights = SumMinMax>>() {
            let mut b = B::new(1);
            b.ensure_vertices(3);
            b.link(0, 1);
            b.link(1, 2);
            assert!(b.set_weight(2, 9), "{}", B::NAME);
            if let Some(agg) = b.component_agg(0) {
                assert_eq!(agg.sum, 9, "{}", B::NAME);
                assert_eq!(agg.count, 3, "{}", B::NAME);
            }
            if let Some(agg) = b.path_agg(0, 2) {
                assert_eq!(agg.max, 9, "{}", B::NAME);
            }
        }
        go::<UfoForest>();
        go::<TopologyForest>();
        go::<LinkCutForest>();
        go::<EulerTourForest<TreapSequence>>();
        go::<BatchEulerForest<TreapSequence>>();
        go::<NaiveForest>();
    }

    #[test]
    fn snapshot_probes_answer_iff_advertised() {
        fn go<B: SpanningBackend>() {
            let mut b = B::new(4);
            b.link(0, 1);
            let conn = b.connected_snapshot(0, 1);
            let kind = b.edge_kind_snapshot(0, 1);
            assert_eq!(conn.is_some(), B::SNAPSHOT_QUERIES, "{}", B::NAME);
            assert_eq!(kind.is_some(), B::SNAPSHOT_QUERIES, "{}", B::NAME);
            if B::SNAPSHOT_QUERIES {
                assert_eq!(conn, Some(true), "{}", B::NAME);
                assert_eq!(kind, Some(EdgeKind::Tree), "{}", B::NAME);
                // a connected pair without a direct forest edge is NonTree …
                b.link(1, 2);
                assert_eq!(b.edge_kind_snapshot(0, 2), Some(EdgeKind::NonTree));
                // … and so is a disconnected pair (the caller's edge registry
                // tells live non-tree edges from missing ones)
                assert_eq!(b.edge_kind_snapshot(0, 3), Some(EdgeKind::NonTree));
            }
        }
        go::<UfoForest>();
        go::<TopologyForest>();
        go::<LinkCutForest>();
        go::<EulerTourForest<TreapSequence>>();
        go::<BatchEulerForest<TreapSequence>>();
        go::<NaiveForest>();
    }

    #[test]
    fn component_exports_agree_with_connectivity() {
        fn go<B: SpanningBackend>(expect_export: bool) {
            let mut b = B::new(5);
            b.link(0, 1);
            b.link(1, 2);
            b.link(3, 4);
            let mut reps = Vec::new();
            assert_eq!(b.export_components(&mut reps), expect_export, "{}", B::NAME);
            if !expect_export {
                return;
            }
            assert_eq!(reps.len(), 5, "{}", B::NAME);
            for u in 0..5 {
                for v in 0..5 {
                    assert_eq!(
                        reps[u] == reps[v],
                        b.connected(u, v),
                        "{}: ({u},{v})",
                        B::NAME
                    );
                }
            }
        }
        go::<UfoForest>(true);
        go::<TopologyForest>(true);
        go::<NaiveForest>(true);
        go::<LinkCutForest>(false);
        go::<EulerTourForest<TreapSequence>>(false);
        go::<BatchEulerForest<TreapSequence>>(false);
    }

    #[test]
    fn every_forest_implements_the_backend() {
        exercise::<UfoForest>();
        exercise::<TopologyForest>();
        exercise::<LinkCutForest>();
        exercise::<EulerTourForest<TreapSequence>>();
        exercise::<BatchEulerForest<TreapSequence>>();
        exercise::<NaiveForest>();
    }

    #[test]
    fn bulk_applies_answer_iff_advertised() {
        exercise_bulk_applies::<UfoForest>();
        exercise_bulk_applies::<TopologyForest>();
        exercise_bulk_applies::<LinkCutForest>();
        exercise_bulk_applies::<EulerTourForest<TreapSequence>>();
        exercise_bulk_applies::<BatchEulerForest<TreapSequence>>();
        exercise_bulk_applies::<NaiveForest>();
    }

    #[test]
    fn weighted_surface_is_consistent() {
        exercise_weighted::<UfoForest>();
        exercise_weighted::<TopologyForest>();
        exercise_weighted::<LinkCutForest>();
        exercise_weighted::<EulerTourForest<TreapSequence>>();
        exercise_weighted::<BatchEulerForest<TreapSequence>>();
        exercise_weighted::<NaiveForest>();
    }
}
