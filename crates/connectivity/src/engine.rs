//! The [`DynConnectivity`] engine: a spanning forest in a pluggable backend,
//! plus the HDT level machinery for replacement-edge search on deletions.

use dyntree_primitives::algebra::{Action, ActionOf, Agg, SumMinMax, WeightOf};
use dyntree_primitives::hash::{fx_map_with_capacity, FxHashMap};
use dyntree_primitives::ops::{DeleteOutcome, EdgeKind, GraphError};
use dyntree_primitives::telemetry::{Counter, TelemetrySnapshot};
use dyntree_primitives::{Dsu, ParallelConfig, Telemetry};

use crate::backend::SpanningBackend;
use crate::levels::LevelAdjacency;
use crate::search::{canonical, search_replacement, DirectAdj, EdgeInfo, SearchScratch};
use crate::Vertex;

/// Fully-dynamic connectivity over a growable vertex set `0..len()`.
///
/// Maintains a spanning forest of the current graph in the backend `B` under
/// arbitrary [`try_insert_edge`](Self::try_insert_edge) /
/// [`try_delete_edge`](Self::try_delete_edge) calls (with lenient bool
/// wrappers kept for callers that do not need outcomes); `connected` queries
/// run at the backend's own query speed.  Deleting a tree edge triggers the
/// Holm–de Lichtenberg–Thorup replacement search over the non-tree edges,
/// amortized by edge-level increases.  The vertex set grows in place via
/// [`add_vertices`](Self::add_vertices) /
/// [`ensure_vertices`](Self::ensure_vertices), and whole transactions of
/// typed ops go through [`apply`](Self::apply), which reports per-op
/// outcomes.
#[derive(Clone, Debug)]
pub struct DynConnectivity<B: SpanningBackend> {
    pub(crate) n: usize,
    pub(crate) backend: B,
    pub(crate) adj: LevelAdjacency,
    /// Canonically-oriented `(min, max)` edge → its info.
    pub(crate) edges: FxHashMap<(Vertex, Vertex), EdgeInfo>,
    pub(crate) components: usize,
    /// One past the highest level an edge may reach (`⌊log₂ n⌋ + 1`): an
    /// F_i component holds ≤ n/2^i vertices, so higher levels are useless.
    pub(crate) level_cap: usize,
    /// Epoch-stamped scratch marker for side-membership tests.
    pub(crate) mark: Vec<u64>,
    pub(crate) stamp: u64,
    /// Reusable replacement-search arena (side queues + bump buffer).
    pub(crate) scratch: SearchScratch,
    /// Grain sizes and fan-out for the parallel batch pre-pass.
    pub(crate) par: ParallelConfig,
    /// Telemetry handle (disabled by default; clones share accumulators).
    pub(crate) tel: Telemetry,
    /// Monotone batch counter: bumped once per successful [`apply`], the
    /// canonical epoch id for snapshot publication.
    pub(crate) version: u64,
}

impl<B: SpanningBackend> DynConnectivity<B> {
    /// An empty graph over `n` isolated vertices.
    pub fn new(n: usize) -> Self {
        Self {
            n,
            backend: B::new(n),
            adj: LevelAdjacency::new(n),
            edges: FxHashMap::default(),
            components: n,
            level_cap: usize::BITS as usize - n.max(1).leading_zeros() as usize,
            mark: vec![0; n],
            stamp: 0,
            scratch: SearchScratch::default(),
            par: ParallelConfig::default(),
            tel: Telemetry::from_env(),
            version: 0,
        }
    }

    /// The engine's version: a monotone counter bumped once per
    /// [`apply`](Self::apply) call (regardless of how many of the batch's
    /// ops were applied).  Snapshot publication uses it as the epoch id;
    /// single-op mutators do not bump it — an epoch is a *batch* boundary.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// The engine's telemetry handle (disabled unless the `telemetry`
    /// feature is compiled in and it was enabled explicitly or via
    /// `DYNTREE_TELEMETRY=1`).
    pub fn telemetry(&self) -> &Telemetry {
        &self.tel
    }

    /// Replaces the telemetry handle.  An enabled handle makes every
    /// [`apply`](Self::apply) attach a per-batch
    /// [`BatchTelemetry`](dyntree_primitives::BatchTelemetry) delta to its
    /// report; note the report timings then differ run to run (counters do
    /// not — see the determinism contract).
    pub fn set_telemetry(&mut self, tel: Telemetry) {
        self.tel = tel;
    }

    /// Builder-style variant of [`set_telemetry`](Self::set_telemetry).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Self {
        self.tel = tel;
        self
    }

    /// Copies the cumulative telemetry accumulators (`None` when the handle
    /// is disabled or the `telemetry` feature is off).
    pub fn telemetry_snapshot(&self) -> Option<TelemetrySnapshot> {
        self.tel.snapshot()
    }

    /// The engine's parallel-execution tunables (see
    /// [`ParallelConfig`]).
    pub fn parallel_config(&self) -> ParallelConfig {
        self.par
    }

    /// Replaces the engine's parallel-execution tunables.  Results are
    /// byte-identical under every config — this only moves the boundary
    /// between the sequential and the chunked-parallel batch pre-pass.
    pub fn set_parallel_config(&mut self, cfg: ParallelConfig) {
        self.par = cfg;
    }

    /// Builder-style variant of [`set_parallel_config`](Self::set_parallel_config).
    pub fn with_parallel_config(mut self, cfg: ParallelConfig) -> Self {
        self.par = cfg;
        self
    }

    /// Builds a graph from an edge list (self loops and duplicates skipped).
    pub fn from_edges(n: usize, edges: &[(Vertex, Vertex)]) -> Self {
        let mut g = Self::new(n);
        for &(u, v) in edges {
            g.insert_edge(u, v);
        }
        g
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Grows the vertex set to `n` isolated new vertices appended at the top
    /// of the id range (a smaller `n` is a no-op).  The vertex set is no
    /// longer frozen at construction: a graph may start at
    /// [`new(0)`](Self::new) and grow as the workload discovers vertices.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n <= self.n {
            return;
        }
        self.backend.ensure_vertices(n);
        self.adj.ensure_vertices(n);
        self.mark.resize(n, 0);
        self.components += n - self.n;
        self.n = n;
        // the cap only ever increases, so existing edge levels stay valid
        self.level_cap = usize::BITS as usize - n.max(1).leading_zeros() as usize;
    }

    /// Appends one isolated vertex and returns its id.
    pub fn add_vertex(&mut self) -> Vertex {
        let v = self.n;
        self.ensure_vertices(v + 1);
        v
    }

    /// Appends `count` isolated vertices and returns their id range.  The
    /// vertex id space saturates at `usize::MAX` (the returned range is the
    /// growth that actually happened).
    pub fn add_vertices(&mut self, count: usize) -> std::ops::Range<Vertex> {
        let first = self.n;
        self.ensure_vertices(first.saturating_add(count));
        first..self.n
    }

    /// Whether the graph has no vertices.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Number of live edges (tree and non-tree).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of edges currently in the spanning forest (`n` minus the
    /// component count, always).
    pub fn spanning_forest_size(&self) -> usize {
        self.n - self.components
    }

    /// Number of connected components (isolated vertices included).
    pub fn component_count(&self) -> usize {
        self.components
    }

    /// Whether edge `(u, v)` is live.
    pub fn has_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edges.contains_key(&canonical(u, v))
    }

    /// Whether `(u, v)` is live *and* in the spanning forest.
    pub fn is_tree_edge(&self, u: Vertex, v: Vertex) -> bool {
        self.edges
            .get(&canonical(u, v))
            .is_some_and(|info| info.tree)
    }

    /// The HDT level of live edge `(u, v)`.
    pub fn edge_level(&self, u: Vertex, v: Vertex) -> Option<usize> {
        self.edges.get(&canonical(u, v)).map(|info| info.level)
    }

    /// Shared access to the spanning-forest backend.
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Mutable access to the spanning-forest backend (for queries the
    /// backend supports beyond the [`SpanningBackend`] surface).
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Sets the weight of vertex `v`, reporting exactly why it could not be
    /// recorded: [`GraphError::VertexOutOfRange`] for an invalid id,
    /// [`GraphError::Unweighted`] for a backend without weights.
    pub fn try_set_weight(&mut self, v: Vertex, w: WeightOf<B::Weights>) -> Result<(), GraphError> {
        self.check_vertex(v)?;
        if self.backend.set_weight(v, w) {
            Ok(())
        } else {
            Err(GraphError::Unweighted)
        }
    }

    /// Sets the weight of vertex `v` in the backend.  Returns whether the
    /// weight was actually recorded.  Thin wrapper over
    /// [`try_set_weight`](Self::try_set_weight), kept for callers that do
    /// not care *why* a weight was declined; prefer the typed variant.
    pub fn set_weight(&mut self, v: Vertex, w: WeightOf<B::Weights>) -> bool {
        self.try_set_weight(v, w).is_ok()
    }

    /// Reads the current weight of vertex `v` back from the backend.  `None`
    /// for an out-of-range id or an unweighted backend.  `&mut self` because
    /// splay-based backends may restructure (or push lazy tags) on reads;
    /// the serving layer uses this to re-base its shadow weight table after
    /// bulk updates.
    pub fn vertex_weight(&mut self, v: Vertex) -> Option<WeightOf<B::Weights>> {
        if v >= self.n {
            return None;
        }
        self.backend.vertex_weight(v)
    }

    /// Applies the weight delta `delta` to every vertex on the spanning-tree
    /// path between `u` and `v` (inclusive; `u == v` touches one vertex).
    /// `Ok(Some(count))` reports how many vertices were updated;
    /// `Ok(None)` means `u` and `v` are disconnected (benign — the batch
    /// layer records a skip).  Declines with
    /// [`GraphError::VertexOutOfRange`] for invalid ids,
    /// [`GraphError::Unweighted`] for unweighted backends, and
    /// [`GraphError::UnsupportedQuery`] when the backend has no lazy path
    /// updates (ufo/topology/euler) or the weight monoid's action cannot
    /// interpret an additive delta (see `Action::from_delta`).
    ///
    /// Like [`path_agg`](Self::path_agg), the path is the *spanning-tree*
    /// path the HDT engine happens to maintain, not a shortest path.
    pub fn try_path_apply(
        &mut self,
        u: Vertex,
        v: Vertex,
        delta: WeightOf<B::Weights>,
    ) -> Result<Option<u64>, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if !B::WEIGHTED {
            return Err(GraphError::Unweighted);
        }
        if !B::SUPPORTS_PATH_APPLY {
            return Err(GraphError::UnsupportedQuery);
        }
        let act = <ActionOf<B::Weights> as Action<B::Weights>>::from_delta(delta)
            .ok_or(GraphError::UnsupportedQuery)?;
        Ok(self.backend.path_apply(u, v, act))
    }

    /// Applies the weight delta `delta` to every vertex in `v`'s component
    /// and returns how many vertices were updated (at least 1).  Declines
    /// exactly like [`try_path_apply`](Self::try_path_apply), gated on
    /// `SUPPORTS_COMPONENT_APPLY` (euler/naive only).
    pub fn try_component_apply(
        &mut self,
        v: Vertex,
        delta: WeightOf<B::Weights>,
    ) -> Result<u64, GraphError> {
        self.check_vertex(v)?;
        if !B::WEIGHTED {
            return Err(GraphError::Unweighted);
        }
        if !B::SUPPORTS_COMPONENT_APPLY {
            return Err(GraphError::UnsupportedQuery);
        }
        let act = <ActionOf<B::Weights> as Action<B::Weights>>::from_delta(delta)
            .ok_or(GraphError::UnsupportedQuery)?;
        self.backend
            .component_apply(v, act)
            .ok_or(GraphError::UnsupportedQuery)
    }

    /// Validates a vertex id against the current vertex set.
    fn check_vertex(&self, v: Vertex) -> Result<(), GraphError> {
        if v >= self.n {
            return Err(GraphError::VertexOutOfRange { v, len: self.n });
        }
        Ok(())
    }

    /// Validates an edge's endpoints (distinct and in range).
    fn check_edge(&self, u: Vertex, v: Vertex) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop { v: u });
        }
        self.check_vertex(u)?;
        self.check_vertex(v)
    }

    /// Whether the backend maintains vertex weights at all.
    pub fn weighted(&self) -> bool {
        B::WEIGHTED
    }

    /// Whether `u` and `v` are connected, with out-of-range vertices
    /// reported as a typed error instead of a silent `false`.
    pub fn try_connected(&mut self, u: Vertex, v: Vertex) -> Result<bool, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        Ok(u == v || self.backend.connected(u, v))
    }

    /// Whether `u` and `v` are connected, answered by the backend's forest.
    /// Out-of-range vertices are connected to nothing (mirroring the lenient
    /// bool mutators); prefer [`try_connected`](Self::try_connected) when the
    /// distinction matters.
    pub fn connected(&mut self, u: Vertex, v: Vertex) -> bool {
        self.try_connected(u, v).unwrap_or(false)
    }

    /// Inserts edge `(u, v)`, reporting what happened: `Ok(EdgeKind::Tree)`
    /// when the edge joined two components, `Ok(EdgeKind::NonTree)` when it
    /// closed a cycle, and a typed [`GraphError`] (self loop, out-of-range
    /// endpoint, duplicate) otherwise.
    pub fn try_insert_edge(&mut self, u: Vertex, v: Vertex) -> Result<EdgeKind, GraphError> {
        self.check_edge(u, v)?;
        if self.has_edge(u, v) {
            return Err(GraphError::DuplicateEdge {
                u: u.min(v),
                v: u.max(v),
            });
        }
        if self.backend.connected(u, v) {
            self.adj.nontree_insert(u, v, 0);
            self.edges.insert(
                canonical(u, v),
                EdgeInfo {
                    level: 0,
                    tree: false,
                },
            );
            Ok(EdgeKind::NonTree)
        } else {
            let linked = self.backend.link(u, v);
            debug_assert!(linked, "backend rejected a joining link ({u},{v})");
            self.adj.tree_insert(u, v, 0);
            self.edges.insert(
                canonical(u, v),
                EdgeInfo {
                    level: 0,
                    tree: true,
                },
            );
            self.components -= 1;
            Ok(EdgeKind::Tree)
        }
    }

    /// Inserts edge `(u, v)`.  Returns `false` for self loops, out-of-range
    /// endpoints and duplicates.  Thin wrapper over
    /// [`try_insert_edge`](Self::try_insert_edge); prefer the typed variant,
    /// which also reports whether the edge entered the spanning forest.
    pub fn insert_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        self.try_insert_edge(u, v).is_ok()
    }

    /// Inserts `(u, v)` that is already known to connect two connected
    /// vertices (the batch layer proves this with its union-find pre-pass),
    /// skipping the backend's connectivity probe.
    pub(crate) fn insert_nontree_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        if u == v || u >= self.n || v >= self.n || self.has_edge(u, v) {
            return false;
        }
        debug_assert!(self.backend.connected(u, v), "hint was wrong: ({u},{v})");
        self.adj.nontree_insert(u, v, 0);
        self.edges.insert(
            canonical(u, v),
            EdgeInfo {
                level: 0,
                tree: false,
            },
        );
        true
    }

    /// Read-only snapshot of a live edge's book-keeping for the batch-delete
    /// classification pre-pass: `(level, is_tree)`, or `None` when `(u, v)`
    /// is not live.  Probed concurrently from pool workers — a plain shared
    /// `HashMap` read, always strictly before any mutation of the batch.
    pub(crate) fn edge_info_snapshot(&self, u: Vertex, v: Vertex) -> Option<(usize, bool)> {
        self.edges.get(&canonical(u, v)).map(|i| (i.level, i.tree))
    }

    /// Removes a *certified non-tree* edge's record, returning its level at
    /// this moment (earlier tree deletions of the same run may have bumped
    /// it past its pre-pass snapshot).  The adjacency mirrors are the
    /// caller's responsibility — the batch-delete drain removes them in
    /// bulk.  Non-tree deletions never change connectivity, so `components`
    /// is deliberately untouched.
    pub(crate) fn take_certified_nontree_record(&mut self, u: Vertex, v: Vertex) -> usize {
        let info = self
            .edges
            .remove(&canonical(u, v))
            .expect("certified non-tree delete of a dead edge");
        debug_assert!(
            !info.tree,
            "certified non-tree edge ({u},{v}) is a tree edge"
        );
        info.level
    }

    /// Shared access to the level adjacency (batch-delete drain flush).
    pub(crate) fn adj_ref(&self) -> &LevelAdjacency {
        &self.adj
    }

    /// Mutable access to the level adjacency (batch-delete drain flush).
    pub(crate) fn adj_mut(&mut self) -> &mut LevelAdjacency {
        &mut self.adj
    }

    /// Deletes edge `(u, v)`, reporting what happened: the deleted edge's
    /// [`EdgeKind`] and whether the deletion split a component (a tree edge
    /// with no replacement).  Typed errors for self loops, out-of-range
    /// endpoints and edges that are not live.
    pub fn try_delete_edge(&mut self, u: Vertex, v: Vertex) -> Result<DeleteOutcome, GraphError> {
        self.try_delete_edge_traced(u, v)
            .map(|(outcome, _)| outcome)
    }

    /// [`try_delete_edge`](Self::try_delete_edge) that additionally reports
    /// which non-tree edge (canonically oriented) the replacement search
    /// promoted into the spanning forest, if any.  The batch-delete drain
    /// needs this to invalidate its pre-pass certificates: a promoted edge
    /// is the *only* way a live edge changes kind without being touched by
    /// its own operation.
    pub(crate) fn try_delete_edge_traced(
        &mut self,
        u: Vertex,
        v: Vertex,
    ) -> Result<(DeleteOutcome, Option<(Vertex, Vertex)>), GraphError> {
        self.check_edge(u, v)?;
        let Some(info) = self.edges.remove(&canonical(u, v)) else {
            return Err(GraphError::MissingEdge {
                u: u.min(v),
                v: u.max(v),
            });
        };
        if !info.tree {
            let removed = self.adj.nontree_remove(u, v, info.level);
            debug_assert!(removed, "non-tree edge ({u},{v}) missing from adjacency");
            return Ok((
                DeleteOutcome {
                    kind: EdgeKind::NonTree,
                    split: false,
                },
                None,
            ));
        }
        let removed = self.adj.tree_remove(u, v);
        debug_assert_eq!(removed, Some(info.level));
        let cut = self.backend.cut(u, v);
        debug_assert!(cut, "backend rejected cutting tree edge ({u},{v})");
        let promoted = self.find_replacement(u, v, info.level);
        let split = promoted.is_none();
        if split {
            self.components += 1;
            self.tel.incr(Counter::ComponentSplits);
        }
        Ok((
            DeleteOutcome {
                kind: EdgeKind::Tree,
                split,
            },
            promoted,
        ))
    }

    /// Deletes edge `(u, v)`.  Returns `false` if not live.  Thin wrapper
    /// over [`try_delete_edge`](Self::try_delete_edge); prefer the typed
    /// variant, which also reports whether the component split.
    pub fn delete_edge(&mut self, u: Vertex, v: Vertex) -> bool {
        self.try_delete_edge(u, v).is_ok()
    }

    /// HDT replacement search after cutting tree edge `(u, v)` of level `l`.
    /// Returns the (canonically oriented) non-tree edge that was promoted
    /// and linked as the replacement, or `None` when the component split.
    ///
    /// The search core lives in [`crate::search`], generic over an adjacency
    /// view; this sequential path drives it through the zero-cost
    /// [`DirectAdj`] field-borrow split and applies the backend link itself
    /// (the search never touches the backend — that is what lets the batch
    /// layer run the same core against a copy-on-write overlay on pool
    /// workers).
    fn find_replacement(&mut self, u: Vertex, v: Vertex, l: usize) -> Option<(Vertex, Vertex)> {
        let mut view = DirectAdj {
            adj: &mut self.adj,
            edges: &mut self.edges,
            par: self.par,
        };
        let promoted = search_replacement(
            &mut view,
            &mut self.mark,
            &mut self.stamp,
            &mut self.scratch,
            &self.tel,
            true,
            self.level_cap,
            u,
            v,
            l,
        );
        if let Some((x, y)) = promoted {
            let linked = self.backend.link(x, y);
            debug_assert!(linked, "backend rejected replacement link ({x},{y})");
        }
        promoted
    }

    /// Number of vertices in `v`'s component (backend fast path, else a walk
    /// over the engine's tree adjacency).  Out of range → 0.
    pub fn component_size(&mut self, v: Vertex) -> u64 {
        if v >= self.n {
            return 0;
        }
        if let Some(s) = self.backend.component_size(v) {
            return s;
        }
        self.stamp += 1;
        let stamp = self.stamp;
        let adj = &self.adj;
        let mark = &mut self.mark;
        let mut visited = vec![v];
        mark[v] = stamp;
        let mut i = 0;
        while i < visited.len() {
            let x = visited[i];
            i += 1;
            for (w, _) in adj.tree_neighbors(x) {
                if mark[w] != stamp {
                    mark[w] = stamp;
                    visited.push(w);
                }
            }
        }
        visited.len() as u64
    }

    /// Writes one component label per vertex into `labels`: dense ids in
    /// `0..component_count()`, assigned in order of first appearance by
    /// vertex id, so the output is canonical — byte-identical across
    /// backends and thread counts for the same graph.  The serving layer's
    /// snapshot builder freezes this array into its published view.
    ///
    /// Uses the backend's [`export_components`](SpanningBackend::export_components)
    /// dump when offered (e.g. the UFO backends' top-cluster walk), else a
    /// BFS over the engine's own tree adjacency; either way the raw
    /// representatives are renumbered into the canonical dense form.
    pub fn export_component_labels(&self, labels: &mut Vec<u32>) {
        assert!(
            u32::try_from(self.n).is_ok(),
            "component labels are u32: vertex count {} too large",
            self.n
        );
        labels.clear();
        let mut reps: Vec<usize> = Vec::new();
        if self.backend.export_components(&mut reps) {
            debug_assert_eq!(reps.len(), self.n, "backend exported a partial dump");
            // renumber arbitrary representatives to dense first-appearance ids
            let mut dense: FxHashMap<usize, u32> = fx_map_with_capacity(self.components);
            labels.reserve(self.n);
            for &r in &reps {
                let next = dense.len() as u32;
                labels.push(*dense.entry(r).or_insert(next));
            }
        } else {
            // canonical BFS over the engine's tree adjacency: scanning
            // vertices in id order makes the labels dense by construction
            labels.resize(self.n, u32::MAX);
            let mut next = 0u32;
            let mut queue: Vec<Vertex> = Vec::new();
            for start in 0..self.n {
                if labels[start] != u32::MAX {
                    continue;
                }
                labels[start] = next;
                queue.clear();
                queue.push(start);
                let mut i = 0;
                while i < queue.len() {
                    let x = queue[i];
                    i += 1;
                    for (w, _) in self.adj.tree_neighbors(x) {
                        if labels[w] == u32::MAX {
                            labels[w] = next;
                            queue.push(w);
                        }
                    }
                }
                next += 1;
            }
        }
        debug_assert_eq!(
            labels.iter().copied().max().map_or(0, |m| m as usize + 1),
            self.components.min(self.n),
            "label count disagrees with the component counter"
        );
    }

    /// Monoid aggregate over `v`'s whole component, with typed errors:
    /// [`GraphError::VertexOutOfRange`] for an invalid id,
    /// [`GraphError::UnsupportedQuery`] for a backend without component
    /// aggregates (e.g. link-cut trees).
    pub fn try_component_agg(&mut self, v: Vertex) -> Result<Agg<B::Weights>, GraphError> {
        self.check_vertex(v)?;
        if !B::SUPPORTS_COMPONENT_AGG {
            return Err(GraphError::UnsupportedQuery);
        }
        self.backend
            .component_agg(v)
            .ok_or(GraphError::UnsupportedQuery)
    }

    /// Monoid aggregate over `v`'s whole component, when the backend
    /// supports component aggregates.  Out of range → `None`; prefer
    /// [`try_component_agg`](Self::try_component_agg) to tell the cases
    /// apart.
    pub fn component_agg(&mut self, v: Vertex) -> Option<Agg<B::Weights>> {
        self.try_component_agg(v).ok()
    }

    /// Monoid aggregate over the spanning-tree path between `u` and `v`.
    /// `None` when the vertices are disconnected (or out of range), or when
    /// the backend cannot answer path aggregates (e.g. the ternarized
    /// topology backend, whose path answers would be inexact).
    ///
    /// On a general graph this is a *spanning-tree* path — the tree the HDT
    /// engine happens to maintain — not a shortest path.  Workloads that
    /// control which edges enter the forest (e.g. `examples/dynamic_mst.rs`,
    /// which only ever inserts forest edges) can rely on its exact shape.
    pub fn path_agg(&mut self, u: Vertex, v: Vertex) -> Option<Agg<B::Weights>> {
        self.try_path_agg(u, v).ok().flatten()
    }

    /// Typed variant of [`path_agg`](Self::path_agg), separating the three
    /// ways it can decline: `Err(VertexOutOfRange)` for invalid ids,
    /// `Err(UnsupportedQuery)` for backends whose path answers would be
    /// inexact or absent (the ternarized topology backend), and `Ok(None)`
    /// for a genuinely disconnected pair.
    pub fn try_path_agg(
        &mut self,
        u: Vertex,
        v: Vertex,
    ) -> Result<Option<Agg<B::Weights>>, GraphError> {
        self.check_vertex(u)?;
        self.check_vertex(v)?;
        if !B::SUPPORTS_PATH_AGG {
            return Err(GraphError::UnsupportedQuery);
        }
        // No connectivity pre-check: every backend's path_agg already
        // returns None for disconnected pairs, and re-probing here would
        // double the backend traversals per query.
        Ok(self.backend.path_agg(u, v))
    }

    /// Heap bytes owned by the engine and its backend.
    pub fn memory_bytes(&self) -> usize {
        self.memory_breakdown().total()
    }

    /// Heap bytes per substructure (backend, the three flat level-adjacency
    /// arrays — exact `capacity × entry size` accounting — the edge
    /// registry, and the scratch mark array).  Feeds the bytes-per-edge
    /// rows of the memory gate.
    pub fn memory_breakdown(&self) -> MemoryBreakdown {
        let word = std::mem::size_of::<usize>();
        let (adjacency_tree, adjacency_tree_levels, adjacency_nontree) =
            self.adj.memory_breakdown();
        MemoryBreakdown {
            backend: self.backend.memory_bytes(),
            adjacency_tree,
            adjacency_tree_levels,
            adjacency_nontree,
            edge_registry: self.edges.capacity()
                * (2 * word + std::mem::size_of::<EdgeInfo>() + word / 2),
            scratch: self.mark.capacity() * std::mem::size_of::<u64>()
                + self.scratch.memory_bytes(),
            snapshots: 0,
        }
    }

    /// Verifies the engine's invariants; returns a description of the first
    /// violation.  `O(n + m α(n))` — test/debug use only.
    pub fn check_invariants(&mut self) -> Result<(), String> {
        if self.spanning_forest_size() != self.edges.values().filter(|e| e.tree).count() {
            return Err(format!(
                "tree-edge count {} != n - components {}",
                self.edges.values().filter(|e| e.tree).count(),
                self.spanning_forest_size()
            ));
        }
        let mut dsu = Dsu::new(self.n);
        for (&(a, b), info) in &self.edges {
            if info.level >= self.level_cap {
                return Err(format!("edge ({a},{b}) level {} ≥ cap", info.level));
            }
            if info.tree && !dsu.union(a, b) {
                return Err(format!("tree edge ({a},{b}) closes a cycle"));
            }
        }
        for (&(a, b), info) in &self.edges {
            if !info.tree && dsu.find(a) != dsu.find(b) {
                return Err(format!("non-tree edge ({a},{b}) spans two components"));
            }
        }
        // HDT level invariant: a non-tree edge at level i must have its
        // endpoints connected in F_i, the forest of tree edges with level
        // ≥ i.  The replacement search depends on this structurally — the
        // search for a level-l tree edge scans non-tree buckets only at
        // levels ≤ l, so an edge stranded above its tree path's minimum
        // level is invisible to it and a still-connected component would
        // falsely split.  One descending sweep: at level i the DSU holds
        // exactly the tree edges of level ≥ i.
        let mut tree_by_level: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); self.level_cap];
        let mut nontree_by_level: Vec<Vec<(Vertex, Vertex)>> = vec![Vec::new(); self.level_cap];
        for (&(a, b), info) in &self.edges {
            if info.tree {
                tree_by_level[info.level].push((a, b));
            } else {
                nontree_by_level[info.level].push((a, b));
            }
        }
        let mut fi = Dsu::new(self.n);
        for level in (0..self.level_cap).rev() {
            for &(a, b) in &tree_by_level[level] {
                fi.union(a, b);
            }
            for &(a, b) in &nontree_by_level[level] {
                if fi.find(a) != fi.find(b) {
                    return Err(format!(
                        "level invariant: non-tree edge ({a},{b}) at level {level} has no \
                         tree path of level ≥ {level}"
                    ));
                }
            }
        }
        let edges: Vec<(Vertex, Vertex, bool)> = self
            .edges
            .iter()
            .map(|(&(a, b), info)| (a, b, info.tree))
            .collect();
        for (a, b, tree) in edges {
            if !self.backend.connected(a, b) {
                return Err(format!("backend disagrees: ({a},{b}) not connected"));
            }
            let in_tree_adj = self.adj.tree_neighbors(a).any(|(w, _)| w == b);
            if tree != in_tree_adj {
                return Err(format!("edge ({a},{b}) tree flag {tree} != adjacency"));
            }
            if tree {
                let level = self.edges[&canonical(a, b)].level;
                for (x, y) in [(a, b), (b, a)] {
                    if !self.adj.tree_neighbors_at(x, level).contains(&y) {
                        return Err(format!(
                            "tree edge ({a},{b}) missing from {x}'s level-{level} bucket"
                        ));
                    }
                }
            }
        }
        // bucketed tree adjacency must mirror the neighbour→level map exactly
        for v in 0..self.n {
            let map_deg = self.adj.tree_neighbors(v).count();
            let bucket_deg = self.adj.tree_neighbors_from(v, 0).count();
            if map_deg != bucket_deg {
                return Err(format!(
                    "vertex {v}: tree map degree {map_deg} != bucket degree {bucket_deg}"
                ));
            }
        }
        // Non-tree adjacency: every non-tree edge sits in both endpoints'
        // buckets at exactly its recorded level, and no stale entries exist
        // (total bucket population must match the live non-tree edge count).
        let mut nontree_edges = 0usize;
        for (&(a, b), info) in &self.edges {
            if info.tree {
                continue;
            }
            nontree_edges += 1;
            for (x, y) in [(a, b), (b, a)] {
                if !self.adj.nontree_neighbors_at(x, info.level).contains(&y) {
                    return Err(format!(
                        "non-tree edge ({a},{b}) missing from {x}'s level-{} bucket",
                        info.level
                    ));
                }
            }
        }
        let bucket_population: usize = (0..self.n).map(|v| self.adj.nontree_degree(v)).sum();
        if bucket_population != 2 * nontree_edges {
            return Err(format!(
                "stale non-tree adjacency: {} bucket entries for {} edges",
                bucket_population, nontree_edges
            ));
        }
        Ok(())
    }
}

/// `i64` conveniences for backends aggregating under the default monoid.
impl<B: SpanningBackend<Weights = SumMinMax>> DynConnectivity<B> {
    /// Sum of vertex weights in `v`'s component.  `None` when the backend
    /// has no component aggregates (never a silent zero: an unweighted or
    /// path-only backend reports `None`, a weighted one reports the true
    /// sum even if it is `0`).
    pub fn component_sum(&mut self, v: Vertex) -> Option<i64> {
        self.component_agg(v).map(|a| a.sum)
    }

    /// Sum of vertex weights on the spanning-tree path between `u` and `v`.
    pub fn path_sum(&mut self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_agg(u, v).map(|a| a.sum)
    }

    /// Maximum vertex weight on the spanning-tree path between `u` and `v`.
    pub fn path_max(&mut self, u: Vertex, v: Vertex) -> Option<i64> {
        self.path_agg(u, v).map(|a| a.max)
    }
}

/// Per-substructure heap-byte breakdown of a [`DynConnectivity`] engine.
/// The adjacency lines are **exact** (flat arrays: `capacity × entry size`);
/// the backend and edge-registry lines follow each structure's own
/// accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemoryBreakdown {
    /// Bytes owned by the spanning-forest backend.
    pub backend: usize,
    /// Level adjacency: the neighbour-sorted `(neighbour, level)` tree
    /// arrays.
    pub adjacency_tree: usize,
    /// Level adjacency: the `(level, neighbour)`-sorted tree mirrors.
    pub adjacency_tree_levels: usize,
    /// Level adjacency: the `(level, neighbour)`-sorted non-tree buckets.
    pub adjacency_nontree: usize,
    /// The canonical edge → `(level, tree)` registry.
    pub edge_registry: usize,
    /// Epoch-stamped scratch mark array.
    pub scratch: usize,
    /// Published serving snapshots retained by a wrapping `ServingEngine`
    /// (0 when the engine is not being served).
    pub snapshots: usize,
}

impl MemoryBreakdown {
    /// Sum of every substructure.
    pub fn total(&self) -> usize {
        self.backend
            + self.adjacency_tree
            + self.adjacency_tree_levels
            + self.adjacency_nontree
            + self.edge_registry
            + self.scratch
            + self.snapshots
    }
}

impl std::fmt::Display for MemoryBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {} B (backend {}, adj tree {}, adj tree levels {}, adj non-tree {}, edge registry {}, scratch {}",
            self.total(),
            self.backend,
            self.adjacency_tree,
            self.adjacency_tree_levels,
            self.adjacency_nontree,
            self.edge_registry,
            self.scratch
        )?;
        if self.snapshots > 0 {
            write!(f, ", snapshots {}", self.snapshots)?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EulerConnectivity, LinkCutConnectivity, NaiveConnectivity, UfoConnectivity};

    fn triangle_replacement<B: SpanningBackend>() {
        let mut g: DynConnectivity<B> = DynConnectivity::new(4);
        assert!(g.insert_edge(0, 1));
        assert!(g.insert_edge(1, 2));
        assert!(g.insert_edge(2, 0), "cycle edge accepted as non-tree");
        assert!(!g.insert_edge(0, 1), "duplicate rejected");
        assert!(!g.insert_edge(3, 3), "self loop rejected");
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.component_count(), 2);
        assert_eq!(g.spanning_forest_size(), 2);
        assert!(g.is_tree_edge(0, 1));
        assert!(!g.is_tree_edge(2, 0));

        // deleting a tree edge of the triangle keeps it connected
        assert!(g.delete_edge(0, 1));
        assert!(g.connected(0, 1));
        assert_eq!(g.component_count(), 2);
        assert!(g.is_tree_edge(2, 0), "replacement promoted");

        // now the cycle is gone: deleting a tree edge splits
        assert!(g.delete_edge(1, 2));
        assert!(!g.connected(0, 1));
        assert_eq!(g.component_count(), 3);
        g.check_invariants().unwrap();
    }

    #[test]
    fn triangle_replacement_all_backends() {
        triangle_replacement::<ufo_forest::UfoForest>();
        triangle_replacement::<dyntree_linkcut::LinkCutForest>();
        triangle_replacement::<dyntree_euler::EulerTourForest<dyntree_seqs::TreapSequence>>();
        triangle_replacement::<ufo_forest::TopologyForest>();
        triangle_replacement::<dyntree_naive::NaiveForest>();
    }

    #[test]
    fn aliases_compile_and_run() {
        let mut a = UfoConnectivity::new(3);
        let mut b = LinkCutConnectivity::new(3);
        let mut c = EulerConnectivity::new(3);
        let mut d = NaiveConnectivity::new(3);
        a.insert_edge(0, 1);
        b.insert_edge(0, 1);
        c.insert_edge(0, 1);
        d.insert_edge(0, 1);
        assert!(a.connected(0, 1) && b.connected(0, 1) && c.connected(0, 1) && d.connected(0, 1));
    }

    #[test]
    fn dense_clique_deletions_keep_connectivity() {
        let n = 12;
        let mut g = UfoConnectivity::new(n);
        for u in 0..n {
            for v in (u + 1)..n {
                g.insert_edge(u, v);
            }
        }
        assert_eq!(g.component_count(), 1);
        // delete every edge incident to vertex 0 except (0, n-1)
        for v in 1..n - 1 {
            assert!(g.delete_edge(0, v));
            assert!(g.connected(0, v), "clique survives single deletions");
        }
        g.check_invariants().unwrap();
        // tear the whole graph down
        for u in 0..n {
            for v in (u + 1)..n {
                g.delete_edge(u, v);
            }
        }
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.component_count(), n);
        g.check_invariants().unwrap();
    }

    #[test]
    fn vertex_growth_preserves_connectivity_everywhere() {
        fn go<B: SpanningBackend>() {
            let mut g: DynConnectivity<B> = DynConnectivity::new(0);
            assert!(g.is_empty());
            assert_eq!(g.add_vertices(3), 0..3);
            assert_eq!(g.component_count(), 3);
            assert!(g.insert_edge(0, 1));
            assert!(g.insert_edge(1, 2));
            assert!(g.insert_edge(2, 0)); // non-tree
            let v = g.add_vertex();
            assert_eq!(v, 3);
            assert_eq!(g.len(), 4);
            assert_eq!(g.component_count(), 2);
            assert!(!g.connected(0, 3));
            assert!(g.insert_edge(1, 3));
            assert!(g.connected(0, 3));
            // deletions through the grown region still find replacements
            assert!(g.delete_edge(0, 1));
            assert!(g.connected(0, 3), "replacement via (2,0)");
            g.check_invariants().unwrap();
            g.ensure_vertices(2); // shrinking is a no-op
            assert_eq!(g.len(), 4);
        }
        go::<ufo_forest::UfoForest>();
        go::<ufo_forest::TopologyForest>();
        go::<dyntree_linkcut::LinkCutForest>();
        go::<dyntree_euler::EulerTourForest<dyntree_seqs::TreapSequence>>();
        go::<dyntree_naive::NaiveForest>();
    }

    #[test]
    fn growth_raises_the_level_cap() {
        // 2 vertices -> cap 2; growth to 64 must allow levels up to 6, or
        // dense churn after growth would trip the level-cap invariant
        let mut g = UfoConnectivity::new(2);
        g.insert_edge(0, 1);
        g.ensure_vertices(64);
        for u in 0..16 {
            for v in (u + 1)..16 {
                g.insert_edge(u, v);
            }
        }
        for u in 0..16 {
            for v in (u + 1)..16 {
                g.delete_edge(u, v);
            }
        }
        g.check_invariants().unwrap();
        assert_eq!(g.component_count(), 64);
    }

    #[test]
    fn typed_errors_cover_every_mutating_entry_point() {
        let mut g = UfoConnectivity::new(3);
        assert_eq!(g.try_insert_edge(1, 1), Err(GraphError::SelfLoop { v: 1 }));
        assert_eq!(
            g.try_insert_edge(0, 7),
            Err(GraphError::VertexOutOfRange { v: 7, len: 3 })
        );
        assert_eq!(g.try_insert_edge(0, 1), Ok(EdgeKind::Tree));
        assert_eq!(
            g.try_insert_edge(1, 0),
            Err(GraphError::DuplicateEdge { u: 0, v: 1 })
        );
        assert_eq!(g.try_insert_edge(1, 2), Ok(EdgeKind::Tree));
        assert_eq!(g.try_insert_edge(2, 0), Ok(EdgeKind::NonTree));

        assert_eq!(g.try_delete_edge(2, 2), Err(GraphError::SelfLoop { v: 2 }));
        assert_eq!(
            g.try_delete_edge(9, 0),
            Err(GraphError::VertexOutOfRange { v: 9, len: 3 })
        );
        assert_eq!(
            g.try_delete_edge(0, 1),
            Ok(DeleteOutcome {
                kind: EdgeKind::Tree,
                split: false, // (2,0) replaces it
            })
        );
        assert_eq!(
            g.try_delete_edge(0, 1),
            Err(GraphError::MissingEdge { u: 0, v: 1 })
        );
        assert_eq!(
            g.try_delete_edge(1, 2),
            Ok(DeleteOutcome {
                kind: EdgeKind::Tree,
                split: true,
            })
        );

        assert_eq!(
            g.try_set_weight(5, 1),
            Err(GraphError::VertexOutOfRange { v: 5, len: 3 })
        );
        assert_eq!(g.try_set_weight(1, 7), Ok(()));
    }

    #[test]
    fn typed_errors_cover_every_query_entry_point() {
        let mut g = UfoConnectivity::new(3);
        g.insert_edge(0, 1);
        assert_eq!(
            g.try_connected(0, 8),
            Err(GraphError::VertexOutOfRange { v: 8, len: 3 })
        );
        assert_eq!(g.try_connected(0, 1), Ok(true));
        assert_eq!(g.try_connected(0, 2), Ok(false));
        assert_eq!(
            g.try_component_agg(4).map(|a| a.sum),
            Err(GraphError::VertexOutOfRange { v: 4, len: 3 })
        );
        assert!(g.try_component_agg(0).is_ok());
        assert_eq!(
            g.try_path_agg(3, 0).map(|a| a.map(|x| x.sum)),
            Err(GraphError::VertexOutOfRange { v: 3, len: 3 })
        );
        assert!(g.try_path_agg(0, 1).unwrap().is_some());
        assert!(g.try_path_agg(0, 2).unwrap().is_none(), "disconnected");

        // backends that cannot answer a query family say so, instead of
        // conflating "unsupported" with "disconnected" or "zero"
        let mut lct = LinkCutConnectivity::new(2);
        lct.insert_edge(0, 1);
        assert_eq!(lct.try_component_agg(0), Err(GraphError::UnsupportedQuery));
        assert!(lct.try_path_agg(0, 1).unwrap().is_some());
        let mut topo: DynConnectivity<ufo_forest::TopologyForest> = DynConnectivity::new(2);
        topo.insert_edge(0, 1);
        assert_eq!(topo.try_path_agg(0, 1), Err(GraphError::UnsupportedQuery));
        assert!(topo.try_component_agg(0).is_ok());
    }

    #[test]
    fn out_of_range_vertices_are_lenient_everywhere() {
        // queries must mirror the mutators' silent-skip contract, not panic
        let mut g = UfoConnectivity::new(3);
        g.insert_edge(0, 1);
        assert!(!g.insert_edge(0, 7));
        assert!(!g.connected(0, 7));
        assert!(!g.connected(9, 9));
        assert_eq!(g.batch_connected(&[(0, 7), (0, 1)]), vec![false, true]);
        assert_eq!(g.component_size(7), 0);
        assert_eq!(g.component_sum(7), None);
        g.set_weight(7, 5); // ignored, no panic
        assert!(!g.delete_edge(0, 7));
    }

    #[test]
    fn weighted_queries_distinguish_zero_from_unsupported() {
        // UFO backend: full weighted surface — a zero sum is a real zero.
        let mut g = UfoConnectivity::new(4);
        g.insert_edge(0, 1);
        g.insert_edge(1, 2);
        assert!(g.weighted());
        assert!(g.set_weight(1, 0));
        assert_eq!(g.component_sum(0), Some(0), "true zero, not a default");
        assert!(g.set_weight(1, 7));
        assert_eq!(g.component_sum(0), Some(7));
        let p = g.path_agg(0, 2).expect("ufo answers path aggregates");
        assert_eq!(p.sum, 7);
        assert_eq!(p.edges, 2);
        assert!(g.path_agg(0, 3).is_none(), "disconnected");
        assert!(!g.set_weight(9, 1), "out of range is declined");

        // Link-cut backend: paths yes, component aggregates no — and the
        // engine reports the gap as None instead of a silent zero.
        let mut h = LinkCutConnectivity::new(3);
        h.insert_edge(0, 1);
        assert!(h.set_weight(0, 5));
        assert_eq!(h.component_sum(0), None, "no component aggregates");
        assert_eq!(h.path_sum(0, 1), Some(5));
        assert_eq!(h.path_max(0, 1), Some(5));

        // Topology backend: declines path aggregates (ternarized answers
        // would be inexact) but answers component aggregates.
        let mut t: DynConnectivity<ufo_forest::TopologyForest> = DynConnectivity::new(3);
        t.insert_edge(0, 1);
        assert!(t.set_weight(0, 3));
        assert_eq!(t.component_sum(0), Some(3));
        assert!(t.path_agg(0, 1).is_none());
    }

    #[test]
    fn path_then_bridge_deletion_splits() {
        let mut g = LinkCutConnectivity::new(6);
        for i in 0..5 {
            g.insert_edge(i, i + 1);
        }
        assert_eq!(g.component_count(), 1);
        assert!(g.delete_edge(2, 3), "bridge deletion");
        assert!(!g.connected(0, 5));
        assert_eq!(g.component_count(), 2);
        assert_eq!(g.component_size(0), 3);
        assert_eq!(g.component_size(5), 3);
        g.check_invariants().unwrap();
    }
}
