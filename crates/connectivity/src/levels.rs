//! Per-vertex, per-level adjacency bookkeeping for the HDT level scheme.
//!
//! The engine keeps the *spanning forest* in the backend, but the level
//! machinery needs its own view of the graph: for every vertex, which tree
//! edges leave it (and at what level), and which non-tree edges leave it at
//! each level.  Levels only ever increase, so the amortized work of the
//! replacement searches is bounded by the total number of level bumps,
//! `O(m log n)`.

use std::collections::BTreeMap;

/// Adjacency structures for one graph: tree edges with their levels, and
/// non-tree edges bucketed by level.
///
/// Tree adjacency is stored **twice**: a neighbour→level map (cheap level
/// lookup for insert/remove/bump) and level→neighbour buckets (so traversals
/// of the level-`l` forest `F_l` touch only level ≥ `l` entries — the
/// smaller-side search must never pay for a hub's lower-level edges, or the
/// HDT `n/2^i` component-size invariant would be selected against the wrong
/// side).  A vertex carries at most `⌊log₂ n⌋ + 1` distinct levels, so the
/// bucketed view adds only a logarithmic factor of map overhead.
///
/// The maps are `BTreeMap`s, not `HashMap`s, **deliberately**: the
/// replacement search iterates them, and the iteration order decides which
/// replacement edge is promoted and which edges are level-bumped.  With
/// randomized hashers every engine instance made different (all valid, but
/// different) choices, so per-op outcome reports were not reproducible
/// across instances or processes — exactly what the cross-thread-count
/// determinism contract forbids.  Ordered maps make every choice canonical;
/// the maps are per-vertex and tiny (≤ `⌊log₂ n⌋ + 1` keys), so the switch
/// is performance-neutral.
#[derive(Clone, Debug, Default)]
pub struct LevelAdjacency {
    /// `tree[v]`: neighbour → level, for spanning-forest edges at `v`.
    tree: Vec<BTreeMap<usize, usize>>,
    /// `tree_buckets[v]`: level → neighbours, same edges bucketed by level.
    tree_buckets: Vec<BTreeMap<usize, Vec<usize>>>,
    /// `nontree[v]`: level → neighbours, for non-tree edges at `v`.
    nontree: Vec<BTreeMap<usize, Vec<usize>>>,
}

impl LevelAdjacency {
    /// Empty adjacency over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            tree: vec![BTreeMap::new(); n],
            tree_buckets: vec![BTreeMap::new(); n],
            nontree: vec![BTreeMap::new(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.tree.len()
    }

    /// Appends isolated vertices (empty adjacency) until there are `n` of
    /// them.  A smaller `n` is a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.tree.len() {
            self.tree.resize_with(n, BTreeMap::new);
            self.tree_buckets.resize_with(n, BTreeMap::new);
            self.nontree.resize_with(n, BTreeMap::new);
        }
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.tree.is_empty()
    }

    /// Records tree edge `(u, v)` at `level`.
    pub fn tree_insert(&mut self, u: usize, v: usize, level: usize) {
        let prev = self.tree[u].insert(v, level);
        debug_assert!(prev.is_none(), "duplicate tree edge ({u},{v})");
        let prev = self.tree[v].insert(u, level);
        debug_assert!(prev.is_none());
        self.tree_buckets[u].entry(level).or_default().push(v);
        self.tree_buckets[v].entry(level).or_default().push(u);
    }

    /// Removes tree edge `(u, v)`, returning its level.
    pub fn tree_remove(&mut self, u: usize, v: usize) -> Option<usize> {
        let level = self.tree[u].remove(&v)?;
        let other = self.tree[v].remove(&u);
        debug_assert_eq!(other, Some(level));
        self.tree_bucket_remove(u, v, level);
        self.tree_bucket_remove(v, u, level);
        Some(level)
    }

    /// Raises the level of tree edge `(u, v)` to `level`.
    pub fn tree_set_level(&mut self, u: usize, v: usize, level: usize) {
        let old = self.tree[u].insert(v, level).expect("live tree edge");
        debug_assert!(old <= level);
        self.tree[v].insert(u, level);
        if old != level {
            self.tree_bucket_remove(u, v, old);
            self.tree_bucket_remove(v, u, old);
            self.tree_buckets[u].entry(level).or_default().push(v);
            self.tree_buckets[v].entry(level).or_default().push(u);
        }
    }

    fn tree_bucket_remove(&mut self, v: usize, w: usize, level: usize) {
        let bucket = self.tree_buckets[v]
            .get_mut(&level)
            .expect("bucket for live tree edge");
        let pos = bucket
            .iter()
            .position(|&x| x == w)
            .expect("tree edge present in its bucket");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.tree_buckets[v].remove(&level);
        }
    }

    /// All tree neighbours of `v` with their levels.
    pub fn tree_neighbors(&self, v: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.tree[v].iter().map(|(&w, &l)| (w, l))
    }

    /// Tree neighbours of `v` with edge level **at least** `level`, touching
    /// only the qualifying buckets — never the lower-level ones — in
    /// ascending level order (a deterministic order: the lock-step BFS
    /// consumes these entries one at a time, and its consumption order picks
    /// the replacement edge).
    pub fn tree_neighbors_from(&self, v: usize, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.tree_buckets[v]
            .range(level..)
            .flat_map(|(_, bucket)| bucket.iter().copied())
    }

    /// Snapshot of the tree neighbours of `v` at exactly `level`.
    pub fn tree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        self.tree_buckets[v]
            .get(&level)
            .cloned()
            .unwrap_or_default()
    }

    /// Records non-tree edge `(u, v)` at `level`.
    pub fn nontree_insert(&mut self, u: usize, v: usize, level: usize) {
        self.nontree[u].entry(level).or_default().push(v);
        self.nontree[v].entry(level).or_default().push(u);
    }

    /// Removes non-tree edge `(u, v)` at `level`; returns whether present.
    pub fn nontree_remove(&mut self, u: usize, v: usize, level: usize) -> bool {
        let mut removed = false;
        for (a, b) in [(u, v), (v, u)] {
            if let Some(bucket) = self.nontree[a].get_mut(&level) {
                if let Some(pos) = bucket.iter().position(|&x| x == b) {
                    bucket.swap_remove(pos);
                    removed = true;
                    if bucket.is_empty() {
                        self.nontree[a].remove(&level);
                    }
                }
            }
        }
        removed
    }

    /// Snapshot of the level-`level` non-tree neighbours of `v`.
    pub fn nontree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        self.nontree[v].get(&level).cloned().unwrap_or_default()
    }

    /// Removes and returns `v`'s **own** level-`level` bucket wholesale.  The
    /// mirror entries at the neighbours are left untouched — the caller is
    /// responsible for them (used by the replacement scan, which re-files
    /// every drained edge exactly once, keeping its cost linear in the bucket
    /// instead of quadratic remove-by-scan).
    pub fn nontree_take_bucket(&mut self, v: usize, level: usize) -> Vec<usize> {
        self.nontree[v].remove(&level).unwrap_or_default()
    }

    /// Replaces `v`'s own level-`level` bucket wholesale (mirrors untouched).
    pub fn nontree_set_bucket(&mut self, v: usize, level: usize, neighbors: Vec<usize>) {
        if neighbors.is_empty() {
            self.nontree[v].remove(&level);
        } else {
            self.nontree[v].insert(level, neighbors);
        }
    }

    /// Appends `w` to `v`'s own level-`level` bucket (mirror untouched).
    pub fn nontree_push_one_sided(&mut self, v: usize, w: usize, level: usize) {
        self.nontree[v].entry(level).or_default().push(w);
    }

    /// Removes `w` from `v`'s own level-`level` bucket (mirror untouched);
    /// returns whether it was present.
    pub fn nontree_remove_one_sided(&mut self, v: usize, w: usize, level: usize) -> bool {
        let Some(bucket) = self.nontree[v].get_mut(&level) else {
            return false;
        };
        let Some(pos) = bucket.iter().position(|&x| x == w) else {
            return false;
        };
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.nontree[v].remove(&level);
        }
        true
    }

    /// Number of non-tree edge endpoints stored at `v` (across all levels).
    pub fn nontree_degree(&self, v: usize) -> usize {
        self.nontree[v].values().map(Vec::len).sum()
    }

    /// Approximate heap bytes owned by the adjacency structures (both tree
    /// views, the bucketed mirror included, plus the non-tree buckets).
    pub fn memory_bytes(&self) -> usize {
        let (tree_map, tree_buckets, nontree) = self.memory_breakdown();
        tree_map + tree_buckets + nontree
    }

    /// Approximate heap bytes per substructure:
    /// `(tree neighbour→level map, bucketed tree mirror, non-tree buckets)`.
    ///
    /// BTreeMap overhead is modelled at node granularity: std's B-tree
    /// (B = 6) holds up to 11 entries per node, and a map that grew by
    /// insertion runs ~70% full, so we charge one node — 11 entry slots plus
    /// pointer/length/parent slack — per ⌈len / 8⌉ entries.  That replaces
    /// the old flat "half a word per entry" fudge, which undercounted small
    /// maps badly (a 1-entry map still owns a whole node).
    pub fn memory_breakdown(&self) -> (usize, usize, usize) {
        let word = std::mem::size_of::<usize>();
        let spine = |cap: usize| cap * std::mem::size_of::<BTreeMap<usize, usize>>();
        // neighbour → level: key + value, both words
        let tree_map: usize = self
            .tree
            .iter()
            .map(|m| btree_map_bytes(m.len(), 2 * word))
            .sum::<usize>()
            + spine(self.tree.capacity());
        // level → Vec<neighbour>: key + Vec header (3 words) per entry, plus
        // each bucket's own heap allocation
        let bucket_bytes = |maps: &Vec<BTreeMap<usize, Vec<usize>>>| -> usize {
            maps.iter()
                .map(|m| {
                    btree_map_bytes(m.len(), 4 * word)
                        + m.values().map(|v| v.capacity() * word).sum::<usize>()
                })
                .sum::<usize>()
                + spine(maps.capacity())
        };
        (
            tree_map,
            bucket_bytes(&self.tree_buckets),
            bucket_bytes(&self.nontree),
        )
    }
}

/// Heap bytes of a `BTreeMap` with `len` entries of `entry_bytes` each,
/// modelled at node granularity (see
/// [`memory_breakdown`](LevelAdjacency::memory_breakdown)).
fn btree_map_bytes(len: usize, entry_bytes: usize) -> usize {
    let word = std::mem::size_of::<usize>();
    if len == 0 {
        0
    } else {
        len.div_ceil(8) * (11 * entry_bytes + 3 * word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.tree_insert(0, 1, 0);
        adj.tree_insert(1, 2, 3);
        assert_eq!(adj.tree_neighbors(1).count(), 2);
        assert_eq!(adj.tree_neighbors(1).filter(|&(_, l)| l >= 1).count(), 1);
        adj.tree_set_level(0, 1, 2);
        assert_eq!(adj.tree_remove(0, 1), Some(2));
        assert_eq!(adj.tree_remove(0, 1), None);
        assert_eq!(adj.tree_neighbors(1).count(), 1);
    }

    #[test]
    fn one_sided_bucket_ops_compose_with_two_sided_state() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        let bucket = adj.nontree_take_bucket(0, 0);
        assert_eq!(bucket.len(), 2);
        assert!(adj.nontree_neighbors_at(0, 0).is_empty());
        // mirrors still present until the caller re-files them
        assert!(adj.nontree_remove_one_sided(1, 0, 0));
        adj.nontree_push_one_sided(1, 0, 1);
        adj.nontree_push_one_sided(0, 1, 1);
        adj.nontree_set_bucket(0, 0, vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![1]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(adj.nontree_remove(0, 1, 1));
        assert_eq!(adj.nontree_degree(0), 0);
    }

    #[test]
    fn nontree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        adj.nontree_insert(0, 3, 1);
        assert_eq!(adj.nontree_degree(0), 3);
        let mut at0 = adj.nontree_neighbors_at(0, 0);
        at0.sort_unstable();
        assert_eq!(at0, vec![1, 2]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(!adj.nontree_remove(0, 2, 0));
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![1]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![3]);
    }
}
