//! Per-vertex, per-level adjacency bookkeeping for the HDT level scheme.
//!
//! The engine keeps the *spanning forest* in the backend, but the level
//! machinery needs its own view of the graph: for every vertex, which tree
//! edges leave it (and at what level), and which non-tree edges leave it at
//! each level.  Levels only ever increase, so the amortized work of the
//! replacement searches is bounded by the total number of level bumps,
//! `O(m log n)`.
//!
//! The state is factored into one [`VertexAdj`] per vertex holding that
//! vertex's **one-sided** view of its edges, with [`LevelAdjacency`]
//! composing the two-sided operations out of per-endpoint primitives.  The
//! split is load-bearing for the parallel replacement searches: a search
//! running on a pool worker operates on copy-on-write clones of the touched
//! vertices' `VertexAdj` entries (see `search::OverlayAdj`), going through
//! the *same* primitive operations — so the overlay evolves byte-identically
//! to what in-place mutation would have produced, and the finished clones
//! can be swapped back in wholesale via [`LevelAdjacency::set_vertex`].
//!
//! # Flat storage (DESIGN.md §12)
//!
//! A `VertexAdj` is three flat sorted `Vec<(u32, u32)>` arrays, not maps:
//! one `(neighbour, level)` array sorted by neighbour (binary-searched level
//! lookups), one `(level, neighbour)` mirror sorted lexicographically (the
//! level-restricted traversals walk a contiguous `partition_point` range),
//! and one `(level, neighbour)` array for the non-tree buckets.  Per-vertex
//! degrees are tiny on the workloads this engine serves, so the `O(degree)`
//! memmove on insert/remove loses to cache-line locality everywhere it was
//! measured — and the sorted arrays make the canonical iteration order the
//! determinism contract depends on *structural*: neighbours at a level are
//! always visited in ascending id order, identically on every code path
//! (sequential walk, overlay clone, drain replay), at every thread count.
//! Entries are `u32` pairs (8 bytes), not `usize` pairs: half the bytes per
//! edge endpoint, twice the entries per cache line.
#[cfg(test)]
use std::collections::BTreeMap;

/// Narrows a vertex id or level to the `u32` the flat arrays store.
/// Vertex counts beyond `u32::MAX` are out of scope for this engine (the
/// mark array alone would need 32 GiB); the debug assertion keeps the
/// boundary loud under the debug-assertions CI leg.
#[inline]
fn narrow(x: usize) -> u32 {
    debug_assert!(x <= u32::MAX as usize, "index {x} exceeds u32 storage");
    x as u32
}

/// One vertex's adjacency state: its tree edges (neighbour-sorted array plus
/// a level-bucketed mirror) and its non-tree edges bucketed by level.  Every
/// operation here is **one-sided** — it maintains this endpoint's view only;
/// [`LevelAdjacency`] (and the search overlay) compose the two-sided edits.
///
/// The arrays are kept sorted **deliberately**: the replacement search
/// iterates them, and the iteration order decides which replacement edge is
/// promoted and which edges are level-bumped.  With randomized hashers every
/// engine instance made different (all valid, but different) choices, so
/// per-op outcome reports were not reproducible across instances or
/// processes — exactly what the cross-thread-count determinism contract
/// forbids.  Sorted flat arrays make every choice canonical *structurally*
/// (ascending `(level, neighbour)`), and the arrays are per-vertex and tiny,
/// so insertion memmoves are performance-neutral while iteration gets
/// cache-contiguous.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexAdj {
    /// `(neighbour, level)` for spanning-forest edges at this vertex, sorted
    /// by neighbour — `tree_level` is one binary search.
    tree: Vec<(u32, u32)>,
    /// `(level, neighbour)` mirror of `tree`, sorted lexicographically (so
    /// traversals of the level-`l` forest `F_l` walk one contiguous tail
    /// range — the smaller-side search must never pay for a hub's
    /// lower-level edges, or the HDT `n/2^i` component-size invariant would
    /// be selected against the wrong side).
    tree_by_level: Vec<(u32, u32)>,
    /// `(level, neighbour)` for non-tree edges at this vertex, sorted
    /// lexicographically — each level's bucket is a contiguous run.
    nontree: Vec<(u32, u32)>,
}

/// First index of the `(level, _)` run in a `(level, neighbour)`-sorted
/// array.
#[inline]
fn level_start(arr: &[(u32, u32)], level: u32) -> usize {
    arr.partition_point(|&(l, _)| l < level)
}

/// One-past-last index of the `(level, _)` run.
#[inline]
fn level_end(arr: &[(u32, u32)], level: u32) -> usize {
    arr.partition_point(|&(l, _)| l <= level)
}

impl VertexAdj {
    /// Records tree neighbour `w` at `level` (this endpoint only).
    pub fn tree_insert_one(&mut self, w: usize, level: usize) {
        let (w, level) = (narrow(w), narrow(level));
        let pos = self.tree.partition_point(|&(n, _)| n < w);
        debug_assert!(
            self.tree.get(pos).map(|&(n, _)| n) != Some(w),
            "duplicate tree neighbour {w}"
        );
        self.tree.insert(pos, (w, level));
        let pos = self.tree_by_level.partition_point(|&e| e < (level, w));
        self.tree_by_level.insert(pos, (level, w));
    }

    /// Removes tree neighbour `w` (this endpoint only), returning its level.
    pub fn tree_remove_one(&mut self, w: usize) -> Option<usize> {
        let w = narrow(w);
        let pos = self.tree.partition_point(|&(n, _)| n < w);
        if self.tree.get(pos).map(|&(n, _)| n) != Some(w) {
            return None;
        }
        let (_, level) = self.tree.remove(pos);
        self.tree_mirror_remove(w, level);
        Some(level as usize)
    }

    /// Raises tree neighbour `w` to `level` (this endpoint only), returning
    /// the previous level.
    pub fn tree_set_level_one(&mut self, w: usize, level: usize) -> usize {
        let (w, level) = (narrow(w), narrow(level));
        let pos = self.tree.partition_point(|&(n, _)| n < w);
        debug_assert_eq!(
            self.tree.get(pos).map(|&(n, _)| n),
            Some(w),
            "live tree edge"
        );
        let old = std::mem::replace(&mut self.tree[pos].1, level);
        debug_assert!(old <= level);
        if old != level {
            self.tree_mirror_remove(w, old);
            let pos = self.tree_by_level.partition_point(|&e| e < (level, w));
            self.tree_by_level.insert(pos, (level, w));
        }
        old as usize
    }

    fn tree_mirror_remove(&mut self, w: u32, level: u32) {
        let pos = self.tree_by_level.partition_point(|&e| e < (level, w));
        debug_assert_eq!(
            self.tree_by_level.get(pos),
            Some(&(level, w)),
            "tree edge present in its level run"
        );
        self.tree_by_level.remove(pos);
    }

    /// The level of the tree edge to `w`, if it exists.
    pub fn tree_level(&self, w: usize) -> Option<usize> {
        let w = narrow(w);
        self.tree
            .binary_search_by_key(&w, |&(n, _)| n)
            .ok()
            .map(|pos| self.tree[pos].1 as usize)
    }

    /// All tree neighbours with their levels, in ascending neighbour order.
    pub fn tree_neighbors(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.tree.iter().map(|&(w, l)| (w as usize, l as usize))
    }

    /// Tree neighbours with edge level **at least** `level` — one contiguous
    /// tail slice of the `(level, neighbour)`-sorted mirror, i.e. ascending
    /// level, then ascending neighbour id within a level (a deterministic
    /// order: the lock-step BFS consumes these entries one at a time, and
    /// its consumption order picks the replacement edge).
    pub fn tree_neighbors_from(&self, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.tree_by_level[level_start(&self.tree_by_level, narrow(level))..]
            .iter()
            .map(|&(_, w)| w as usize)
    }

    /// Appends the tree neighbours at exactly `level` to `out` (the arena
    /// variant of a snapshot: the caller reuses one buffer across searches).
    pub fn tree_neighbors_at_into(&self, level: usize, out: &mut Vec<usize>) {
        out.extend(self.tree_neighbors_at(level));
    }

    /// Tree neighbours at exactly `level`, in ascending id order, without
    /// allocating.
    pub fn tree_neighbors_at(&self, level: usize) -> impl Iterator<Item = usize> + '_ {
        let level = narrow(level);
        let (lo, hi) = (
            level_start(&self.tree_by_level, level),
            level_end(&self.tree_by_level, level),
        );
        self.tree_by_level[lo..hi].iter().map(|&(_, w)| w as usize)
    }

    /// Files `w` into the level-`level` non-tree bucket (this endpoint
    /// only), keeping the bucket sorted by neighbour id.
    pub fn nontree_push_one(&mut self, w: usize, level: usize) {
        let (w, level) = (narrow(w), narrow(level));
        let pos = self.nontree.partition_point(|&e| e < (level, w));
        self.nontree.insert(pos, (level, w));
    }

    /// Removes `w` from the level-`level` non-tree bucket (this endpoint
    /// only); returns whether it was present.
    pub fn nontree_remove_one(&mut self, w: usize, level: usize) -> bool {
        let (w, level) = (narrow(w), narrow(level));
        let pos = self.nontree.partition_point(|&e| e < (level, w));
        if self.nontree.get(pos) == Some(&(level, w)) {
            self.nontree.remove(pos);
            true
        } else {
            false
        }
    }

    /// Removes and returns the level-`level` non-tree bucket wholesale, in
    /// ascending neighbour order.
    pub fn nontree_take_bucket_one(&mut self, level: usize) -> Vec<usize> {
        let level = narrow(level);
        let (lo, hi) = (
            level_start(&self.nontree, level),
            level_end(&self.nontree, level),
        );
        self.nontree
            .drain(lo..hi)
            .map(|(_, w)| w as usize)
            .collect()
    }

    /// Replaces the level-`level` non-tree bucket wholesale.  `neighbors`
    /// must be sorted ascending — every caller holds a sorted subsequence of
    /// a previously taken (sorted) bucket, so the canonical order is
    /// preserved by construction rather than re-established by sorting.
    pub fn nontree_set_bucket_one(&mut self, level: usize, neighbors: Vec<usize>) {
        let level = narrow(level);
        debug_assert!(
            neighbors.windows(2).all(|w| w[0] < w[1]),
            "bucket for level {level} not sorted: {neighbors:?}"
        );
        let (lo, hi) = (
            level_start(&self.nontree, level),
            level_end(&self.nontree, level),
        );
        self.nontree
            .splice(lo..hi, neighbors.into_iter().map(|w| (level, narrow(w))));
    }

    /// Snapshot of the level-`level` non-tree neighbours, ascending.
    pub fn nontree_neighbors_at(&self, level: usize) -> Vec<usize> {
        let level = narrow(level);
        let (lo, hi) = (
            level_start(&self.nontree, level),
            level_end(&self.nontree, level),
        );
        self.nontree[lo..hi]
            .iter()
            .map(|&(_, w)| w as usize)
            .collect()
    }

    /// Number of non-tree edge endpoints stored here (across all levels).
    pub fn nontree_degree(&self) -> usize {
        self.nontree.len()
    }

    /// Exact heap bytes per substructure: `(neighbour-sorted tree array,
    /// level-sorted tree mirror, non-tree buckets)`.  Flat `Vec`s make this
    /// true byte accounting — `capacity × entry size` — with no occupancy
    /// model.
    fn memory_parts(&self) -> (usize, usize, usize) {
        let entry = std::mem::size_of::<(u32, u32)>();
        (
            self.tree.capacity() * entry,
            self.tree_by_level.capacity() * entry,
            self.nontree.capacity() * entry,
        )
    }
}

/// Adjacency structures for one graph: tree edges with their levels, and
/// non-tree edges bucketed by level — a [`VertexAdj`] per vertex, with the
/// two-sided edge operations composed from per-endpoint primitives.
///
/// Tree adjacency is stored **twice** per endpoint (neighbour-sorted array
/// for cheap level lookups, level-sorted mirror for level-restricted
/// traversals); both are flat 8-byte-entry arrays, so the doubled view costs
/// 16 bytes per tree-edge endpoint and stays cache-contiguous.
#[derive(Clone, Debug, Default)]
pub struct LevelAdjacency {
    verts: Vec<VertexAdj>,
}

impl LevelAdjacency {
    /// Empty adjacency over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            verts: vec![VertexAdj::default(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Appends isolated vertices (empty adjacency) until there are `n` of
    /// them.  A smaller `n` is a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.verts.len() {
            self.verts.resize_with(n, VertexAdj::default);
        }
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Shared access to one vertex's adjacency state (the search overlay
    /// reads un-touched vertices straight from here).
    pub fn vertex(&self, v: usize) -> &VertexAdj {
        &self.verts[v]
    }

    /// Replaces one vertex's adjacency state wholesale — the bulk entry
    /// point the parallel-search overlay and the rebuild escape hatch use to
    /// install their finished per-vertex states.
    pub fn set_vertex(&mut self, v: usize, state: VertexAdj) {
        self.verts[v] = state;
    }

    /// Records tree edge `(u, v)` at `level`.
    pub fn tree_insert(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].tree_insert_one(v, level);
        self.verts[v].tree_insert_one(u, level);
    }

    /// Removes tree edge `(u, v)`, returning its level.
    pub fn tree_remove(&mut self, u: usize, v: usize) -> Option<usize> {
        let level = self.verts[u].tree_remove_one(v)?;
        let other = self.verts[v].tree_remove_one(u);
        debug_assert_eq!(other, Some(level));
        Some(level)
    }

    /// Raises the level of tree edge `(u, v)` to `level`.
    pub fn tree_set_level(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].tree_set_level_one(v, level);
        self.verts[v].tree_set_level_one(u, level);
    }

    /// The level of tree edge `(u, v)`, if it is a live tree edge.
    pub fn tree_level(&self, u: usize, v: usize) -> Option<usize> {
        self.verts[u].tree_level(v)
    }

    /// All tree neighbours of `v` with their levels.
    pub fn tree_neighbors(&self, v: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.verts[v].tree_neighbors()
    }

    /// Tree neighbours of `v` with edge level **at least** `level`, touching
    /// only the qualifying tail range — never the lower-level entries — in
    /// ascending `(level, neighbour)` order.
    pub fn tree_neighbors_from(&self, v: usize, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.verts[v].tree_neighbors_from(level)
    }

    /// Snapshot of the tree neighbours of `v` at exactly `level`.
    pub fn tree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.verts[v].tree_neighbors_at_into(level, &mut out);
        out
    }

    /// Records non-tree edge `(u, v)` at `level`.
    pub fn nontree_insert(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].nontree_push_one(v, level);
        self.verts[v].nontree_push_one(u, level);
    }

    /// Removes non-tree edge `(u, v)` at `level`; returns whether present.
    pub fn nontree_remove(&mut self, u: usize, v: usize, level: usize) -> bool {
        let a = self.verts[u].nontree_remove_one(v, level);
        let b = self.verts[v].nontree_remove_one(u, level);
        a || b
    }

    /// Snapshot of the level-`level` non-tree neighbours of `v`.
    pub fn nontree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        self.verts[v].nontree_neighbors_at(level)
    }

    /// Removes and returns `v`'s **own** level-`level` bucket wholesale.  The
    /// mirror entries at the neighbours are left untouched — the caller is
    /// responsible for them (used by the replacement scan, which re-files
    /// every drained edge exactly once, keeping its cost linear in the bucket
    /// instead of quadratic remove-by-scan).
    pub fn nontree_take_bucket(&mut self, v: usize, level: usize) -> Vec<usize> {
        self.verts[v].nontree_take_bucket_one(level)
    }

    /// Replaces `v`'s own level-`level` bucket wholesale (mirrors untouched).
    pub fn nontree_set_bucket(&mut self, v: usize, level: usize, neighbors: Vec<usize>) {
        self.verts[v].nontree_set_bucket_one(level, neighbors);
    }

    /// Files `w` into `v`'s own level-`level` bucket (mirror untouched).
    pub fn nontree_push_one_sided(&mut self, v: usize, w: usize, level: usize) {
        self.verts[v].nontree_push_one(w, level);
    }

    /// Removes `w` from `v`'s own level-`level` bucket (mirror untouched);
    /// returns whether it was present.
    pub fn nontree_remove_one_sided(&mut self, v: usize, w: usize, level: usize) -> bool {
        self.verts[v].nontree_remove_one(w, level)
    }

    /// Number of non-tree edge endpoints stored at `v` (across all levels).
    pub fn nontree_degree(&self, v: usize) -> usize {
        self.verts[v].nontree_degree()
    }

    /// Exact heap bytes owned by the adjacency structures (both tree views,
    /// the level-sorted mirror included, plus the non-tree buckets).
    pub fn memory_bytes(&self) -> usize {
        let (tree, tree_levels, nontree) = self.memory_breakdown();
        tree + tree_levels + nontree
    }

    /// Exact heap bytes per substructure: `(neighbour-sorted tree arrays,
    /// level-sorted tree mirrors, non-tree buckets)`.
    ///
    /// The flat layout makes this true byte accounting: every substructure
    /// is a `Vec` of 8-byte `(u32, u32)` entries, so the cost is exactly
    /// `capacity × 8` per array plus the per-vertex spine (three `Vec`
    /// headers per [`VertexAdj`], charged one per substructure).  The old
    /// B-tree node-occupancy *model* (≈70%-full B = 6 nodes) is gone along
    /// with the B-trees it approximated.
    pub fn memory_breakdown(&self) -> (usize, usize, usize) {
        let spine = self.verts.capacity() * std::mem::size_of::<Vec<(u32, u32)>>();
        let (mut tree, mut tree_levels, mut nontree) = (spine, spine, spine);
        for v in &self.verts {
            let (t, tl, nt) = v.memory_parts();
            tree += t;
            tree_levels += tl;
            nontree += nt;
        }
        (tree, tree_levels, nontree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.tree_insert(0, 1, 0);
        adj.tree_insert(1, 2, 3);
        assert_eq!(adj.tree_neighbors(1).count(), 2);
        assert_eq!(adj.tree_neighbors(1).filter(|&(_, l)| l >= 1).count(), 1);
        adj.tree_set_level(0, 1, 2);
        assert_eq!(adj.tree_level(0, 1), Some(2));
        assert_eq!(adj.tree_remove(0, 1), Some(2));
        assert_eq!(adj.tree_remove(0, 1), None);
        assert_eq!(adj.tree_level(0, 1), None);
        assert_eq!(adj.tree_neighbors(1).count(), 1);
    }

    #[test]
    fn one_sided_bucket_ops_compose_with_two_sided_state() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        let bucket = adj.nontree_take_bucket(0, 0);
        assert_eq!(bucket.len(), 2);
        assert!(adj.nontree_neighbors_at(0, 0).is_empty());
        // mirrors still present until the caller re-files them
        assert!(adj.nontree_remove_one_sided(1, 0, 0));
        adj.nontree_push_one_sided(1, 0, 1);
        adj.nontree_push_one_sided(0, 1, 1);
        adj.nontree_set_bucket(0, 0, vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![1]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(adj.nontree_remove(0, 1, 1));
        assert_eq!(adj.nontree_degree(0), 0);
    }

    #[test]
    fn nontree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        adj.nontree_insert(0, 3, 1);
        assert_eq!(adj.nontree_degree(0), 3);
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![1, 2]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(!adj.nontree_remove(0, 2, 0));
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![1]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![3]);
    }

    #[test]
    fn iteration_orders_are_canonical() {
        // The determinism contract's canonical order: ascending (level,
        // neighbour) for the level-restricted views, ascending neighbour for
        // the full tree view — independent of insertion order.
        let mut adj = LevelAdjacency::new(8);
        adj.tree_insert(0, 5, 1);
        adj.tree_insert(0, 3, 0);
        adj.tree_insert(0, 7, 1);
        adj.tree_insert(0, 1, 2);
        assert_eq!(
            adj.tree_neighbors(0).collect::<Vec<_>>(),
            vec![(1, 2), (3, 0), (5, 1), (7, 1)]
        );
        assert_eq!(
            adj.tree_neighbors_from(0, 1).collect::<Vec<_>>(),
            vec![5, 7, 1]
        );
        assert_eq!(adj.tree_neighbors_at(0, 1), vec![5, 7]);
        adj.nontree_insert(0, 6, 1);
        adj.nontree_insert(0, 2, 1);
        adj.nontree_insert(0, 4, 0);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![2, 6]);
        assert_eq!(adj.nontree_take_bucket(0, 1), vec![2, 6]);
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![4]);
    }

    #[test]
    fn vertex_state_swaps_wholesale_and_replays_identically() {
        // The overlay contract: cloning a VertexAdj, mutating the clone with
        // the same one-sided primitives, and swapping it back must equal
        // in-place mutation.
        let mut a = LevelAdjacency::new(3);
        a.tree_insert(0, 1, 0);
        a.nontree_insert(0, 2, 1);
        let mut b = a.clone();
        // in place
        a.tree_set_level(0, 1, 2);
        assert!(a.nontree_remove(0, 2, 1));
        // via cloned vertex states
        for v in 0..3 {
            let mut s = b.vertex(v).clone();
            if s.tree_level(if v == 0 { 1 } else { 0 }).is_some() && (v == 0 || v == 1) {
                s.tree_set_level_one(if v == 0 { 1 } else { 0 }, 2);
            }
            s.nontree_remove_one(if v == 0 { 2 } else { 0 }, 1);
            b.set_vertex(v, s);
        }
        for v in 0..3 {
            assert_eq!(b.vertex(v), a.vertex(v), "vertex {v}");
        }
    }

    #[test]
    fn memory_breakdown_is_exact_capacity_accounting() {
        let mut adj = LevelAdjacency::new(2);
        let spine = adj.verts.capacity() * std::mem::size_of::<Vec<(u32, u32)>>();
        assert_eq!(adj.memory_breakdown(), (spine, spine, spine));
        adj.tree_insert(0, 1, 0);
        adj.nontree_insert(0, 1, 1);
        let entry = std::mem::size_of::<(u32, u32)>();
        let expect = |caps: [usize; 2]| spine + caps.iter().sum::<usize>() * entry;
        let (tree, tree_levels, nontree) = adj.memory_breakdown();
        let cap = |v: &Vec<(u32, u32)>| v.capacity();
        assert_eq!(
            tree,
            expect([cap(&adj.verts[0].tree), cap(&adj.verts[1].tree)])
        );
        assert_eq!(
            tree_levels,
            expect([
                cap(&adj.verts[0].tree_by_level),
                cap(&adj.verts[1].tree_by_level)
            ])
        );
        assert_eq!(
            nontree,
            expect([cap(&adj.verts[0].nontree), cap(&adj.verts[1].nontree)])
        );
        assert_eq!(adj.memory_bytes(), tree + tree_levels + nontree);
    }

    /// Reference model for the flat structure: the exact BTreeMap trio the
    /// pre-flat implementation stored, mutated through the same one-sided
    /// vocabulary.  The canonical order differs only *within* a level run
    /// (insertion order then, ascending id now), so the model compares
    /// level-keyed **sets** plus the cross-level orderings the search
    /// actually depends on.
    #[derive(Default)]
    struct ModelAdj {
        tree: BTreeMap<usize, usize>,
        nontree: BTreeMap<usize, Vec<usize>>,
    }

    impl ModelAdj {
        fn assert_matches(&self, v: &VertexAdj) {
            let flat_tree: Vec<(usize, usize)> = v.tree_neighbors().collect();
            let model_tree: Vec<(usize, usize)> = self.tree.iter().map(|(&w, &l)| (w, l)).collect();
            assert_eq!(flat_tree, model_tree, "neighbour-sorted tree view");
            for &level in self.tree.values() {
                let mut model_at: Vec<usize> = self
                    .tree
                    .iter()
                    .filter(|&(_, &l)| l == level)
                    .map(|(&w, _)| w)
                    .collect();
                model_at.sort_unstable();
                assert_eq!(
                    v.tree_neighbors_at(level).collect::<Vec<_>>(),
                    model_at,
                    "level-{level} tree bucket"
                );
            }
            // range-from-level traversal: ascending level, ascending id
            for from in 0..8 {
                let mut model_from: Vec<(usize, usize)> = self
                    .tree
                    .iter()
                    .filter(|&(_, &l)| l >= from)
                    .map(|(&w, &l)| (l, w))
                    .collect();
                model_from.sort_unstable();
                assert_eq!(
                    v.tree_neighbors_from(from).collect::<Vec<_>>(),
                    model_from.into_iter().map(|(_, w)| w).collect::<Vec<_>>(),
                    "tree_neighbors_from({from})"
                );
            }
            for (&level, bucket) in &self.nontree {
                let mut sorted = bucket.clone();
                sorted.sort_unstable();
                assert_eq!(
                    v.nontree_neighbors_at(level),
                    sorted,
                    "level-{level} non-tree bucket"
                );
            }
            let model_degree: usize = self.nontree.values().map(Vec::len).sum();
            assert_eq!(v.nontree_degree(), model_degree);
        }
    }

    #[test]
    fn flat_structure_matches_btreemap_model_on_random_op_streams() {
        // Deterministic xorshift stream; 64 rounds × 200 ops covers
        // insert/remove/level-raise/take/set interleavings including
        // re-insertion into recycled positions.
        let mut state = 0x9e3779b97f4a7c15u64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _round in 0..64 {
            let mut flat = VertexAdj::default();
            let mut model = ModelAdj::default();
            for _op in 0..200 {
                let w = (rng() % 24) as usize;
                let level = (rng() % 6) as usize;
                match rng() % 6 {
                    0 => {
                        // tree insert (skip duplicates like the engine does)
                        if let std::collections::btree_map::Entry::Vacant(e) = model.tree.entry(w) {
                            flat.tree_insert_one(w, level);
                            e.insert(level);
                        }
                    }
                    1 => {
                        assert_eq!(flat.tree_remove_one(w), model.tree.remove(&w));
                    }
                    2 => {
                        // level raise (levels only ever increase)
                        if let Some(&old) = model.tree.get(&w) {
                            let to = old.max(level);
                            assert_eq!(flat.tree_set_level_one(w, to), old);
                            model.tree.insert(w, to);
                        }
                    }
                    3 => {
                        let dup = model.nontree.get(&level).is_some_and(|b| b.contains(&w));
                        if !dup {
                            flat.nontree_push_one(w, level);
                            model.nontree.entry(level).or_default().push(w);
                        }
                    }
                    4 => {
                        let in_model = match model.nontree.get_mut(&level) {
                            Some(bucket) => match bucket.iter().position(|&x| x == w) {
                                Some(pos) => {
                                    bucket.swap_remove(pos);
                                    if bucket.is_empty() {
                                        model.nontree.remove(&level);
                                    }
                                    true
                                }
                                None => false,
                            },
                            None => false,
                        };
                        assert_eq!(flat.nontree_remove_one(w, level), in_model);
                    }
                    _ => {
                        // take-then-set round trip with a filtered survivor
                        // subsequence (what the replacement scan does)
                        let taken = flat.nontree_take_bucket_one(level);
                        let mut model_taken = model.nontree.remove(&level).unwrap_or_default();
                        model_taken.sort_unstable();
                        assert_eq!(taken, model_taken);
                        let survivors: Vec<usize> =
                            taken.iter().copied().filter(|&x| x % 3 != 0).collect();
                        if !survivors.is_empty() {
                            model.nontree.insert(level, survivors.clone());
                        }
                        flat.nontree_set_bucket_one(level, survivors);
                    }
                }
                model.assert_matches(&flat);
            }
        }
    }
}
