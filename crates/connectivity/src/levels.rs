//! Per-vertex, per-level adjacency bookkeeping for the HDT level scheme.
//!
//! The engine keeps the *spanning forest* in the backend, but the level
//! machinery needs its own view of the graph: for every vertex, which tree
//! edges leave it (and at what level), and which non-tree edges leave it at
//! each level.  Levels only ever increase, so the amortized work of the
//! replacement searches is bounded by the total number of level bumps,
//! `O(m log n)`.
//!
//! The state is factored into one [`VertexAdj`] per vertex holding that
//! vertex's **one-sided** view of its edges, with [`LevelAdjacency`]
//! composing the two-sided operations out of per-endpoint primitives.  The
//! split is load-bearing for the parallel replacement searches: a search
//! running on a pool worker operates on copy-on-write clones of the touched
//! vertices' `VertexAdj` entries (see `search::OverlayAdj`), going through
//! the *same* primitive operations — so the overlay evolves byte-identically
//! to what in-place mutation would have produced, and the finished clones
//! can be swapped back in wholesale via [`LevelAdjacency::set_vertex`].

use std::collections::BTreeMap;

/// One vertex's adjacency state: its tree edges (neighbour→level map plus a
/// level-bucketed mirror) and its non-tree edges bucketed by level.  Every
/// operation here is **one-sided** — it maintains this endpoint's view only;
/// [`LevelAdjacency`] (and the search overlay) compose the two-sided edits.
///
/// The maps are `BTreeMap`s, not `HashMap`s, **deliberately**: the
/// replacement search iterates them, and the iteration order decides which
/// replacement edge is promoted and which edges are level-bumped.  With
/// randomized hashers every engine instance made different (all valid, but
/// different) choices, so per-op outcome reports were not reproducible
/// across instances or processes — exactly what the cross-thread-count
/// determinism contract forbids.  Ordered maps make every choice canonical;
/// the maps are per-vertex and tiny (≤ `⌊log₂ n⌋ + 1` keys), so the switch
/// is performance-neutral.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VertexAdj {
    /// Neighbour → level, for spanning-forest edges at this vertex.
    tree: BTreeMap<usize, usize>,
    /// Level → neighbours, same tree edges bucketed by level (so traversals
    /// of the level-`l` forest `F_l` touch only level ≥ `l` entries — the
    /// smaller-side search must never pay for a hub's lower-level edges, or
    /// the HDT `n/2^i` component-size invariant would be selected against
    /// the wrong side).
    tree_buckets: BTreeMap<usize, Vec<usize>>,
    /// Level → neighbours, for non-tree edges at this vertex.
    nontree: BTreeMap<usize, Vec<usize>>,
}

impl VertexAdj {
    /// Records tree neighbour `w` at `level` (this endpoint only).
    pub fn tree_insert_one(&mut self, w: usize, level: usize) {
        let prev = self.tree.insert(w, level);
        debug_assert!(prev.is_none(), "duplicate tree neighbour {w}");
        self.tree_buckets.entry(level).or_default().push(w);
    }

    /// Removes tree neighbour `w` (this endpoint only), returning its level.
    pub fn tree_remove_one(&mut self, w: usize) -> Option<usize> {
        let level = self.tree.remove(&w)?;
        self.tree_bucket_remove(w, level);
        Some(level)
    }

    /// Raises tree neighbour `w` to `level` (this endpoint only), returning
    /// the previous level.
    pub fn tree_set_level_one(&mut self, w: usize, level: usize) -> usize {
        let old = self.tree.insert(w, level).expect("live tree edge");
        debug_assert!(old <= level);
        if old != level {
            self.tree_bucket_remove(w, old);
            self.tree_buckets.entry(level).or_default().push(w);
        }
        old
    }

    fn tree_bucket_remove(&mut self, w: usize, level: usize) {
        let bucket = self
            .tree_buckets
            .get_mut(&level)
            .expect("bucket for live tree edge");
        let pos = bucket
            .iter()
            .position(|&x| x == w)
            .expect("tree edge present in its bucket");
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.tree_buckets.remove(&level);
        }
    }

    /// The level of the tree edge to `w`, if it exists.
    pub fn tree_level(&self, w: usize) -> Option<usize> {
        self.tree.get(&w).copied()
    }

    /// All tree neighbours with their levels.
    pub fn tree_neighbors(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.tree.iter().map(|(&w, &l)| (w, l))
    }

    /// Tree neighbours with edge level **at least** `level`, touching only
    /// the qualifying buckets in ascending level order (a deterministic
    /// order: the lock-step BFS consumes these entries one at a time, and
    /// its consumption order picks the replacement edge).
    pub fn tree_neighbors_from(&self, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.tree_buckets
            .range(level..)
            .flat_map(|(_, bucket)| bucket.iter().copied())
    }

    /// Appends the tree neighbours at exactly `level` to `out` (the arena
    /// variant of a snapshot: the caller reuses one buffer across searches).
    pub fn tree_neighbors_at_into(&self, level: usize, out: &mut Vec<usize>) {
        if let Some(bucket) = self.tree_buckets.get(&level) {
            out.extend_from_slice(bucket);
        }
    }

    /// Tree neighbours at exactly `level`, in bucket order, without
    /// allocating.
    pub fn tree_neighbors_at(&self, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.tree_buckets.get(&level).into_iter().flatten().copied()
    }

    /// Appends `w` to the level-`level` non-tree bucket (this endpoint only).
    pub fn nontree_push_one(&mut self, w: usize, level: usize) {
        self.nontree.entry(level).or_default().push(w);
    }

    /// Removes `w` from the level-`level` non-tree bucket (this endpoint
    /// only); returns whether it was present.
    pub fn nontree_remove_one(&mut self, w: usize, level: usize) -> bool {
        let Some(bucket) = self.nontree.get_mut(&level) else {
            return false;
        };
        let Some(pos) = bucket.iter().position(|&x| x == w) else {
            return false;
        };
        bucket.swap_remove(pos);
        if bucket.is_empty() {
            self.nontree.remove(&level);
        }
        true
    }

    /// Removes and returns the level-`level` non-tree bucket wholesale.
    pub fn nontree_take_bucket_one(&mut self, level: usize) -> Vec<usize> {
        self.nontree.remove(&level).unwrap_or_default()
    }

    /// Replaces the level-`level` non-tree bucket wholesale.
    pub fn nontree_set_bucket_one(&mut self, level: usize, neighbors: Vec<usize>) {
        if neighbors.is_empty() {
            self.nontree.remove(&level);
        } else {
            self.nontree.insert(level, neighbors);
        }
    }

    /// Snapshot of the level-`level` non-tree neighbours.
    pub fn nontree_neighbors_at(&self, level: usize) -> Vec<usize> {
        self.nontree.get(&level).cloned().unwrap_or_default()
    }

    /// Number of non-tree edge endpoints stored here (across all levels).
    pub fn nontree_degree(&self) -> usize {
        self.nontree.values().map(Vec::len).sum()
    }

    /// Approximate heap bytes per substructure:
    /// `(tree neighbour→level map, bucketed tree mirror, non-tree buckets)`.
    fn memory_parts(&self) -> (usize, usize, usize) {
        let word = std::mem::size_of::<usize>();
        let bucket_bytes = |m: &BTreeMap<usize, Vec<usize>>| -> usize {
            btree_map_bytes(m.len(), 4 * word)
                + m.values().map(|v| v.capacity() * word).sum::<usize>()
        };
        (
            btree_map_bytes(self.tree.len(), 2 * word),
            bucket_bytes(&self.tree_buckets),
            bucket_bytes(&self.nontree),
        )
    }
}

/// Adjacency structures for one graph: tree edges with their levels, and
/// non-tree edges bucketed by level — a [`VertexAdj`] per vertex, with the
/// two-sided edge operations composed from per-endpoint primitives.
///
/// Tree adjacency is stored **twice** per endpoint (neighbour→level map for
/// cheap level lookups, level→neighbour buckets for level-restricted
/// traversals); a vertex carries at most `⌊log₂ n⌋ + 1` distinct levels, so
/// the bucketed view adds only a logarithmic factor of map overhead.
#[derive(Clone, Debug, Default)]
pub struct LevelAdjacency {
    verts: Vec<VertexAdj>,
}

impl LevelAdjacency {
    /// Empty adjacency over `n` vertices.
    pub fn new(n: usize) -> Self {
        Self {
            verts: vec![VertexAdj::default(); n],
        }
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// Appends isolated vertices (empty adjacency) until there are `n` of
    /// them.  A smaller `n` is a no-op.
    pub fn ensure_vertices(&mut self, n: usize) {
        if n > self.verts.len() {
            self.verts.resize_with(n, VertexAdj::default);
        }
    }

    /// Whether there are no vertices.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// Shared access to one vertex's adjacency state (the search overlay
    /// reads un-touched vertices straight from here).
    pub fn vertex(&self, v: usize) -> &VertexAdj {
        &self.verts[v]
    }

    /// Replaces one vertex's adjacency state wholesale — the bulk entry
    /// point the parallel-search overlay and the rebuild escape hatch use to
    /// install their finished per-vertex states.
    pub fn set_vertex(&mut self, v: usize, state: VertexAdj) {
        self.verts[v] = state;
    }

    /// Records tree edge `(u, v)` at `level`.
    pub fn tree_insert(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].tree_insert_one(v, level);
        self.verts[v].tree_insert_one(u, level);
    }

    /// Removes tree edge `(u, v)`, returning its level.
    pub fn tree_remove(&mut self, u: usize, v: usize) -> Option<usize> {
        let level = self.verts[u].tree_remove_one(v)?;
        let other = self.verts[v].tree_remove_one(u);
        debug_assert_eq!(other, Some(level));
        Some(level)
    }

    /// Raises the level of tree edge `(u, v)` to `level`.
    pub fn tree_set_level(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].tree_set_level_one(v, level);
        self.verts[v].tree_set_level_one(u, level);
    }

    /// The level of tree edge `(u, v)`, if it is a live tree edge.
    pub fn tree_level(&self, u: usize, v: usize) -> Option<usize> {
        self.verts[u].tree_level(v)
    }

    /// All tree neighbours of `v` with their levels.
    pub fn tree_neighbors(&self, v: usize) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.verts[v].tree_neighbors()
    }

    /// Tree neighbours of `v` with edge level **at least** `level`, touching
    /// only the qualifying buckets — never the lower-level ones — in
    /// ascending level order.
    pub fn tree_neighbors_from(&self, v: usize, level: usize) -> impl Iterator<Item = usize> + '_ {
        self.verts[v].tree_neighbors_from(level)
    }

    /// Snapshot of the tree neighbours of `v` at exactly `level`.
    pub fn tree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        let mut out = Vec::new();
        self.verts[v].tree_neighbors_at_into(level, &mut out);
        out
    }

    /// Records non-tree edge `(u, v)` at `level`.
    pub fn nontree_insert(&mut self, u: usize, v: usize, level: usize) {
        self.verts[u].nontree_push_one(v, level);
        self.verts[v].nontree_push_one(u, level);
    }

    /// Removes non-tree edge `(u, v)` at `level`; returns whether present.
    pub fn nontree_remove(&mut self, u: usize, v: usize, level: usize) -> bool {
        let a = self.verts[u].nontree_remove_one(v, level);
        let b = self.verts[v].nontree_remove_one(u, level);
        a || b
    }

    /// Snapshot of the level-`level` non-tree neighbours of `v`.
    pub fn nontree_neighbors_at(&self, v: usize, level: usize) -> Vec<usize> {
        self.verts[v].nontree_neighbors_at(level)
    }

    /// Removes and returns `v`'s **own** level-`level` bucket wholesale.  The
    /// mirror entries at the neighbours are left untouched — the caller is
    /// responsible for them (used by the replacement scan, which re-files
    /// every drained edge exactly once, keeping its cost linear in the bucket
    /// instead of quadratic remove-by-scan).
    pub fn nontree_take_bucket(&mut self, v: usize, level: usize) -> Vec<usize> {
        self.verts[v].nontree_take_bucket_one(level)
    }

    /// Replaces `v`'s own level-`level` bucket wholesale (mirrors untouched).
    pub fn nontree_set_bucket(&mut self, v: usize, level: usize, neighbors: Vec<usize>) {
        self.verts[v].nontree_set_bucket_one(level, neighbors);
    }

    /// Appends `w` to `v`'s own level-`level` bucket (mirror untouched).
    pub fn nontree_push_one_sided(&mut self, v: usize, w: usize, level: usize) {
        self.verts[v].nontree_push_one(w, level);
    }

    /// Removes `w` from `v`'s own level-`level` bucket (mirror untouched);
    /// returns whether it was present.
    pub fn nontree_remove_one_sided(&mut self, v: usize, w: usize, level: usize) -> bool {
        self.verts[v].nontree_remove_one(w, level)
    }

    /// Number of non-tree edge endpoints stored at `v` (across all levels).
    pub fn nontree_degree(&self, v: usize) -> usize {
        self.verts[v].nontree_degree()
    }

    /// Approximate heap bytes owned by the adjacency structures (both tree
    /// views, the bucketed mirror included, plus the non-tree buckets).
    pub fn memory_bytes(&self) -> usize {
        let (tree_map, tree_buckets, nontree) = self.memory_breakdown();
        tree_map + tree_buckets + nontree
    }

    /// Approximate heap bytes per substructure:
    /// `(tree neighbour→level map, bucketed tree mirror, non-tree buckets)`.
    ///
    /// BTreeMap overhead is modelled at node granularity: std's B-tree
    /// (B = 6) holds up to 11 entries per node, and a map that grew by
    /// insertion runs ~70% full, so we charge one node — 11 entry slots plus
    /// pointer/length/parent slack — per ⌈len / 8⌉ entries.  That replaces
    /// the old flat "half a word per entry" fudge, which undercounted small
    /// maps badly (a 1-entry map still owns a whole node).
    pub fn memory_breakdown(&self) -> (usize, usize, usize) {
        let map_spine = self.verts.capacity() * std::mem::size_of::<BTreeMap<usize, usize>>();
        let (mut tree_map, mut tree_buckets, mut nontree) = (map_spine, map_spine, map_spine);
        for v in &self.verts {
            let (t, tb, nt) = v.memory_parts();
            tree_map += t;
            tree_buckets += tb;
            nontree += nt;
        }
        (tree_map, tree_buckets, nontree)
    }
}

/// Heap bytes of a `BTreeMap` with `len` entries of `entry_bytes` each,
/// modelled at node granularity (see
/// [`memory_breakdown`](LevelAdjacency::memory_breakdown)).
fn btree_map_bytes(len: usize, entry_bytes: usize) -> usize {
    let word = std::mem::size_of::<usize>();
    if len == 0 {
        0
    } else {
        len.div_ceil(8) * (11 * entry_bytes + 3 * word)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.tree_insert(0, 1, 0);
        adj.tree_insert(1, 2, 3);
        assert_eq!(adj.tree_neighbors(1).count(), 2);
        assert_eq!(adj.tree_neighbors(1).filter(|&(_, l)| l >= 1).count(), 1);
        adj.tree_set_level(0, 1, 2);
        assert_eq!(adj.tree_level(0, 1), Some(2));
        assert_eq!(adj.tree_remove(0, 1), Some(2));
        assert_eq!(adj.tree_remove(0, 1), None);
        assert_eq!(adj.tree_level(0, 1), None);
        assert_eq!(adj.tree_neighbors(1).count(), 1);
    }

    #[test]
    fn one_sided_bucket_ops_compose_with_two_sided_state() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        let bucket = adj.nontree_take_bucket(0, 0);
        assert_eq!(bucket.len(), 2);
        assert!(adj.nontree_neighbors_at(0, 0).is_empty());
        // mirrors still present until the caller re-files them
        assert!(adj.nontree_remove_one_sided(1, 0, 0));
        adj.nontree_push_one_sided(1, 0, 1);
        adj.nontree_push_one_sided(0, 1, 1);
        adj.nontree_set_bucket(0, 0, vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![2]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![1]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(adj.nontree_remove(0, 1, 1));
        assert_eq!(adj.nontree_degree(0), 0);
    }

    #[test]
    fn nontree_edge_roundtrip() {
        let mut adj = LevelAdjacency::new(4);
        adj.nontree_insert(0, 1, 0);
        adj.nontree_insert(0, 2, 0);
        adj.nontree_insert(0, 3, 1);
        assert_eq!(adj.nontree_degree(0), 3);
        let mut at0 = adj.nontree_neighbors_at(0, 0);
        at0.sort_unstable();
        assert_eq!(at0, vec![1, 2]);
        assert!(adj.nontree_remove(0, 2, 0));
        assert!(!adj.nontree_remove(0, 2, 0));
        assert_eq!(adj.nontree_neighbors_at(0, 0), vec![1]);
        assert_eq!(adj.nontree_neighbors_at(0, 1), vec![3]);
    }

    #[test]
    fn vertex_state_swaps_wholesale_and_replays_identically() {
        // The overlay contract: cloning a VertexAdj, mutating the clone with
        // the same one-sided primitives, and swapping it back must equal
        // in-place mutation.
        let mut a = LevelAdjacency::new(3);
        a.tree_insert(0, 1, 0);
        a.nontree_insert(0, 2, 1);
        let mut b = a.clone();
        // in place
        a.tree_set_level(0, 1, 2);
        assert!(a.nontree_remove(0, 2, 1));
        // via cloned vertex states
        for v in 0..3 {
            let mut s = b.vertex(v).clone();
            if s.tree_level(if v == 0 { 1 } else { 0 }).is_some() && (v == 0 || v == 1) {
                s.tree_set_level_one(if v == 0 { 1 } else { 0 }, 2);
            }
            s.nontree_remove_one(if v == 0 { 2 } else { 0 }, 1);
            b.set_vertex(v, s);
        }
        for v in 0..3 {
            assert_eq!(b.vertex(v), a.vertex(v), "vertex {v}");
        }
    }
}
