//! Batch-dynamic connectivity for **general graphs** on top of the
//! workspace's dynamic-tree forests.
//!
//! The dynamic-tree structures of the paper (UFO trees, topology trees,
//! link-cut trees, Euler tour trees) maintain *forests*; their headline
//! application is dynamic connectivity on arbitrary graphs, where a spanning
//! forest must survive arbitrary edge insertions **and deletions**.  This
//! crate implements the Holm–de Lichtenberg–Thorup (HDT) level scheme:
//!
//! * a spanning forest of the current graph lives in a pluggable dynamic-tree
//!   *backend* (anything implementing [`SpanningBackend`] — every forest in
//!   this workspace does), which answers `connected` queries in the backend's
//!   own query time;
//! * non-tree edges live in per-vertex, per-level adjacency structures
//!   ([`levels::LevelAdjacency`]); every edge carries a level that only ever
//!   increases, amortizing the replacement-edge searches that deletions of
//!   tree edges trigger (`O(log² n)` amortized per update in the classic
//!   analysis);
//! * batches of insertions/deletions are canonicalised and deduplicated with
//!   the `dyntree_primitives` grouping primitives before touching the tree
//!   layer (see [`batch`]).
//!
//! The public surface is batch-first and typed: the vertex set grows in
//! place (`add_vertices` / `AddVertices` ops — `new(0)` is a perfectly good
//! starting point), every mutation has a fallible `try_*` form returning
//! [`GraphError`] instead of a flat `false`, and whole transactions of
//! [`GraphOp`]s go through [`DynConnectivity::apply`], which returns a
//! [`BatchReport`] of per-op outcomes.
//!
//! The entry point is [`DynConnectivity`]; convenience aliases pick each
//! forest of the workspace as the backend:
//!
//! ```
//! use dyntree_connectivity::{EdgeKind, GraphOp, UfoConnectivity};
//!
//! let mut g = UfoConnectivity::new(5);
//! assert_eq!(g.try_insert_edge(0, 1), Ok(EdgeKind::Tree));
//! assert_eq!(g.try_insert_edge(1, 2), Ok(EdgeKind::Tree));
//! assert_eq!(g.try_insert_edge(2, 0), Ok(EdgeKind::NonTree)); // cycle
//! assert!(g.connected(0, 2));
//! g.try_delete_edge(0, 1).unwrap(); // tree edge: replaced by (2, 0)
//! assert!(g.connected(0, 2));
//! assert_eq!(g.component_count(), 3); // {0,1,2} plus two isolated vertices
//!
//! // the same graph, as one reported transaction
//! let mut h = UfoConnectivity::new(0);
//! let report = h.apply(&[
//!     GraphOp::AddVertices(5),
//!     GraphOp::InsertEdge(0, 1),
//!     GraphOp::InsertEdge(1, 2),
//!     GraphOp::InsertEdge(2, 0),
//!     GraphOp::DeleteEdge(0, 1),
//! ]);
//! assert_eq!((report.applied, report.skipped, report.rejected), (5, 0, 0));
//! assert_eq!(report.components_after, 3);
//! ```

pub mod backend;
pub mod batch;
pub mod engine;
pub mod levels;
pub(crate) mod search;

pub use backend::SpanningBackend;
pub use batch::OpOf;
pub use engine::{DynConnectivity, MemoryBreakdown};
// The typed operations vocabulary the engine speaks (defined in
// `dyntree_primitives::ops`, re-exported here so engine users need one
// import path).
pub use dyntree_primitives::ops::{
    BatchReport, DeleteOutcome, EdgeKind, GraphError, GraphOp, OpOutcome,
};

use dyntree_seqs::TreapSequence;

/// Vertex identifier in the graph.
pub type Vertex = usize;

/// Dynamic connectivity over a UFO-tree spanning forest.
pub type UfoConnectivity = DynConnectivity<ufo_forest::UfoForest>;

/// Dynamic connectivity over a topology-tree (ternarized) spanning forest.
pub type TopologyConnectivity = DynConnectivity<ufo_forest::TopologyForest>;

/// Dynamic connectivity over a link-cut-tree spanning forest.
pub type LinkCutConnectivity = DynConnectivity<dyntree_linkcut::LinkCutForest>;

/// Dynamic connectivity over a treap Euler-tour-tree spanning forest.
pub type EulerConnectivity = DynConnectivity<dyntree_euler::EulerTourForest<TreapSequence>>;

/// Dynamic connectivity over the naive oracle forest (for testing).
pub type NaiveConnectivity = DynConnectivity<dyntree_naive::NaiveForest>;
