//! The HDT replacement-search core, factored out of the engine and made
//! generic over an *adjacency view* ([`SearchAdj`]).
//!
//! Two views implement the trait:
//!
//! * [`DirectAdj`] — mutable borrows of the engine's own level adjacency and
//!   edge registry.  The engine's sequential `find_replacement` goes through
//!   this view; it is a zero-cost field-borrow split, byte-identical to the
//!   old in-place code.
//! * [`OverlayAdj`] — a copy-on-touch overlay over a *shared* engine
//!   reference.  Pool workers run whole replacement searches against it
//!   without mutating the engine: the first touch of a vertex clones its
//!   [`VertexAdj`] into the overlay, and every subsequent primitive
//!   operation hits the clone through the **same** one-sided `VertexAdj`
//!   methods the direct view uses.  The finished clones and the edge-record
//!   deltas are the diff; the batch layer installs them wholesale, in
//!   canonical run order, so the final state is byte-identical to having run
//!   the searches in place.  Soundness of sharing `&self` across workers
//!   rests on an independence certificate: the batch layer only fans out
//!   searches whose deletions live in *distinct pre-batch forest
//!   components*, and a replacement search never reads or writes outside its
//!   deletion's component (DESIGN.md §10).
//!
//! The search body itself is restructured relative to the historical
//! per-edge code: the tree-edge level bumps of each pass run as a grouped
//! collect-then-apply sweep over the side (the read-only collect can fan out
//! over [`chunk_ranges`] for huge sides), and the side vectors and bump
//! buffers live in a reusable [`SearchScratch`] arena instead of fresh
//! allocations per search.  The non-tree scan stays a strictly sequential
//! early-exit loop: its scanned-edge count is part of the deterministic
//! telemetry contract, and the first qualifying edge — in canonical bucket
//! order — must be the one promoted.

use dyntree_primitives::hash::FxHashMap;

use dyntree_primitives::chunk_ranges;
use dyntree_primitives::telemetry::{Counter, Phase};
use dyntree_primitives::{ParallelConfig, Telemetry};
use rayon::prelude::*;

use crate::levels::{LevelAdjacency, VertexAdj};
use crate::Vertex;

/// Book-keeping for one live edge (level only ever increases; `tree` tracks
/// spanning-forest membership).  Lives here so both the engine and the
/// overlay can share it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct EdgeInfo {
    pub(crate) level: usize,
    pub(crate) tree: bool,
}

/// Canonical `(min, max)` orientation for an undirected edge key.
#[inline]
pub(crate) fn canonical(u: Vertex, v: Vertex) -> (Vertex, Vertex) {
    (u.min(v), u.max(v))
}

/// The adjacency + edge-registry surface a replacement search needs.  Every
/// mutation is expressed in the same vocabulary [`LevelAdjacency`] exposes,
/// so the direct and overlay implementations stay line-for-line parallel.
pub(crate) trait SearchAdj {
    /// Tree neighbours of `v` with edge level ≥ `level` (bucketed order).
    fn tree_neighbors_from(&self, v: Vertex, level: usize)
        -> Box<dyn Iterator<Item = Vertex> + '_>;

    /// Appends `(v, w)` for every tree neighbour `w` of `v` at exactly
    /// `level`.
    fn collect_bumps(&self, v: Vertex, level: usize, out: &mut Vec<(Vertex, Vertex)>);

    /// Level of live tree edge `(u, v)`, or `None`.
    fn tree_level(&self, u: Vertex, v: Vertex) -> Option<usize>;

    /// Raises tree edge `(x, w)` to `level` (adjacency both sides + registry).
    fn bump_tree_edge(&mut self, x: Vertex, w: Vertex, level: usize);

    /// Removes and returns `v`'s own level-`level` non-tree bucket.
    fn nontree_take_bucket(&mut self, v: Vertex, level: usize) -> Vec<Vertex>;

    /// Replaces `v`'s own level-`level` non-tree bucket.
    fn nontree_set_bucket(&mut self, v: Vertex, level: usize, bucket: Vec<Vertex>);

    /// Raises non-tree edge `(x, y)` from `level` to `level + 1`: re-files
    /// the mirror at `y` and pushes both sides at the new level (`x`'s old
    /// entry is the drained-bucket slot the caller is already holding), and
    /// bumps the registry level.
    fn bump_nontree_edge(&mut self, x: Vertex, y: Vertex, level: usize);

    /// Promotes non-tree edge `(x, y)` of `level` into the spanning forest:
    /// removes the mirror at `y` (again, `x`'s own entry is the drained
    /// slot), inserts the tree edge at `level`, and flips the registry flag.
    /// The *backend* link is the caller's business — the search never
    /// touches the backend.
    fn promote(&mut self, x: Vertex, y: Vertex, level: usize);

    /// Optional chunked fan-out of the read-only bump collect over `side`;
    /// returns `false` when unsupported or not worth it (the caller then
    /// collects sequentially).  Implementations must append exactly what the
    /// sequential collect would: per-vertex pairs in side order, bucket
    /// order within a vertex.
    fn par_collect_bumps(
        &self,
        _side: &[Vertex],
        _level: usize,
        _out: &mut Vec<(Vertex, Vertex)>,
    ) -> bool {
        false
    }
}

/// Field-borrow split of the engine: the sequential search path.
pub(crate) struct DirectAdj<'a> {
    pub adj: &'a mut LevelAdjacency,
    pub edges: &'a mut FxHashMap<(Vertex, Vertex), EdgeInfo>,
    pub par: ParallelConfig,
}

impl SearchAdj for DirectAdj<'_> {
    fn tree_neighbors_from(
        &self,
        v: Vertex,
        level: usize,
    ) -> Box<dyn Iterator<Item = Vertex> + '_> {
        Box::new(self.adj.tree_neighbors_from(v, level))
    }

    fn collect_bumps(&self, v: Vertex, level: usize, out: &mut Vec<(Vertex, Vertex)>) {
        out.extend(self.adj.vertex(v).tree_neighbors_at(level).map(|w| (v, w)));
    }

    fn tree_level(&self, u: Vertex, v: Vertex) -> Option<usize> {
        self.adj.tree_level(u, v)
    }

    fn bump_tree_edge(&mut self, x: Vertex, w: Vertex, level: usize) {
        self.adj.tree_set_level(x, w, level);
        self.edges
            .get_mut(&canonical(x, w))
            .expect("live tree edge")
            .level = level;
    }

    fn nontree_take_bucket(&mut self, v: Vertex, level: usize) -> Vec<Vertex> {
        self.adj.nontree_take_bucket(v, level)
    }

    fn nontree_set_bucket(&mut self, v: Vertex, level: usize, bucket: Vec<Vertex>) {
        self.adj.nontree_set_bucket(v, level, bucket);
    }

    fn bump_nontree_edge(&mut self, x: Vertex, y: Vertex, level: usize) {
        let moved = self.adj.nontree_remove_one_sided(y, x, level);
        debug_assert!(moved, "mirror of ({x},{y}) missing");
        self.adj.nontree_push_one_sided(y, x, level + 1);
        self.adj.nontree_push_one_sided(x, y, level + 1);
        self.edges
            .get_mut(&canonical(x, y))
            .expect("live non-tree edge")
            .level = level + 1;
    }

    fn promote(&mut self, x: Vertex, y: Vertex, level: usize) {
        let removed = self.adj.nontree_remove_one_sided(y, x, level);
        debug_assert!(removed, "mirror of ({x},{y}) missing");
        self.adj.tree_insert(x, y, level);
        self.edges
            .get_mut(&canonical(x, y))
            .expect("live non-tree edge")
            .tree = true;
    }

    fn par_collect_bumps(
        &self,
        side: &[Vertex],
        level: usize,
        out: &mut Vec<(Vertex, Vertex)>,
    ) -> bool {
        // Worth it only for genuinely huge sides: the collect is a read-only
        // bucket sweep, so per-chunk dispatch must amortize over many
        // vertices.  Chunk results are concatenated in range order, which is
        // exactly the sequential append order — byte-identical by
        // construction.
        let chunks = self.par.chunks_for(side.len());
        if chunks <= 1 || side.len() < self.par.chunk_grain {
            return false;
        }
        let adj: &LevelAdjacency = self.adj;
        let parts: Vec<Vec<(Vertex, Vertex)>> = chunk_ranges(side.len(), chunks)
            .par_iter()
            .map(|&(lo, hi)| {
                let mut part = Vec::new();
                for &x in &side[lo..hi] {
                    part.extend(adj.vertex(x).tree_neighbors_at(level).map(|w| (x, w)));
                }
                part
            })
            .collect();
        for part in parts {
            out.extend(part);
        }
        true
    }
}

/// Copy-on-touch overlay over a shared engine: pool workers run searches
/// here without mutating the engine, producing a wholesale per-vertex diff.
pub(crate) struct OverlayAdj<'a> {
    base_adj: &'a LevelAdjacency,
    base_edges: &'a FxHashMap<(Vertex, Vertex), EdgeInfo>,
    touched: FxHashMap<Vertex, VertexAdj>,
    /// Edge-registry delta: `Some(info)` = insert/replace, `None` = remove.
    edge_overlay: FxHashMap<(Vertex, Vertex), Option<EdgeInfo>>,
}

impl<'a> OverlayAdj<'a> {
    pub fn new(
        base_adj: &'a LevelAdjacency,
        base_edges: &'a FxHashMap<(Vertex, Vertex), EdgeInfo>,
    ) -> Self {
        Self {
            base_adj,
            base_edges,
            touched: FxHashMap::default(),
            edge_overlay: FxHashMap::default(),
        }
    }

    fn view(&self, v: Vertex) -> &VertexAdj {
        self.touched
            .get(&v)
            .unwrap_or_else(|| self.base_adj.vertex(v))
    }

    fn touch(&mut self, v: Vertex) -> &mut VertexAdj {
        self.touched
            .entry(v)
            .or_insert_with(|| self.base_adj.vertex(v).clone())
    }

    fn edge_info(&self, key: (Vertex, Vertex)) -> Option<EdgeInfo> {
        match self.edge_overlay.get(&key) {
            Some(delta) => *delta,
            None => self.base_edges.get(&key).copied(),
        }
    }

    fn set_edge(&mut self, key: (Vertex, Vertex), info: EdgeInfo) {
        self.edge_overlay.insert(key, Some(info));
    }

    /// Removes live edge `(u, v)`'s registry record, returning it.
    pub fn remove_edge_record(&mut self, u: Vertex, v: Vertex) -> EdgeInfo {
        let key = canonical(u, v);
        let info = self.edge_info(key).expect("certified delete of dead edge");
        self.edge_overlay.insert(key, None);
        info
    }

    /// Removes tree edge `(u, v)` from both adjacency sides, returning its
    /// level.
    pub fn tree_remove(&mut self, u: Vertex, v: Vertex) -> Option<usize> {
        let level = self.touch(u).tree_remove_one(v)?;
        let other = self.touch(v).tree_remove_one(u);
        debug_assert_eq!(other, Some(level));
        Some(level)
    }

    /// Removes non-tree edge `(u, v)` at `level` from both adjacency sides.
    pub fn nontree_remove(&mut self, u: Vertex, v: Vertex, level: usize) -> bool {
        let a = self.touch(u).nontree_remove_one(v, level);
        let b = self.touch(v).nontree_remove_one(u, level);
        debug_assert!(a && b, "non-tree edge ({u},{v}) missing from adjacency");
        a || b
    }

    /// The finished diff: touched vertex states and edge-registry deltas,
    /// both in canonical sorted order so the install loop is deterministic
    /// regardless of hash-map iteration order.
    pub fn into_diffs(self) -> OverlayDiffs {
        let mut vertices: Vec<(Vertex, VertexAdj)> = self.touched.into_iter().collect();
        vertices.sort_unstable_by_key(|&(v, _)| v);
        let mut edges: Vec<((Vertex, Vertex), Option<EdgeInfo>)> =
            self.edge_overlay.into_iter().collect();
        edges.sort_unstable_by_key(|&(key, _)| key);
        OverlayDiffs { vertices, edges }
    }
}

/// What one overlay search run produced, ready to install wholesale.
pub(crate) struct OverlayDiffs {
    pub vertices: Vec<(Vertex, VertexAdj)>,
    pub edges: Vec<((Vertex, Vertex), Option<EdgeInfo>)>,
}

impl SearchAdj for OverlayAdj<'_> {
    fn tree_neighbors_from(
        &self,
        v: Vertex,
        level: usize,
    ) -> Box<dyn Iterator<Item = Vertex> + '_> {
        Box::new(self.view(v).tree_neighbors_from(level))
    }

    fn collect_bumps(&self, v: Vertex, level: usize, out: &mut Vec<(Vertex, Vertex)>) {
        out.extend(self.view(v).tree_neighbors_at(level).map(|w| (v, w)));
    }

    fn tree_level(&self, u: Vertex, v: Vertex) -> Option<usize> {
        self.view(u).tree_level(v)
    }

    fn bump_tree_edge(&mut self, x: Vertex, w: Vertex, level: usize) {
        self.touch(x).tree_set_level_one(w, level);
        self.touch(w).tree_set_level_one(x, level);
        let key = canonical(x, w);
        let mut info = self.edge_info(key).expect("live tree edge");
        info.level = level;
        self.set_edge(key, info);
    }

    fn nontree_take_bucket(&mut self, v: Vertex, level: usize) -> Vec<Vertex> {
        self.touch(v).nontree_take_bucket_one(level)
    }

    fn nontree_set_bucket(&mut self, v: Vertex, level: usize, bucket: Vec<Vertex>) {
        self.touch(v).nontree_set_bucket_one(level, bucket);
    }

    fn bump_nontree_edge(&mut self, x: Vertex, y: Vertex, level: usize) {
        let moved = self.touch(y).nontree_remove_one(x, level);
        debug_assert!(moved, "mirror of ({x},{y}) missing");
        self.touch(y).nontree_push_one(x, level + 1);
        self.touch(x).nontree_push_one(y, level + 1);
        let key = canonical(x, y);
        let mut info = self.edge_info(key).expect("live non-tree edge");
        info.level = level + 1;
        self.set_edge(key, info);
    }

    fn promote(&mut self, x: Vertex, y: Vertex, level: usize) {
        let removed = self.touch(y).nontree_remove_one(x, level);
        debug_assert!(removed, "mirror of ({x},{y}) missing");
        self.touch(x).tree_insert_one(y, level);
        self.touch(y).tree_insert_one(x, level);
        let key = canonical(x, y);
        let mut info = self.edge_info(key).expect("live non-tree edge");
        info.tree = true;
        self.set_edge(key, info);
    }
}

/// Reusable per-engine (or per-worker) search scratch: the two lock-step
/// side queues and the bump-pair buffer.  Replaces the fresh `Vec`
/// allocations the search used to make per level pass — on delete-heavy
/// traces those allocations were a measurable slice of the replacement
/// search's wall share.
#[derive(Clone, Debug, Default)]
pub(crate) struct SearchScratch {
    queue_a: Vec<Vertex>,
    queue_b: Vec<Vertex>,
    bump_pairs: Vec<(Vertex, Vertex)>,
}

impl SearchScratch {
    /// Whether this arena has warm capacity from a previous search (feeds
    /// the `scratch_arena_reuses` telemetry counter).
    fn warm(&self) -> bool {
        self.queue_a.capacity() != 0 || self.queue_b.capacity() != 0
    }

    /// Approximate heap bytes held by the arena.
    pub fn memory_bytes(&self) -> usize {
        let word = std::mem::size_of::<usize>();
        (self.queue_a.capacity() + self.queue_b.capacity()) * word
            + self.bump_pairs.capacity() * 2 * word
    }
}

/// One side of the per-edge lock-step BFS: each `step` consumes at most one
/// level ≥ `level` adjacency entry of the frontier (lower-level entries are
/// never visited — the bucketed adjacency keeps them out of the iterator),
/// so alternating two sides costs `O(min(|A|, |B|))` `F_level` edges before
/// the smaller one exhausts.  The queue lives in the caller's scratch arena.
struct LockstepSide<'a> {
    /// Index of the vertex currently being expanded.
    qi: usize,
    /// Lazy iterator over the current vertex's level ≥ `level` neighbours.
    cur: Option<Box<dyn Iterator<Item = Vertex> + 'a>>,
}

impl<'a> LockstepSide<'a> {
    fn new<A: SearchAdj + ?Sized>(adj: &'a A, start: Vertex, level: usize) -> Self {
        Self {
            qi: 0,
            cur: Some(adj.tree_neighbors_from(start, level)),
        }
    }

    /// Consumes one qualifying adjacency entry; returns `false` once the
    /// component is exhausted.
    fn step<A: SearchAdj + ?Sized>(
        &mut self,
        adj: &'a A,
        queue: &mut Vec<Vertex>,
        mark: &mut [u64],
        stamp: u64,
        level: usize,
    ) -> bool {
        loop {
            if let Some(it) = self.cur.as_mut() {
                if let Some(w) = it.next() {
                    if mark[w] != stamp {
                        mark[w] = stamp;
                        queue.push(w);
                    }
                    return true;
                }
                self.cur = None;
            }
            self.qi += 1;
            if self.qi >= queue.len() {
                return false;
            }
            self.cur = Some(adj.tree_neighbors_from(queue[self.qi], level));
        }
    }
}

/// Vertex set of the smaller (or tied) of the two `F_level` components
/// containing `u` and `v`, written into one of the two scratch queues;
/// returns `true` when the winner is `queue_a` (seeded from `u`).  Within
/// `F_level` each component is a tree, so the side consuming fewer
/// adjacency entries is exactly the side with fewer vertices — the HDT
/// `n/2^i` promotion invariant selects the right side, and a tiny side
/// split off a hub returns without scanning the hub's adjacency.
// The arguments are disjoint pieces of one `SearchScratch`, passed split so
// the caller can keep borrowing its other fields.
#[allow(clippy::too_many_arguments)]
fn smaller_side_into<A: SearchAdj + ?Sized>(
    adj: &A,
    mark: &mut [u64],
    stamp: &mut u64,
    queue_a: &mut Vec<Vertex>,
    queue_b: &mut Vec<Vertex>,
    u: Vertex,
    v: Vertex,
    level: usize,
) -> bool {
    *stamp += 1;
    let stamp_a = *stamp;
    *stamp += 1;
    let stamp_b = *stamp;
    queue_a.clear();
    queue_b.clear();
    queue_a.push(u);
    queue_b.push(v);
    mark[u] = stamp_a;
    mark[v] = stamp_b;
    let mut a = LockstepSide::new(adj, u, level);
    let mut b = LockstepSide::new(adj, v, level);
    loop {
        if !a.step(adj, queue_a, mark, stamp_a, level) {
            return true;
        }
        if !b.step(adj, queue_b, mark, stamp_b, level) {
            return false;
        }
    }
}

/// HDT replacement search after cutting tree edge `(u, v)` of level `l`,
/// against any [`SearchAdj`] view.  Returns the (canonically oriented)
/// non-tree edge that was promoted as the replacement — the **caller** must
/// apply the backend link — or `None` when the component split.
///
/// `with_spans` gates the phase-timer spans: the engine's sequential path
/// records them, pool workers must not (their overlapping wall times would
/// break the profile's child ≤ parent nesting check); counters are recorded
/// either way, and are identical across paths by construction.
#[allow(clippy::too_many_arguments)]
pub(crate) fn search_replacement<A: SearchAdj>(
    adj: &mut A,
    mark: &mut [u64],
    stamp: &mut u64,
    scratch: &mut SearchScratch,
    tel: &Telemetry,
    with_spans: bool,
    level_cap: usize,
    u: Vertex,
    v: Vertex,
    l: usize,
) -> Option<(Vertex, Vertex)> {
    let _search_span = with_spans.then(|| tel.span(Phase::ReplacementSearch));
    tel.incr(Counter::ReplacementSearches);
    if scratch.warm() {
        tel.incr(Counter::ScratchArenaReuses);
    }
    for level in (0..=l).rev() {
        // The smaller of the two F_level components the cut produced.
        let side_is_a = {
            let _side_span = with_spans.then(|| tel.span(Phase::SmallerSide));
            smaller_side_into(
                adj,
                mark,
                stamp,
                &mut scratch.queue_a,
                &mut scratch.queue_b,
                u,
                v,
                level,
            )
        };
        let side = std::mem::take(if side_is_a {
            &mut scratch.queue_a
        } else {
            &mut scratch.queue_b
        });
        tel.add(Counter::SmallerSideVertices, side.len() as u64);
        *stamp += 1;
        for &x in &side {
            mark[x] = *stamp;
        }

        // Charge the search: push the side's level-`level` tree edges up, as
        // a grouped collect-then-apply sweep.  The collect is read-only (so
        // it can fan out over chunk ranges for huge sides) and sees each
        // edge from both endpoints; the apply deduplicates by skipping edges
        // already at `level + 1`, bumping each edge exactly once, in
        // first-occurrence order.
        if level + 1 < level_cap {
            scratch.bump_pairs.clear();
            if !adj.par_collect_bumps(&side, level, &mut scratch.bump_pairs) {
                for &x in &side {
                    adj.collect_bumps(x, level, &mut scratch.bump_pairs);
                }
            }
            let mut bumps = 0u64;
            for &(x, w) in scratch.bump_pairs.iter() {
                debug_assert_eq!(mark[w], *stamp, "F_level tree edge leaves side");
                if adj.tree_level(x, w) == Some(level) {
                    adj.bump_tree_edge(x, w, level + 1);
                    bumps += 1;
                }
            }
            tel.add(Counter::LevelBumpsTree, bumps);
        }

        // Scan the side's level-`level` non-tree edges: the first one
        // leaving the side reconnects the components; the scanned ones
        // before it are pushed up a level (they stay inside the side).
        // Each vertex's bucket is drained wholesale and every drained edge
        // re-filed exactly once, so the scan is linear in the number of
        // scanned edges.  Strictly sequential with early exit — the scanned
        // count and the promoted edge are part of the deterministic
        // contract.
        let mut promoted: Option<(Vertex, Vertex)> = None;
        for &x in &side {
            let bucket = adj.nontree_take_bucket(x, level);
            let mut drained = bucket.into_iter();
            let mut survivors: Vec<Vertex> = Vec::new();
            let mut found: Option<Vertex> = None;
            let mut scanned = 0u64;
            let mut bumped = 0u64;
            for y in drained.by_ref() {
                scanned += 1;
                if mark[y] == *stamp {
                    if level + 1 < level_cap {
                        adj.bump_nontree_edge(x, y, level);
                        bumped += 1;
                    } else {
                        survivors.push(y);
                    }
                } else {
                    found = Some(y);
                    break;
                }
            }
            tel.add(Counter::ReplacementEdgesScanned, scanned);
            tel.add(Counter::LevelBumpsNonTree, bumped);
            if let Some(y) = found {
                // unscanned edges keep their level
                survivors.extend(drained);
                adj.nontree_set_bucket(x, level, survivors);
                // Replacement found: promote to a tree edge.
                adj.promote(x, y, level);
                tel.incr(Counter::ReplacementPromotions);
                promoted = Some(canonical(x, y));
                break;
            }
            adj.nontree_set_bucket(x, level, survivors);
        }

        // Return the winner queue to the arena before leaving the pass.
        if side_is_a {
            scratch.queue_a = side;
        } else {
            scratch.queue_b = side;
        }
        if promoted.is_some() {
            return promoted;
        }
    }
    None
}
